"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table (or inline result list) of the
paper's evaluation section, printing rows in a paper-like format in
addition to the pytest-benchmark timings.  Because the substrate here is a
pure-Python model (not the authors' OCaml tool on a desktop machine), the
workload configurations are scaled down; EXPERIMENTS.md records the
scaling factors and the measured numbers next to the paper's.
"""

from __future__ import annotations

import pytest


def print_table(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Print a small aligned table (visible with ``pytest -s`` and in logs)."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print()
    print(f"== {title} ==")
    print("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture
def table_printer():
    return print_table
