"""Experiment E6 — ablation of the explorer's two optimisations (§7).

The paper attributes the tool's performance to (a) the promise-first /
writes-first exploration order justified by Theorem 7.1 and (b) the
shared-location optimisation.  This benchmark removes each optimisation in
turn and measures the state-space and run-time impact, checking that the
outcome sets stay identical (the optimisations are semantics-preserving).
"""

from __future__ import annotations

import pytest

from repro.harness import Job, run_jobs
from repro.lang.kinds import Arch
from repro.litmus import get_test
from repro.promising import ExploreConfig, explore
from repro.workloads import spinlock_cxx, spsc_queue

pytestmark = pytest.mark.bench

_rows: list[list[object]] = []


CASES = [
    ("LB litmus", lambda: get_test("LB").program),
    ("MP litmus", lambda: get_test("MP").program),
    ("PCS-1-1", lambda: spsc_queue(1, 1).program),
]


@pytest.mark.parametrize("label,builder", CASES, ids=[c[0] for c in CASES])
def test_promise_first_vs_naive(benchmark, label, builder):
    program = builder()
    fast_job = Job.for_program(program, "promising", Arch.ARM, name=label)
    slow_job = Job.for_program(program, "promising-naive", Arch.ARM, name=label)
    fast = benchmark.pedantic(lambda: run_jobs([fast_job])[0], rounds=1, iterations=1)
    slow = run_jobs([slow_job])[0]
    assert fast.ok and slow.ok, label
    assert set(fast.outcomes) == set(slow.outcomes), label
    _rows.append(
        [label, "promise-first", f"{fast.elapsed_seconds:.3f}s", fast.stats["promise_states"]]
    )
    _rows.append(
        [label, "naive interleaving", f"{slow.elapsed_seconds:.3f}s", slow.stats["promise_states"]]
    )
    assert slow.stats["promise_states"] >= fast.stats["promise_states"]


def test_local_location_optimisation(benchmark):
    workload = spinlock_cxx(2, 1)
    with_opt = benchmark.pedantic(
        lambda: explore(workload.program, ExploreConfig(arch=Arch.ARM, localise=True)),
        rounds=1, iterations=1,
    )
    without_opt = explore(workload.program, ExploreConfig(arch=Arch.ARM, localise=False))
    _rows.append(["SLC-1", "with localisation", f"{with_opt.stats.elapsed_seconds:.3f}s",
                  with_opt.stats.promise_states])
    _rows.append(["SLC-1", "without localisation", f"{without_opt.stats.elapsed_seconds:.3f}s",
                  without_opt.stats.promise_states])
    assert workload.check(with_opt.outcomes) and workload.check(without_opt.outcomes)
    assert without_opt.stats.promise_states >= with_opt.stats.promise_states


def test_tightened_unit_test_bounds_preserve_outcomes(benchmark):
    """The unit suite explores locks with tightened retry bounds; this
    pins the claims that justify it: SLR with one swap attempt has the
    identical outcome set to the two-attempt default, and TL passes the
    same mutual-exclusion safety check at both spin bounds."""
    from repro.workloads import spinlock_rust, ticket_lock

    def explore_both():
        slr = [
            explore(spinlock_rust(2, 1, attempts).program, ExploreConfig(arch=Arch.ARM))
            for attempts in (1, 2)
        ]
        tl = [
            explore(ticket_lock(2, 1, spins).program, ExploreConfig(arch=Arch.ARM))
            for spins in (2, 3)
        ]
        return slr, tl

    (slr_tight, slr_default), (tl_tight, tl_default) = benchmark.pedantic(
        explore_both, rounds=1, iterations=1
    )
    assert set(slr_tight.outcomes) == set(slr_default.outcomes)
    tight_lock = ticket_lock(2, 1, 2)
    default_lock = ticket_lock(2, 1, 3)
    assert tight_lock.check(tl_tight.outcomes) and default_lock.check(tl_default.outcomes)
    assert tight_lock.violations(tl_tight.outcomes) == []
    assert default_lock.violations(tl_default.outcomes) == []


def test_ablation_summary(table_printer):
    table_printer(
        "explorer ablation (§7 optimisations)",
        ["case", "strategy", "time", "explored states"],
        _rows,
    )
    assert _rows
