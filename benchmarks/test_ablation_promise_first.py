"""Experiment E6 — ablation of the explorer's two optimisations (§7).

The paper attributes the tool's performance to (a) the promise-first /
writes-first exploration order justified by Theorem 7.1 and (b) the
shared-location optimisation.  This benchmark removes each optimisation in
turn and measures the state-space and run-time impact, checking that the
outcome sets stay identical (the optimisations are semantics-preserving).
"""

from __future__ import annotations

import pytest

from repro.lang.kinds import Arch
from repro.litmus import get_test
from repro.promising import ExploreConfig, explore, explore_naive
from repro.workloads import spinlock_cxx, spsc_queue

_rows: list[list[object]] = []


CASES = [
    ("LB litmus", lambda: get_test("LB").program),
    ("MP litmus", lambda: get_test("MP").program),
    ("PCS-1-1", lambda: spsc_queue(1, 1).program),
]


@pytest.mark.parametrize("label,builder", CASES, ids=[c[0] for c in CASES])
def test_promise_first_vs_naive(benchmark, label, builder):
    program = builder()
    config = ExploreConfig(arch=Arch.ARM)
    fast = benchmark.pedantic(lambda: explore(program, config), rounds=1, iterations=1)
    slow = explore_naive(program, config)
    assert set(fast.outcomes) == set(slow.outcomes), label
    _rows.append(
        [label, "promise-first", f"{fast.stats.elapsed_seconds:.3f}s", fast.stats.promise_states]
    )
    _rows.append(
        [label, "naive interleaving", f"{slow.stats.elapsed_seconds:.3f}s", slow.stats.promise_states]
    )
    assert slow.stats.promise_states >= fast.stats.promise_states


def test_local_location_optimisation(benchmark):
    workload = spinlock_cxx(2, 1)
    with_opt = benchmark.pedantic(
        lambda: explore(workload.program, ExploreConfig(arch=Arch.ARM, localise=True)),
        rounds=1, iterations=1,
    )
    without_opt = explore(workload.program, ExploreConfig(arch=Arch.ARM, localise=False))
    _rows.append(["SLC-1", "with localisation", f"{with_opt.stats.elapsed_seconds:.3f}s",
                  with_opt.stats.promise_states])
    _rows.append(["SLC-1", "without localisation", f"{without_opt.stats.elapsed_seconds:.3f}s",
                  without_opt.stats.promise_states])
    assert workload.check(with_opt.outcomes) and workload.check(without_opt.outcomes)
    assert without_opt.stats.promise_states >= with_opt.stats.promise_states


def test_ablation_summary(table_printer):
    table_printer(
        "explorer ablation (§7 optimisations)",
        ["case", "strategy", "time", "explored states"],
        _rows,
    )
    assert _rows
