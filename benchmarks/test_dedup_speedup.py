"""Ablation — state deduplication / certification memoisation (PR 3).

Measures dedup-on vs dedup-off on the worst litmus families (the
four-thread IRIW, the three-location 3.2W/3.LB shapes) and the Chase-Lev
deque workload, across the explorers:

* ``promising`` (promise-first): its promise frontier is a *tree* (every
  promise sequence yields a distinct memory), so the visited set almost
  never fires — the measured win there is the certification layer (one
  interned sequential-graph build per configuration instead of two
  searches).  This is itself a reproduction-relevant observation: the
  paper's promise-first strategy already removes the interleaving
  redundancy that dedup would otherwise catch.

* ``promising-naive`` and ``flat`` (full interleaving): symmetric
  schedules reconverge constantly, so the visited set *is* the
  difference between polynomial and exponential work — dedup-off either
  multiplies wall-clock many-fold or fails to terminate within the state
  budget at all (reported as ``truncated``).

Every on/off pair that completes must produce identical outcome sets.
The results land in ``BENCH_dedup.json`` at the repo root (override with
``BENCH_DEDUP_PATH``); ``scripts/bench.sh`` refreshes the tracked copy.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.flat.explorer import FlatConfig, explore_flat
from repro.litmus import generate_cycle_battery, get_test
from repro.promising import ExploreConfig, explore, explore_naive
from repro.tools.compare import observables
from repro.workloads import chase_lev

pytestmark = pytest.mark.bench

#: State cap for dedup-off runs that would otherwise never finish; a
#: truncated "off" row is reported as a lower bound, not a speedup.
OFF_BUDGET = 150_000

_rows: list[dict] = []


def _cycle_case(family: str, index: int = 0):
    test = generate_cycle_battery(families=(family,), max_per_family=index + 1)[index]
    locs = tuple(test.observable_locations())
    return test.name, test.program, locs


def _workload_case():
    workload = chase_lev("p", (1,), name="DQ-p-1")
    _regs, locs = observables(workload.program)
    return workload.name, workload.program, tuple(locs)


def _run(model: str, program, locs, dedup: bool):
    if model == "flat":
        result = explore_flat(program, FlatConfig(dedup=dedup))
        states = result.stats.states
    else:
        config = ExploreConfig(
            shared_locations=locs,
            dedup=dedup,
            cert_memo=dedup,
            max_states=OFF_BUDGET if not dedup else 500_000,
        )
        runner = explore_naive if model == "promising-naive" else explore
        result = runner(program, config)
        states = result.stats.promise_states
    return result, states


CASES = [
    ("IRIW+po+po", "promising"),
    ("IRIW+po+po", "promising-naive"),
    ("3.2W+po+po+dmb.sy", "promising"),
    ("3.2W+po+po+dmb.sy", "promising-naive"),
    ("3.LB+po+po+po", "promising"),
    ("3.LB+po+po+po", "promising-naive"),
    ("DQ-p-1", "promising"),
    ("DQ-p-1", "promising-naive"),
    ("MP", "flat"),
    ("IRIW+po+po", "flat"),
]


def _case_inputs(case: str):
    if case == "DQ-p-1":
        return _workload_case()
    if case == "MP":
        test = get_test("MP")
        return test.name, test.program, tuple(test.observable_locations())
    family, _plus, _rest = case.partition("+")
    # Deterministic: the named test is the family's first diagonal entry
    # for IRIW/3.LB and the dmb.sy variant for 3.2W.
    tests = generate_cycle_battery(families=(family,), max_per_family=8)
    test = next(t for t in tests if t.name == case)
    return test.name, test.program, tuple(test.observable_locations())


@pytest.mark.parametrize("case,model", CASES, ids=[f"{c}-{m}" for c, m in CASES])
def test_dedup_on_off(benchmark, case, model):
    name, program, locs = _case_inputs(case)
    start = time.perf_counter()
    on, on_states = benchmark.pedantic(
        lambda: _run(model, program, locs, dedup=True),
        rounds=1,
        iterations=1,
    )
    on_seconds = time.perf_counter() - start
    start = time.perf_counter()
    off, off_states = _run(model, program, locs, dedup=False)
    off_seconds = time.perf_counter() - start

    both_complete = not on.stats.truncated and not off.stats.truncated
    if both_complete:
        assert set(on.outcomes) == set(off.outcomes), name
    else:
        # The off run hit its budget: its outcomes under-approximate.
        assert set(off.outcomes) <= set(on.outcomes), name
    _rows.append(
        {
            "case": name,
            "model": model,
            "on_seconds": round(on_seconds, 4),
            "off_seconds": round(off_seconds, 4),
            "on_states": on_states,
            "off_states": off_states,
            "off_truncated": bool(off.stats.truncated),
            "speedup": round(off_seconds / on_seconds, 2) if on_seconds else None,
            "speedup_is_lower_bound": bool(off.stats.truncated),
            "dedup_hits": on.stats.dedup_hits,
            "cert_memo_stats": {
                "hits": getattr(on.stats, "cert_memo_hits", 0),
                "calls": getattr(on.stats, "cert_calls", 0),
            },
            "n_outcomes": len(on.outcomes),
        }
    )


def test_write_artifact_and_summary(table_printer):
    assert _rows, "parametrized cases must run first"
    complete = [r for r in _rows if not r["off_truncated"]]
    interleaved = [r for r in complete if r["model"] in ("promising-naive", "flat")]
    aggregate = {
        "on_seconds": round(sum(r["on_seconds"] for r in complete), 3),
        "off_seconds": round(sum(r["off_seconds"] for r in complete), 3),
    }
    aggregate["speedup"] = round(aggregate["off_seconds"] / aggregate["on_seconds"], 2)
    interleaved_speedup = round(
        sum(r["off_seconds"] for r in interleaved)
        / sum(r["on_seconds"] for r in interleaved),
        2,
    )
    artifact = {
        "name": "dedup-ablation",
        "off_budget_states": OFF_BUDGET,
        "rows": _rows,
        "aggregate_completing_pairs": aggregate,
        "interleaved_explorers_speedup": interleaved_speedup,
        "note": (
            "promise-first rows measure the certification layer (the promise "
            "frontier is a tree, so state dedup cannot fire there); "
            "naive/flat rows measure the visited set itself"
        ),
    }
    default_path = Path(__file__).parent.parent / "BENCH_dedup.json"
    path = Path(os.environ.get("BENCH_DEDUP_PATH", default_path))
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    table_printer(
        "dedup ablation (on vs off)",
        ["case", "model", "on", "off", "speedup", "off truncated"],
        [
            [
                r["case"],
                r["model"],
                f"{r['on_seconds']:.3f}s",
                f"{r['off_seconds']:.3f}s",
                f"{r['speedup']}x" + ("+" if r["speedup_is_lower_bound"] else ""),
                r["off_truncated"],
            ]
            for r in _rows
        ],
    )
    # The acceptance bar: deduplication buys at least 2x wall-clock on the
    # worst families under the explorers where interleavings reconverge.
    assert interleaved_speedup >= 2.0, artifact
