"""Differential fuzzing battery — the scaled-up §7 agreement experiment.

The cycle generator synthesizes a corpus far larger than the hand-written
catalogue (hundreds of tests over MP/SB/LB/S/R/2+2W, the three-thread
WRC/ISA2/3.2W/3.LB shapes, the four-thread IRIW, and internal rf/fr
variants), and the differential harness cross-validates every model on it:

* the **full** corpus must show ``promising == axiomatic`` on both
  architectures (the paper's headline experimental-equivalence claim);
* a bounded slice additionally runs ``promising-naive`` (must equal
  promising) and ``flat`` (must stay a subset of promising);
* the JSON fuzz report artifact records corpus size, per-model timings,
  counterexample count, and the cache hit rate.
"""

from __future__ import annotations

import json

import pytest

from repro.harness import default_workers, run_fuzz
from repro.lang.kinds import Arch
from repro.litmus import attach_expected, generate_cycle_battery
from repro.litmus.test import Verdict

pytestmark = pytest.mark.bench

#: Bounded slice for the four-model comparison (promising-naive explodes
#: combinatorially, which is exactly what the ablation benchmark shows).
SLICE_SIZE = 48


def _workers() -> int:
    return min(8, default_workers())


def test_full_corpus_promising_equals_axiomatic(tmp_path, table_printer):
    """Every generated test agrees between promising and axiomatic, both archs."""
    corpus = generate_cycle_battery()
    assert len(corpus) >= 200, "corpus must stay ≥ 200 tests"
    families = {t.description.split(":")[0].removeprefix("cycle ") for t in corpus}
    assert len(families) >= 6, families

    fuzz = run_fuzz(
        corpus,
        ("promising", "axiomatic"),
        (Arch.ARM, Arch.RISCV),
        workers=_workers(),
        cache=tmp_path / "cache",
        report_path=tmp_path / "BENCH_fuzz_full.json",
    )
    table_printer(
        "differential fuzz: full corpus, promising vs axiomatic",
        ["corpus", "jobs", "statuses", "counterexamples", "wall"],
        [[
            len(corpus),
            fuzz.report["n_jobs"],
            dict(fuzz.report["status_counts"]),
            len(fuzz.counterexamples),
            f"{fuzz.wall_seconds:.1f}s",
        ]],
    )
    assert fuzz.report["status_counts"] == {"ok": fuzz.report["n_jobs"]}
    assert fuzz.counterexamples == [], "\n".join(
        f"{ce['test']} [{ce['arch']}]: {ce['kind']}\n{ce['source']}"
        for ce in fuzz.counterexamples
    )


def test_all_models_bounded_slice(tmp_path, table_printer):
    """promising == promising-naive == axiomatic, flat ⊆ promising."""
    corpus = generate_cycle_battery(max_tests=SLICE_SIZE)
    fuzz = run_fuzz(
        corpus,
        ("promising", "promising-naive", "axiomatic", "flat"),
        (Arch.ARM, Arch.RISCV),
        workers=_workers(),
        cache=tmp_path / "cache",
    )
    table_printer(
        "differential fuzz: all models (bounded slice)",
        ["corpus", "jobs", "counterexamples", "flat-only explained", "wall"],
        [[
            len(corpus),
            fuzz.report["n_jobs"],
            len(fuzz.counterexamples),
            fuzz.explained_differences,
            f"{fuzz.wall_seconds:.1f}s",
        ]],
    )
    assert fuzz.ok, fuzz.describe()


def test_expected_verdicts_from_axiomatic_oracle(tmp_path):
    """attach_expected stamps the oracle verdict and the models match it."""
    corpus = attach_expected(
        generate_cycle_battery(max_tests=16),
        (Arch.ARM,),
        workers=_workers(),
        cache=tmp_path / "cache",
    )
    assert all(t.expected_verdict(Arch.ARM) is not None for t in corpus)
    # The derived conditions pin exactly the relaxed outcome, so the
    # weakest linkage of each family must be allowed and a battery this
    # size must contain both verdicts.
    verdicts = {t.expected_verdict(Arch.ARM) for t in corpus}
    assert verdicts == {Verdict.ALLOWED, Verdict.FORBIDDEN}

    fuzz = run_fuzz(
        corpus,
        ("promising",),
        (Arch.ARM,),
        workers=_workers(),
        cache=tmp_path / "cache",
    )
    assert all(r.matches_expectation for r in fuzz.results)


def test_fuzz_report_artifact(tmp_path):
    report_path = tmp_path / "BENCH_fuzz.json"
    fuzz = run_fuzz(
        families=("MP", "CoRR"),
        models=("promising", "axiomatic"),
        workers=_workers(),
        cache=tmp_path / "cache",
        report_path=report_path,
    )
    artifact = json.loads(report_path.read_text())
    assert artifact["schema_version"] == fuzz.report["schema_version"]
    info = artifact["extra"]["fuzz"]
    assert info["corpus_size"] == len({j.test.name for j in fuzz.jobs})
    assert info["families"] == ["CoRR", "MP"]
    assert info["archs"] == ["ARM", "RISC-V"]
    assert set(info["model_seconds"]) == {"promising", "axiomatic"}
    assert info["counterexample_count"] == len(artifact["mismatches"])
    assert "store_failures" in artifact["cache"]
    # Warm rerun: everything recalled from the cache.
    warm = run_fuzz(
        families=("MP", "CoRR"),
        models=("promising", "axiomatic"),
        workers=_workers(),
        cache=tmp_path / "cache",
    )
    assert warm.report["cache"]["hit_rate"] == 1.0
