"""Experiment E3 — §8 inline herd comparison (SLC and TL).

The paper compares the Promising tool against herd on the two workloads
herd can express (the C++ spinlock and the ticket lock), reporting that
Promising is faster and that herd blows up quickly with the unrolling
bound.  Our axiomatic enumerator plays herd's role: it enumerates
candidate executions and filters them through the Fig. 6 axioms.  The
shape to reproduce: on the same configuration, the axiomatic enumeration
examines far more candidates than the promising explorer has promise-mode
states, and is slower (or hits its candidate budget).
"""

from __future__ import annotations

import time

import pytest

from repro.axiomatic import AxiomaticConfig
from repro.harness import Job, run_jobs
from repro.lang.kinds import Arch
from repro.promising import ExploreConfig
from repro.workloads import spinlock_cxx, ticket_lock

pytestmark = pytest.mark.bench

CONFIGS = [
    ("SLC-1 (paper: SLC-1/2)", lambda: spinlock_cxx(2, 1, retries=1)),
    ("TL-1 (paper: TL-1/2)", lambda: ticket_lock(2, 1, spins=2)),
]

#: Candidate budget for the axiomatic run — the analogue of herd's blow-up.
CANDIDATE_BUDGET = 400_000

_rows: list[list[object]] = []


@pytest.mark.parametrize("label,builder", CONFIGS, ids=[c[0].split(" ")[0] for c in CONFIGS])
def test_herd_comparison_row(benchmark, label, builder):
    workload = builder()
    promising_job = Job.for_program(
        workload.program, "promising", Arch.ARM, explore_config=ExploreConfig(loop_bound=2)
    )
    promising = benchmark.pedantic(
        lambda: run_jobs([promising_job])[0], rounds=1, iterations=1
    )
    axiomatic_job = Job.for_program(
        workload.program,
        "axiomatic",
        Arch.ARM,
        axiomatic_config=AxiomaticConfig(loop_bound=2, max_candidates=CANDIDATE_BUDGET),
    )
    start = time.perf_counter()
    axiomatic = run_jobs([axiomatic_job])[0]
    axiomatic_time = time.perf_counter() - start

    assert promising.ok and axiomatic.ok, label
    _rows.append(
        [
            label,
            f"{promising.elapsed_seconds:.2f}s",
            f"{axiomatic_time:.2f}s" + (" (budget)" if axiomatic.stats["truncated"] else ""),
            promising.stats["promise_states"],
            axiomatic.stats["candidates"],
        ]
    )
    assert workload.check(promising.outcomes)
    # herd-style enumeration considers far more candidates than the
    # promising explorer has promise-mode states.
    assert axiomatic.stats["candidates"] > promising.stats["promise_states"]


def test_herd_comparison_summary(table_printer):
    table_printer(
        "§8 herd comparison (reproduction, scaled)",
        ["configuration", "Promising", "axiomatic (herd role)", "prom. states", "candidates"],
        _rows,
    )
    assert len(_rows) == len(CONFIGS)
