"""Experiment E4 — §7 litmus agreement between the two model implementations.

The paper validates the executable Promising model against the axiomatic
models on ~6,500 ARM and ~7,000 RISC-V litmus tests, finding experimental
agreement.  This benchmark runs the reproduction's generated battery plus
the hand-written catalogue through both implementations, asserts full
agreement of the projected outcome sets, and reports the throughput
(tests per second) for each model.
"""

from __future__ import annotations

import time

import pytest

from repro.lang.kinds import Arch
from repro.litmus import all_tests, check_agreement, generate_battery, run_axiomatic, run_promising

pytestmark = pytest.mark.bench

#: Size of the generated-battery slice used here (the full battery has
#: several hundred entries; the unit tests cover another slice).
BATTERY_SIZE = 60


def _battery():
    return generate_battery(max_tests=BATTERY_SIZE) + [
        t for t in all_tests() if t.program.n_threads <= 3
    ]


def test_agreement_rate_arm(benchmark, table_printer):
    tests = _battery()
    report = benchmark.pedantic(lambda: check_agreement(tests, Arch.ARM), rounds=1, iterations=1)
    table_printer(
        "§7 litmus agreement (ARM)",
        ["tests", "agreeing", "rate", "time"],
        [[report.total, report.agreeing, f"{report.agreement_rate * 100:.1f}%",
          f"{report.elapsed_seconds:.1f}s"]],
    )
    assert report.agreement_rate == 1.0, report.describe()


def test_agreement_rate_riscv(benchmark):
    tests = generate_battery(max_tests=BATTERY_SIZE // 2)
    report = benchmark.pedantic(lambda: check_agreement(tests, Arch.RISCV), rounds=1, iterations=1)
    assert report.agreement_rate == 1.0, report.describe()


def test_model_throughput(benchmark, table_printer):
    """Tests per second for each implementation on the catalogue."""
    tests = [t for t in all_tests() if t.program.n_threads <= 3]

    def run_all():
        timings = {}
        start = time.perf_counter()
        for test in tests:
            run_promising(test, Arch.ARM)
        timings["promising"] = time.perf_counter() - start
        start = time.perf_counter()
        for test in tests:
            run_axiomatic(test, Arch.ARM)
        timings["axiomatic"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [model, f"{seconds:.2f}s", f"{len(tests) / seconds:.1f} tests/s"]
        for model, seconds in timings.items()
    ]
    table_printer("litmus throughput (catalogue, ARM)", ["model", "time", "throughput"], rows)
    assert all(seconds > 0 for seconds in timings.values())
