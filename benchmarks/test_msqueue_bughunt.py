"""Experiment E5 — the §8 Michael–Scott queue case study.

The paper's example use case: the conservatively-synchronised queue checks
out (no incorrect state), the relaxed variant is caught by the exhaustive
exploration (an enqueue is observed before its payload), and the tool
produces a witness trace for interactive debugging.  This benchmark times
the exhaustive check of the fixed variant, the bug-finding run on the
relaxed variant, and the witness search.
"""

from __future__ import annotations

import pytest

from repro.harness import Job, run_jobs
from repro.lang.kinds import Arch
from repro.promising import ExploreConfig, explore, find_witness
from repro.workloads import ms_queue

pytestmark = pytest.mark.bench


def _queue_job(workload):
    return Job.for_program(workload.program, "promising", Arch.ARM, name=workload.name)


def test_fixed_queue_has_no_incorrect_state(benchmark):
    workload = ms_queue(("e", "d"), release_link=True)
    result = benchmark.pedantic(
        lambda: run_jobs([_queue_job(workload)])[0], rounds=1, iterations=1
    )
    assert result.ok
    assert workload.violations(result.outcomes) == []


def test_relaxed_queue_bug_is_found(benchmark, table_printer):
    workload = ms_queue(("e", "d"), release_link=False)
    result = benchmark.pedantic(
        lambda: run_jobs([_queue_job(workload)])[0], rounds=1, iterations=1
    )
    assert result.ok
    violations = workload.violations(result.outcomes)
    assert violations, "the relaxed publication bug must be detected"
    table_printer(
        "§8 case study: relaxed Michael–Scott queue",
        ["outcomes", "incorrect states", "exploration time"],
        [[len(result.outcomes), len(violations), f"{result.elapsed_seconds:.2f}s"]],
    )


def test_witness_trace_for_the_bug(benchmark):
    workload = ms_queue(("e", "d"), release_link=False)
    explored = explore(workload.program, ExploreConfig(arch=Arch.ARM))
    target = workload.violations(explored.outcomes)[0]

    trace = benchmark.pedantic(
        lambda: find_witness(
            workload.program, lambda o: o.project() == target.project(), Arch.ARM
        ),
        rounds=1, iterations=1,
    )
    assert trace is not None
    assert any(entry.transition.step.kind == "promise" for entry in trace)


def test_larger_fixed_configuration(benchmark):
    """QU-110-010-style configuration (scaled from the paper's QU rows)."""
    workload = ms_queue(("ed", "d"), release_link=True)
    result = benchmark.pedantic(
        lambda: run_jobs([_queue_job(workload)])[0], rounds=1, iterations=1
    )
    assert result.ok
    assert workload.violations(result.outcomes) == []
