"""Random-walk sampling vs. exhaustive enumeration on a blown-up workload.

The PR 5 capability claim: on state spaces where exhaustive exploration
*truncates* (its ``max_states`` budget trips long before the frontier is
exhausted), the ``sample`` strategy — N seeded bounded random walks with
restart — still returns a verdict-relevant outcome set, in a small
fraction of the time.

The workload is the 3-thread C++-style CAS spinlock (``SLC``) protecting
a shared counter: its interleaved state space under the Flat and naive
promising explorers explodes far past any reasonable budget, while a
single random schedule runs to completion in a few hundred steps.  Every
sampled outcome is a genuinely reachable execution, so each one is
checked against the workload's mutual-exclusion safety condition — a
violation would be a real bug, which is exactly what statistical
litmus-style running is for.

Because the walks are seeded, a run with more samples replays the same
walk prefix: the outcome sets at 8/32/128 samples form a chain, which is
the coverage-vs-samples curve the artifact records.

The results land in ``BENCH_sample.json`` at the repo root (override
with ``BENCH_SAMPLE_PATH``); ``scripts/bench.sh`` refreshes the tracked
copy and ``scripts/check_bench_regression.py`` validates it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.flat import FlatConfig
from repro.harness import Job, execute_job
from repro.promising import ExploreConfig
from repro.workloads.spinlock import spinlock_cxx

pytestmark = pytest.mark.bench

#: The blown-up workload: 3 threads contending on one CAS spinlock.
N_THREADS = 3
#: Exhaustive state budgets chosen so the truncation demonstrably trips
#: in seconds (the true state spaces are orders of magnitude larger —
#: at 100k states the flat explorer is still <5% done after ~25s).
FLAT_BUDGET = 25_000
NAIVE_BUDGET = 15_000
SAMPLE_COUNTS = (8, 32, 128)
SAMPLE_DEPTH = 512
SEED = 0

_rows: dict = {"exhaustive": [], "sample_runs": []}

#: Built once: the workload factory mints fresh scratch-register names per
#: construction, and every run here must execute the *same* program.
_WORKLOAD = spinlock_cxx(n_threads=N_THREADS, acquisitions=1)


def _workload():
    return _WORKLOAD


def _job(model: str, **search_kwargs) -> Job:
    workload = _workload()
    if model == "flat":
        kwargs = {"flat_config": FlatConfig(**search_kwargs)}
    else:
        kwargs = {"explore_config": ExploreConfig(**search_kwargs)}
    return Job.for_program(workload.program, model, **kwargs)


def _violations(outcomes) -> int:
    condition = _workload().condition
    return sum(0 if condition(outcome) else 1 for outcome in outcomes)


@pytest.mark.parametrize(
    "model,budget",
    [("flat", FLAT_BUDGET), ("promising-naive", NAIVE_BUDGET)],
    ids=["flat", "promising-naive"],
)
def test_exhaustive_truncates(model, budget):
    start = time.perf_counter()
    result = execute_job(_job(model, max_states=budget), timeout=120)
    elapsed = time.perf_counter() - start
    assert result.ok, result.error
    assert result.truncated, (
        f"{model} finished within {budget} states — raise N_THREADS or "
        "lower the budget so the benchmark keeps demonstrating truncation"
    )
    assert _violations(result.outcomes) == 0
    _rows["exhaustive"].append(
        {
            "model": model,
            "max_states": budget,
            "truncated": True,
            "n_outcomes": len(result.outcomes),
            "elapsed_seconds": round(elapsed, 3),
        }
    )


def _sample_row(model: str, samples: int) -> dict:
    start = time.perf_counter()
    result = execute_job(
        _job(
            model,
            strategy="sample",
            samples=samples,
            sample_depth=SAMPLE_DEPTH,
            seed=SEED,
        ),
        timeout=120,
    )
    elapsed = time.perf_counter() - start
    assert result.ok, result.error
    assert not result.truncated and result.sampled
    assert len(result.outcomes) >= 1, "a sampled run must produce outcomes"
    violations = _violations(result.outcomes)
    assert violations == 0, "mutual exclusion violated — a real model bug"
    return {
        "model": model,
        "samples": samples,
        "sample_depth": SAMPLE_DEPTH,
        "seed": SEED,
        "samples_run": result.stats["samples_run"],
        "n_outcomes": len(result.outcomes),
        "unique_states": result.stats["unique_sample_states"],
        "coverage_estimate": result.stats["coverage_estimate"],
        "condition_violations": violations,
        "elapsed_seconds": round(elapsed, 3),
        "outcome_digests": sorted(
            json.dumps(
                {"registers": list(o.registers), "memory": list(o.memory)},
                sort_keys=True,
                default=list,
            )
            for o in result.outcomes
        ),
    }


@pytest.mark.parametrize("samples", SAMPLE_COUNTS)
def test_flat_sample_scaling(samples):
    _rows["sample_runs"].append(_sample_row("flat", samples))


def test_naive_sample():
    _rows["sample_runs"].append(_sample_row("promising-naive", SAMPLE_COUNTS[1]))


def test_write_artifact_and_claims(table_printer):
    assert _rows["exhaustive"] and _rows["sample_runs"], "runs must execute first"
    flat_runs = sorted(
        (r for r in _rows["sample_runs"] if r["model"] == "flat"),
        key=lambda r: r["samples"],
    )
    # Seeded walks replay as a prefix: more samples ⇒ a superset of
    # outcomes, which makes the coverage curve monotone.
    for smaller, larger in zip(flat_runs, flat_runs[1:]):
        assert set(smaller["outcome_digests"]) <= set(larger["outcome_digests"])

    by_model = {r["model"]: r for r in _rows["exhaustive"]}
    claims = {}
    for row in _rows["sample_runs"]:
        exhaustive = by_model[row["model"]]
        claims[row["model"]] = bool(
            exhaustive["truncated"]
            and row["n_outcomes"] >= 1
            and row["condition_violations"] == 0
            and row["elapsed_seconds"] < exhaustive["elapsed_seconds"]
        )
    assert all(claims.values()), claims

    artifact = {
        "schema_version": 1,
        "name": "sample-scaling",
        "generated_unix": time.time(),
        "workload": {
            "name": _workload().name,
            "n_threads": N_THREADS,
            "description": _workload().description,
        },
        "sample_depth": SAMPLE_DEPTH,
        "seed": SEED,
        "exhaustive": _rows["exhaustive"],
        "sample_runs": [
            {k: v for k, v in row.items() if k != "outcome_digests"}
            for row in _rows["sample_runs"]
        ],
        "claims": {
            "sample_completes_where_exhaustive_truncates": claims,
            "coverage_is_monotone_in_samples": True,
        },
    }
    default_path = Path(__file__).parent.parent / "BENCH_sample.json"
    path = Path(os.environ.get("BENCH_SAMPLE_PATH", default_path))
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    exhaustive_cells = [
        [
            r["model"],
            f"exhaustive({r['max_states']}) TRUNCATED",
            r["n_outcomes"],
            "-",
            f"{r['elapsed_seconds']:.1f}s",
        ]
        for r in _rows["exhaustive"]
    ]
    sample_cells = [
        [
            r["model"],
            f"sample(n={r['samples']})",
            r["n_outcomes"],
            r["coverage_estimate"],
            f"{r['elapsed_seconds']:.1f}s",
        ]
        for r in _rows["sample_runs"]
    ]
    table_printer(
        "sample vs exhaustive (3-thread CAS spinlock)",
        ["model", "mode", "outcomes", "coverage est.", "time"],
        exhaustive_cells + sample_cells,
    )
