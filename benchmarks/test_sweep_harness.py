"""Harness benchmark — sweep throughput, cache reuse, report artifacts.

Not a paper table: this battery tracks the execution subsystem added for
the §7-scale sweeps.  It measures (a) a cold promising+axiomatic sweep of
the generated battery through the scheduler, (b) the warm rerun hitting
the persistent result cache (which must be at least 5× faster), and
(c) that the JSON report artifact records timings, verdicts and the cache
hit rate.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.harness import ResultCache, run_sweep
from repro.lang.kinds import Arch
from repro.litmus import generate_battery

pytestmark = pytest.mark.bench

BATTERY_SIZE = 40


def test_cold_vs_warm_sweep(benchmark, tmp_path, table_printer):
    tests = generate_battery(max_tests=BATTERY_SIZE)
    cache = ResultCache(tmp_path / "cache")
    report_path = tmp_path / "BENCH_sweep.json"

    cold = benchmark.pedantic(
        lambda: run_sweep(tests, ("promising", "axiomatic"), Arch.ARM,
                          cache=cache, report_path=report_path),
        rounds=1, iterations=1,
    )
    start = time.perf_counter()
    warm = run_sweep(tests, ("promising", "axiomatic"), Arch.ARM,
                     cache=cache, report_path=report_path)
    warm_wall = time.perf_counter() - start

    table_printer(
        "sweep harness: cold vs warm cache",
        ["run", "wall", "cache hit rate", "mismatches"],
        [
            ["cold", f"{cold.wall_seconds:.2f}s",
             f"{cold.report['cache']['hit_rate'] * 100:.0f}%", len(cold.mismatches)],
            ["warm", f"{warm_wall:.2f}s",
             f"{warm.report['cache']['hit_rate'] * 100:.0f}%", len(warm.mismatches)],
        ],
    )
    assert cold.ok and warm.ok
    assert cold.report["cache"]["hit_rate"] == 0.0
    assert warm.report["cache"]["hit_rate"] == 1.0
    assert warm_wall * 5 <= cold.wall_seconds, (warm_wall, cold.wall_seconds)

    artifact = json.loads(report_path.read_text())
    from repro.harness import REPORT_SCHEMA_VERSION

    assert artifact["schema_version"] == REPORT_SCHEMA_VERSION
    assert artifact["n_jobs"] == 2 * len(tests)
    assert all(job["elapsed_seconds"] >= 0 for job in artifact["jobs"])


def test_parallel_sweep_matches_serial(benchmark):
    tests = generate_battery(max_tests=BATTERY_SIZE // 2)
    serial = run_sweep(tests, ("promising", "axiomatic"), Arch.ARM, workers=1)
    parallel = benchmark.pedantic(
        lambda: run_sweep(tests, ("promising", "axiomatic"), Arch.ARM, workers=4),
        rounds=1, iterations=1,
    )
    assert serial.ok and parallel.ok
    for a, b in zip(serial.results, parallel.results):
        assert a.name == b.name and a.model == b.model
        assert a.verdict == b.verdict
        assert set(a.outcomes) == set(b.outcomes)
