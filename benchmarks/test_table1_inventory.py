"""Experiment E1 — Table 1: workload inventory (size and thread counts).

The paper's Table 1 lists, for each of the ten evaluation workloads, its
source language, assembly line count and thread count.  Here the same ten
families are built (in the calculus / through the ARMv8 front end for SLA)
and measured: thread count, static memory-access count, and statement
count; for SLA also the actual assembly line count.  The benchmark times
workload construction, which includes assembling/structurising SLA.
"""

from __future__ import annotations

import pytest

from repro.lang import count_memory_accesses, statement_size
from repro.workloads import FAMILIES

pytestmark = pytest.mark.bench


def build_all():
    return {key: family.builder() for key, family in FAMILIES.items()}


def test_table1_inventory(benchmark, table_printer):
    workloads = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for key, workload in workloads.items():
        family = FAMILIES[key]
        program = workload.program
        accesses = sum(count_memory_accesses(t) for t in program.threads)
        size = sum(statement_size(t) for t in program.threads)
        asm = getattr(workload, "assembly_lines", "-")
        rows.append([key, family.language, program.n_threads, accesses, size, asm])
    table_printer(
        "Table 1 (reproduction): workload inventory",
        ["test", "lang", "threads", "mem accesses", "stmt nodes", "asm lines"],
        rows,
    )
    assert len(rows) == 10
    assert all(row[2] >= 1 for row in rows)


@pytest.mark.parametrize("key", sorted(FAMILIES))
def test_each_family_builds(benchmark, key):
    workload = benchmark.pedantic(FAMILIES[key].builder, rounds=1, iterations=1)
    assert workload.program.n_threads >= 1
