"""Experiment E2 — Table 2: Promising explorer vs the Flat-style baseline.

The paper's Table 2 compares exhaustive-exploration run times of the
Promising tool against Flat on the data-structure workloads, showing
Promising is one to four orders of magnitude faster (Flat frequently times
out).  Here the same comparison runs on scaled-down configurations (the
substrate is a pure-Python model); the *shape* to reproduce is

* Promising finishes quickly on every configuration, and
* the Flat-style baseline explores vastly more states and is slower on
  every configuration (or exhausts its state budget, the analogue of the
  paper's "ooT" entries).
"""

from __future__ import annotations

import time

import pytest

from repro.flat import FlatConfig
from repro.harness import Job, run_jobs
from repro.lang.kinds import Arch
from repro.promising import ExploreConfig
from repro.workloads import (
    ms_queue,
    spinlock_asm,
    spinlock_cxx,
    spsc_queue,
    treiber_stack,
)

pytestmark = pytest.mark.bench

#: Scaled-down Table 2 rows: (paper row, workload builder).
CONFIGS = [
    ("SLA-1 (paper: SLA-7)", lambda: spinlock_asm(2, 1)),
    ("SLC-1 (paper: SLC-3)", lambda: spinlock_cxx(2, 1)),
    ("PCS-1-1 (paper: PCS-3-3)", lambda: spsc_queue(1, 1)),
    ("STC-p-o (paper: STC-100-010-010)", lambda: treiber_stack(("p", "o"))),
    ("QU-e-d (paper: QU-100-010-000)", lambda: ms_queue(("e", "d"))),
]

#: State budget for the baseline — the analogue of the paper's 4 h timeout.
FLAT_STATE_BUDGET = 60_000

_rows: list[list[object]] = []


def _run_promising(workload):
    job = Job.for_program(
        workload.program, "promising", Arch.ARM, explore_config=ExploreConfig(loop_bound=2)
    )
    return run_jobs([job])[0]


def _run_flat(workload):
    job = Job.for_program(
        workload.program,
        "flat",
        Arch.ARM,
        flat_config=FlatConfig(loop_bound=2, max_states=FLAT_STATE_BUDGET),
    )
    return run_jobs([job])[0]


@pytest.mark.parametrize("label,builder", CONFIGS, ids=[c[0].split(" ")[0] for c in CONFIGS])
def test_table2_row(benchmark, label, builder):
    workload = builder()
    promising = benchmark.pedantic(lambda: _run_promising(workload), rounds=1, iterations=1)

    start = time.perf_counter()
    flat = _run_flat(workload)
    flat_time = time.perf_counter() - start

    assert promising.ok and flat.ok, label
    flat_cell = f"{flat_time:.2f}s" + (" (ooT)" if flat.stats["truncated"] else "")
    _rows.append(
        [
            label,
            f"{promising.elapsed_seconds:.2f}s",
            flat_cell,
            promising.stats["promise_states"],
            flat.stats["states"],
        ]
    )

    # Safety of the workload is re-checked while we are here.
    assert workload.check(promising.outcomes), label
    # The headline shape: the Flat-style baseline needs far more states.
    assert flat.stats["states"] > 5 * promising.stats["promise_states"], label
    # And it must not be faster than Promising on any configuration.
    assert flat.stats["truncated"] or flat_time >= promising.elapsed_seconds, label


def test_table2_summary(table_printer):
    table_printer(
        "Table 2 (reproduction, scaled): Promising vs Flat run times",
        ["configuration", "Promising", "Flat-style", "prom. states", "flat states"],
        _rows,
    )
    assert len(_rows) == len(CONFIGS)
