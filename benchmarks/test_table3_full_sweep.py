"""Experiment E2 (continued) — Table 3: the full Promising run-time sweep.

Table 3 of the paper (the appendix version of Table 2) sweeps each workload
family over growing configurations and reports the Promising tool's run
time, showing how the cost grows with the number of operations/unrollings.
This benchmark reproduces the sweep shape on scaled-down configurations:
within each family, larger configurations must cost at least as many
explored states as smaller ones.
"""

from __future__ import annotations

import pytest

from repro.harness import Job, run_jobs
from repro.lang.kinds import Arch
from repro.promising import ExploreConfig
from repro.workloads import (
    chase_lev,
    ms_queue,
    spinlock_asm,
    spinlock_cxx,
    spinlock_rust,
    spmc_queue,
    spsc_queue,
    ticket_lock,
    treiber_stack,
)

pytestmark = pytest.mark.bench

#: (family, config label, builder) — two points per family.
SWEEP = [
    ("SLA", "SLA-1", lambda: spinlock_asm(2, 1)),
    ("SLA", "SLA-2", lambda: spinlock_asm(2, 2)),
    ("SLC", "SLC-1", lambda: spinlock_cxx(2, 1)),
    ("SLC", "SLC-2", lambda: spinlock_cxx(2, 2)),
    ("SLR", "SLR-1", lambda: spinlock_rust(2, 1)),
    ("TL", "TL-1", lambda: ticket_lock(2, 1)),
    ("PCS", "PCS-1-1", lambda: spsc_queue(1, 1)),
    ("PCS", "PCS-2-2", lambda: spsc_queue(2, 2)),
    ("PCM", "PCM-1-1-1", lambda: spmc_queue(1, (1, 1))),
    ("STC", "STC-p-o", lambda: treiber_stack(("p", "o"))),
    ("STC", "STC-pp-o", lambda: treiber_stack(("pp", "o"))),
    ("STR", "STR-p-o", lambda: treiber_stack(("p", "o"), name="STR")),
    ("DQ", "DQ-p-1", lambda: chase_lev("p", (1,))),
    ("DQ", "DQ-pp-1", lambda: chase_lev("pp", (1,))),
    ("QU", "QU-e-d", lambda: ms_queue(("e", "d"))),
    ("QU", "QU-ee-d", lambda: ms_queue(("ee", "d"))),
]

_results: dict[str, list[tuple[str, float, int]]] = {}


@pytest.mark.parametrize("family,label,builder", SWEEP, ids=[s[1] for s in SWEEP])
def test_table3_row(benchmark, family, label, builder):
    workload = builder()
    job = Job.for_program(
        workload.program,
        "promising",
        Arch.ARM,
        explore_config=ExploreConfig(loop_bound=2),
        name=label,
    )
    result = benchmark.pedantic(lambda: run_jobs([job])[0], rounds=1, iterations=1)
    assert result.ok, result.error
    assert workload.check(result.outcomes), label
    _results.setdefault(family, []).append(
        (label, result.elapsed_seconds, result.stats["promise_states"])
    )


def test_table3_summary(table_printer):
    rows = []
    for family, entries in _results.items():
        for label, seconds, states in entries:
            rows.append([family, label, f"{seconds:.2f}s", states])
        # Larger configurations within a family explore at least as much.
        if len(entries) == 2:
            assert entries[1][2] >= entries[0][2], family
    table_printer(
        "Table 3 (reproduction, scaled): Promising run-time sweep",
        ["family", "configuration", "time", "promise-mode states"],
        rows,
    )
    assert rows
