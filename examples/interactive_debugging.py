#!/usr/bin/env python3
"""Interactive stepping through model-allowed executions (the rmem-style UI).

The paper's tool supports interactively stepping through executions to pin
down where an unexpected behaviour comes from.  This example drives the
:class:`repro.promising.InteractiveSession` API programmatically on the
load-buffering (LB) test: it searches for the execution in which both loads
read 1 — which requires a store to be *promised* before its thread's load —
and then replays and prints that trace step by step.

Run with:  python examples/interactive_debugging.py
"""

from repro.lang import LocationEnv, load, make_program, seq, store
from repro.lang.kinds import Arch
from repro.promising import InteractiveSession, find_witness


def load_buffering():
    env = LocationEnv()
    x, y = env["x"], env["y"]
    t0 = seq(load("r1", x), store(y, 1))
    t1 = seq(load("r2", y), store(x, 1))
    return make_program([t0, t1], env=env, name="LB")


def main() -> None:
    program = load_buffering()
    print(program.describe())
    print()

    # 1. Find a witness trace for the relaxed outcome r1 = r2 = 1.
    trace = find_witness(
        program,
        lambda o: o.reg(0, "r1") == 1 and o.reg(1, "r2") == 1,
        arch=Arch.ARM,
    )
    assert trace is not None, "LB must be allowed on ARMv8"
    print(f"witness trace for r1=r2=1 ({len(trace)} transitions):")
    for entry in trace:
        print(f"  [{entry.index}] {entry.transition.description}")
    print()

    # 2. Replay it interactively, showing the machine state after each step.
    session = InteractiveSession(program, Arch.ARM)
    for step_number, entry in enumerate(trace, start=1):
        session.step(entry.index)
        print(f"--- after step {step_number}: {entry.transition.description} ---")
        print(session.state.describe())
        print()

    print("final outcome:", session.outcome().describe(program.loc_names))
    print()
    print("Note how the first transitions are promises: the stores enter memory")
    print("before their loads execute, which is how Promising-ARM explains")
    print("load-buffering without ever executing instructions out of order.")


if __name__ == "__main__":
    main()
