#!/usr/bin/env python3
"""Reproduce the §8 case study: finding a publication bug in a lock-free queue.

The paper's example use case runs a Michael–Scott queue through the
exploration tool.  With conservative release/acquire atomics the tool
reports no incorrect state; after relaxing the publishing write it finds an
execution where a dequeuer observes a node whose data field still holds the
uninitialised value — the node was published before its payload.  The fix
is to make the publication a release write (sound on ARMv8 even though the
relaxed source program is not valid C++).

This example reproduces that workflow: explore both variants, show the
violating outcome, and replay a witness trace through the interactive
stepper for debugging.

Run with:  python examples/msqueue_bughunt.py
"""

from repro.lang.kinds import Arch
from repro.promising import ExploreConfig, explore, find_witness
from repro.workloads import ms_queue


def explore_variant(release_link: bool) -> None:
    variant = "release publication (fixed)" if release_link else "relaxed publication (buggy)"
    workload = ms_queue(("e", "d"), name="QU", release_link=release_link)
    print(f"=== Michael–Scott queue, {variant} ===")
    result = explore(workload.program, ExploreConfig(arch=Arch.ARM))
    violations = workload.violations(result.outcomes)
    print(f"outcomes: {len(result.outcomes)}, violating the queue invariant: {len(violations)}")
    for outcome in violations:
        print("  incorrect final state:", outcome.describe(workload.program.loc_names))
    if violations:
        print("\nsearching for a witness trace of the first violation ...")
        target = violations[0]
        trace = find_witness(
            workload.program,
            lambda o: o.project() == target.project(),
            arch=Arch.ARM,
        )
        if trace is None:
            print("  (no witness found within the search bounds)")
        else:
            print(f"  witness with {len(trace)} machine transitions:")
            for entry in trace:
                print(f"    {entry.transition.description}")
    print()


def main() -> None:
    explore_variant(release_link=True)
    explore_variant(release_link=False)
    print("Fix: make the write that links the new node a release write —")
    print("unsound as C++ relaxed atomics, but sound under the ARMv8 model,")
    print("exactly as discussed in §8 of the paper.")


if __name__ == "__main__":
    main()
