#!/usr/bin/env python3
"""Quickstart: explore the message-passing litmus test under Promising-ARM.

This walks the core API end to end:

1. build a small concurrent program in the paper's calculus,
2. exhaustively enumerate its architecturally allowed outcomes with the
   promising model,
3. cross-check the verdict against the reference axiomatic model,
4. strengthen the program (barrier + address dependency) and observe the
   relaxed outcome disappear.

Run with:  python examples/quickstart.py
"""

from repro.lang import (
    DMB_SY,
    LocationEnv,
    dependency_idiom,
    load,
    make_program,
    seq,
    store,
)
from repro.lang.kinds import Arch
from repro.litmus import RegEq, cond_and
from repro.promising import ExploreConfig, explore
from repro.axiomatic import enumerate_axiomatic_outcomes
from repro.tools import compare_models


def message_passing(with_ordering: bool) -> "Program":
    """The MP shape: T0 publishes data then a flag, T1 reads flag then data."""
    env = LocationEnv()
    data, flag = env["data"], env["flag"]
    if with_ordering:
        writer = seq(store(data, 37), DMB_SY, store(flag, 1))
        reader = seq(load("r1", flag), load("r2", dependency_idiom(data, "r1")))
    else:
        writer = seq(store(data, 37), store(flag, 1))
        reader = seq(load("r1", flag), load("r2", data))
    return make_program(
        [writer, reader], env=env, name="MP" + ("+dmb+addr" if with_ordering else "")
    )


def main() -> None:
    relaxed = cond_and(RegEq(1, "r1", 1), RegEq(1, "r2", 0))

    for with_ordering in (False, True):
        program = message_passing(with_ordering)
        print(f"=== {program.name} ===")
        print(program.describe())

        result = explore(program, ExploreConfig(arch=Arch.ARM))
        observed = result.outcomes.any_satisfies(relaxed.holds)
        print(f"\npromising model: {len(result.outcomes)} final states "
              f"({result.stats.describe()})")
        print(result.outcomes.describe(program.loc_names))
        print(f"relaxed outcome (r1=1, r2=0) observed: {observed}")

        axiomatic = enumerate_axiomatic_outcomes(program)
        print(f"axiomatic model: {len(axiomatic.outcomes)} final states")

        comparison = compare_models(program, Arch.ARM)
        print(comparison.describe())
        print()

    print("Summary: without ordering the stale read is architecturally allowed;")
    print("the dmb.sy + address dependency version forbids it, in both models.")


if __name__ == "__main__":
    main()
