#!/usr/bin/env python3
"""Check a hand-written AArch64 spinlock through the assembly front end.

This mirrors the paper's SLA workload (a Linux-derived spinlock written in
assembly): the assembly text is parsed by the ARMv8 front end, structurised
into the calculus, and exhaustively explored.  The safety condition is that
the shared counter equals the number of critical sections that actually ran
— mutual exclusion means no increment is lost.

The example also shows what goes wrong without the ordering: replacing the
release store (STLR) in the unlock path with a plain STR lets the unlock be
observed before the counter update, and the checker finds lost updates.

Run with:  python examples/spinlock_assembly.py
"""

from repro.isa import ThreadSource, assemble_program, assembly_line_count
from repro.lang import LocationEnv
from repro.lang.kinds import Arch
from repro.promising import ExploreConfig, explore
from repro.outcomes import Outcome

SPINLOCK_ASM = """
    // acquire the lock at [X1]
retry:
    LDAXR   X0, [X1]
    CBNZ    X0, out
    MOV     X2, #1
    STXR    W3, X2, [X1]
    CBNZ    W3, retry
    // critical section: increment the counter at [X5]
    LDR     X4, [X5]
    ADD     X4, X4, #1
    STR     X4, [X5]
    ADD     X7, X7, #1
    // release the lock
    {unlock} XZR, [X1]
out:
    NOP
"""


def build(unlock: str, n_threads: int = 2):
    env = LocationEnv()
    lock, counter = env["lock"], env["counter"]
    text = SPINLOCK_ASM.format(unlock=unlock)
    sources = [ThreadSource(text, {"X1": lock, "X5": counter}) for _ in range(n_threads)]
    program = assemble_program(sources, Arch.ARM, env=env, name=f"SLA/{unlock}", unroll_bound=2)
    return program, counter, assembly_line_count(sources)


def mutual_exclusion_holds(outcome: Outcome, counter: int, n_threads: int) -> bool:
    performed = sum(outcome.reg(tid, "X7") for tid in range(n_threads))
    return outcome.mem(counter) == performed


def main() -> None:
    for unlock in ("STLR", "STR"):
        program, counter, lines = build(unlock)
        print(f"=== spinlock with {unlock} unlock ({lines} assembly lines/thread pair) ===")
        result = explore(program, ExploreConfig(arch=Arch.ARM, loop_bound=2))
        bad = [o for o in result.outcomes
               if not mutual_exclusion_holds(o, counter, program.n_threads)]
        print(f"outcomes: {len(result.outcomes)}, lost-update states: {len(bad)} "
              f"({result.stats.describe()})")
        for outcome in bad[:3]:
            print("  incorrect:", outcome.describe(program.loc_names))
        print()
    print("The STLR (release) unlock keeps the critical-section writes inside the")
    print("lock; a plain STR unlock lets them leak out and updates can be lost.")


if __name__ == "__main__":
    main()
