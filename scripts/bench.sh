#!/usr/bin/env bash
# Run a small litmus sweep through the parallel harness and refresh the
# tracked perf artifacts BENCH_sweep.json and BENCH_fuzz.json at the repo
# root.
#
# The sweep runs twice against the persistent cache: the first (cold) run
# computes every outcome set, the second (warm) run recalls them by
# fingerprint. The committed artifact is the warm run, so its cache block
# records the reuse rate; the cold/warm wall times are printed for the
# perf trajectory.
#
# The fuzz stage then runs a bounded differential battery over the
# cycle-generated corpus (promising vs axiomatic on both architectures,
# every cycle family, capped per family so the bound preserves coverage)
# and writes BENCH_fuzz.json: corpus size, per-model timings, mismatch
# count, and the cache hit rate.
#
# The service stage then benchmarks the long-lived serving layer
# (scripts/bench_service.py): cold single-shot CLI runs vs warm
# LRU-served requests through a real `promising-arm serve` process, plus
# a concurrent-identical-request burst proving coalescing; it writes
# BENCH_service.json.
#
# The sample stage (benchmarks/test_sample_scaling.py) demonstrates the
# random-walk `sample` strategy on a blown-up workload where exhaustive
# exploration truncates, writing the coverage-vs-samples curve to
# BENCH_sample.json.
#
# The obs stage (scripts/bench_obs.py) measures instrumentation overhead:
# the same serial sweep with the metrics/tracing layer live vs under
# REPRO_OBS_DISABLED=1, writing the ratio to BENCH_obs.json (the ≤5%
# bound is enforced by scripts/check_bench_regression.py).
#
# The backend stage (scripts/bench_backend.py) races the packed execution
# backend against the object reference on the large-state-space sweep
# (naive explorer, IRIW-family workloads), writing per-family speedups
# and outcome digests to BENCH_backend.json (the ≥10x aggregate and
# digest bit-identity are enforced by scripts/check_bench_regression.py).
#
# The distrib stage (scripts/bench_distrib.py) runs the corpus through
# the SQLite work-queue coordinator at 1/2/4 fleet workers plus a warm
# cache-served rerun, writing scaling rows, digests and the
# effective-parallelism probe to BENCH_distrib.json (digest identity,
# exactly-once and the scaling-or-hardware-limited claim are enforced
# by scripts/check_bench_regression.py).
#
# Knobs: SWEEP_TESTS (battery size), SWEEP_WORKERS, SWEEP_MODELS,
#        FUZZ_PER_FAMILY (fuzz corpus bound per cycle family), FUZZ_MODELS,
#        SERVICE_REQUESTS (warm served requests in the service stage).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

TESTS="${SWEEP_TESTS:-40}"
WORKERS="${SWEEP_WORKERS:-2}"
MODELS="${SWEEP_MODELS:-promising,axiomatic}"
FUZZ_PER_FAMILY="${FUZZ_PER_FAMILY:-6}"
FUZZ_MODELS="${FUZZ_MODELS:-promising,axiomatic}"
CACHE_DIR=".sweep-cache"

run_sweep() {
    python -m repro.tools sweep \
        --max-tests "$TESTS" --workers "$WORKERS" --models "$MODELS" \
        --cache-dir "$CACHE_DIR" --report BENCH_sweep.json
}

echo "== cold sweep ($TESTS tests, $MODELS, $WORKERS workers) =="
rm -rf "$CACHE_DIR"
# Durations are measured on the monotonic clock: an NTP step of the wall
# clock mid-benchmark must not distort the cold/warm comparison.
cold_start=$(python -c 'import time; print(time.monotonic())')
run_sweep
cold_end=$(python -c 'import time; print(time.monotonic())')

echo "== warm sweep (persistent cache at $CACHE_DIR) =="
run_sweep
warm_end=$(python -c 'import time; print(time.monotonic())')

python - "$cold_start" "$cold_end" "$warm_end" <<'EOF'
import json, sys
cold = float(sys.argv[2]) - float(sys.argv[1])
warm = float(sys.argv[3]) - float(sys.argv[2])
report = json.load(open("BENCH_sweep.json"))
print(f"cold: {cold:.2f}s  warm: {warm:.2f}s  speedup: {cold / warm:.1f}x")
print(f"cache hit rate (warm run): {report['cache']['hit_rate'] * 100:.0f}%")
print(f"jobs: {report['n_jobs']}  statuses: {report['status_counts']}  "
      f"mismatches: {len(report['mismatches'])}")
EOF
echo "report written to BENCH_sweep.json"

echo "== differential fuzz battery (≤$FUZZ_PER_FAMILY tests/family, $FUZZ_MODELS, arm+riscv, $WORKERS workers) =="
python -m repro.tools fuzz \
    --max-per-family "$FUZZ_PER_FAMILY" --workers "$WORKERS" --models "$FUZZ_MODELS" \
    --cache-dir "$CACHE_DIR" --report BENCH_fuzz.json

python - <<'EOF'
import json
report = json.load(open("BENCH_fuzz.json"))
fuzz = report["extra"]["fuzz"]
print(f"corpus: {fuzz['corpus_size']} tests over {len(fuzz['families'])} families")
print(f"model seconds: {fuzz['model_seconds']}")
print(f"counterexamples: {fuzz['counterexample_count']}  "
      f"cache hit rate: {report['cache']['hit_rate'] * 100:.0f}%  "
      f"store failures: {report['cache']['store_failures']}")
EOF
echo "report written to BENCH_fuzz.json"

echo "== service benchmark (cold CLI vs warm served; writes BENCH_service.json) =="
python scripts/bench_service.py --warm-requests "${SERVICE_REQUESTS:-200}"

echo "== sample-vs-exhaustive scaling (writes BENCH_sample.json) =="
python -m pytest -q benchmarks/test_sample_scaling.py

python - <<'EOF'
import json
report = json.load(open("BENCH_sample.json"))
for row in report["exhaustive"]:
    print(f"{row['model']}: exhaustive TRUNCATED at {row['max_states']} states "
          f"({row['n_outcomes']} outcomes, {row['elapsed_seconds']}s)")
for row in report["sample_runs"]:
    print(f"{row['model']}: sample n={row['samples']} -> {row['n_outcomes']} outcomes, "
          f"coverage est. {row['coverage_estimate']}, {row['elapsed_seconds']}s")
print(f"claims: {report['claims']}")
EOF
echo "report written to BENCH_sample.json"

echo "== dedup ablation (writes BENCH_dedup.json) =="
python -m pytest -q benchmarks/test_dedup_speedup.py

python - <<'EOF'
import json
report = json.load(open("BENCH_dedup.json"))
agg = report["aggregate_completing_pairs"]
print(f"dedup-on vs dedup-off (completing pairs): {agg['speedup']}x "
      f"({agg['off_seconds']}s -> {agg['on_seconds']}s)")
print(f"interleaved explorers (naive/flat): {report['interleaved_explorers_speedup']}x")
EOF
echo "report written to BENCH_dedup.json"

echo "== observability overhead (instrumented vs REPRO_OBS_DISABLED=1; writes BENCH_obs.json) =="
python scripts/bench_obs.py

echo "== execution backends (packed vs object on the stress sweep; writes BENCH_backend.json) =="
python scripts/bench_backend.py

python - <<'EOF2'
import json
report = json.load(open("BENCH_backend.json"))
agg = report["aggregate"]
print(f"packed vs object (gated rows): {agg['speedup']}x "
      f"({agg['object_seconds']}s -> {agg['packed_seconds']}s)")
print(f"claims: {report['claims']}")
EOF2
echo "report written to BENCH_backend.json"

echo "== distributed scaling (SQLite queue, 1/2/4 fleet workers; writes BENCH_distrib.json) =="
python scripts/bench_distrib.py

python - <<'EOF3'
import json
report = json.load(open("BENCH_distrib.json"))
for row in report["rows"]:
    print(f"{row['workers']} worker(s): {row['wall_seconds']}s "
          f"(speedup {row['speedup_vs_1']}x, digest "
          f"{'ok' if row['digest_match'] else 'MISMATCH'})")
print(f"coordinator overhead: {report['coordinator_overhead_ratio']}x  "
      f"effective parallelism: {report['effective_parallelism']}"
      + ("  [hardware-limited]" if report["hardware_limited"] else ""))
print(f"claims: {report['claims']}")
EOF3
echo "report written to BENCH_distrib.json"
