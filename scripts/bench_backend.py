#!/usr/bin/env python
"""Packed-vs-object backend sweep; writes the tracked ``BENCH_backend.json``.

The tracked sweep is the *transition hot path* at scale: the naive
reference explorer (every certified machine step interleaved — the
ablation baseline of the promise-first strategy) on the catalogue's
largest multicopy-atomicity shapes plus scaled IRIW variants whose state
spaces grow into the tens of thousands.  That is the regime the packed
backend exists for: the object backend re-walks dataclass graphs per
visit, while the packed backend replays interned integer memos, so its
advantage grows with the number of revisited thread configurations.

Two legs per family, alternated within each repeat (drift hits both
alike), minimum wall time compared (the standard low-noise estimator for
deterministic CPU-bound work).  Besides the gated aggregate the report
records *context* rows — promise-first and Flat runs — whose speedups
are informational, but whose outcome digests are still required to be
bit-identical: the backend may never change semantics anywhere.

``scripts/check_bench_regression.py`` enforces the schema, the ≥10x
aggregate claim over the gated rows, and digest bit-identity on every
row, against the committed artifact.

Usage::

    PYTHONPATH=src python scripts/bench_backend.py [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.explore import BACKENDS  # noqa: E402
from repro.flat import FlatConfig, explore_flat  # noqa: E402
from repro.harness.report import outcome_set_digest  # noqa: E402
from repro.lang import LocationEnv, load, make_program, seq, store  # noqa: E402
from repro.litmus import get_test  # noqa: E402
from repro.promising import ExploreConfig, explore, explore_naive  # noqa: E402

MAX_STATES = 2_000_000


def scaled_iriw(readers: int, reads: int):
    """IRIW blown up: 2 writers, ``readers`` observer threads of ``reads``
    alternating loads each.  State count grows combinatorially with both
    knobs, which is exactly the regime the packed backend targets."""
    env = LocationEnv(stride=8)
    x, y = env["x"], env["y"]
    threads = [store(x, 1), store(y, 1)]
    for r in range(readers):
        locs = (x, y) if r % 2 == 0 else (y, x)
        threads.append(seq(*(load(f"r{i}", locs[i % 2]) for i in range(reads))))
    return make_program(threads, env=env, name=f"IRIW+pos+{readers}r{reads}w")


def _catalogue(name):
    return get_test(name).program


#: (family name, model, program thunk, gated?).  Gated rows form the
#: tracked aggregate; context rows are digest-checked only.
FAMILIES = [
    ("IRIW+pos", "promising-naive", lambda: _catalogue("IRIW+pos"), True),
    ("IRIW+addrs", "promising-naive", lambda: _catalogue("IRIW+addrs"), True),
    ("WRC+pos", "promising-naive", lambda: _catalogue("WRC+pos"), True),
    ("IRIW+pos+3r2w", "promising-naive", lambda: scaled_iriw(3, 2), True),
    ("IRIW+pos+2r3w", "promising-naive", lambda: scaled_iriw(2, 3), True),
    ("IRIW+pos+2r4w", "promising-naive", lambda: scaled_iriw(2, 4), True),
    ("IRIW+pos+3r2w", "promising", lambda: scaled_iriw(3, 2), False),
    ("MP", "promising", lambda: _catalogue("MP"), False),
    ("MP", "flat", lambda: _catalogue("MP"), False),
]


def run_once(model: str, program, backend: str):
    """One exploration; returns (seconds, digest, states)."""
    if model == "flat":
        config = FlatConfig(backend=backend, max_states=MAX_STATES)
        runner = explore_flat
    else:
        config = ExploreConfig(backend=backend, max_states=MAX_STATES)
        runner = explore if model == "promising" else explore_naive
    start = time.perf_counter()
    result = runner(program, config)
    elapsed = time.perf_counter() - start
    if result.stats.truncated:
        raise SystemExit(f"{program.name} ({model}, {backend}) truncated — raise MAX_STATES")
    states = getattr(result.stats, "promise_states", None)
    if states is None:
        states = result.stats.states
    return elapsed, outcome_set_digest(result.outcomes), states


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per (family, backend); the minimum is compared",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="recorded aggregate speedup claim over the gated rows",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_backend.json"))
    args = parser.parse_args(argv)

    rows = []
    for name, model, make_program_, gated in FAMILIES:
        program = make_program_()
        times: dict[str, list[float]] = {b: [] for b in BACKENDS}
        digests: dict[str, str] = {}
        states = 0
        for _repeat in range(args.repeats):
            for backend in BACKENDS:
                seconds, digest, states = run_once(model, program, backend)
                times[backend].append(seconds)
                previous = digests.setdefault(backend, digest)
                if previous != digest:
                    raise SystemExit(
                        f"{name} ({model}, {backend}): digest unstable across repeats"
                    )
        object_s = min(times["object"])
        packed_s = min(times["packed"])
        row = {
            "name": name,
            "model": model,
            "gated": gated,
            "states": states,
            "object_seconds": round(object_s, 4),
            "packed_seconds": round(packed_s, 4),
            "speedup": round(object_s / packed_s, 2),
            "digest_object": digests["object"],
            "digest_packed": digests["packed"],
            "digest_match": digests["object"] == digests["packed"],
        }
        rows.append(row)
        marker = "" if row["digest_match"] else "  DIGEST MISMATCH"
        print(
            f"{name:18s} {model:16s} obj {object_s:7.3f}s  packed {packed_s:7.3f}s  "
            f"x{row['speedup']:5.1f}{'' if gated else '  (context)'}{marker}"
        )

    gated_rows = [r for r in rows if r["gated"]]
    object_total = sum(r["object_seconds"] for r in gated_rows)
    packed_total = sum(r["packed_seconds"] for r in gated_rows)
    aggregate = object_total / packed_total if packed_total else float("inf")
    digests_ok = all(r["digest_match"] for r in rows)
    report = {
        "schema_version": 1,
        "name": "backend-sweep",
        "generated_unix": int(time.time()),
        "model_note": (
            "gated rows run the naive reference explorer (the fully "
            "interleaved transition relation); context rows cover the "
            "promise-first and Flat explorers"
        ),
        "repeats": args.repeats,
        "min_speedup": args.min_speedup,
        "families": rows,
        "aggregate": {
            "object_seconds": round(object_total, 4),
            "packed_seconds": round(packed_total, 4),
            "speedup": round(aggregate, 2),
        },
        "claims": {
            "digests_identical": digests_ok,
            "speedup_at_least_min": aggregate >= args.min_speedup,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"aggregate (gated): object {object_total:.3f}s  packed {packed_total:.3f}s  "
        f"x{aggregate:.1f} (claim: >= {args.min_speedup:.0f}x)"
    )
    print(f"report written to {args.output}")
    return 0 if digests_ok and aggregate >= args.min_speedup else 1


if __name__ == "__main__":
    sys.exit(main())
