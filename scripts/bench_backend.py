#!/usr/bin/env python
"""Packed-vs-object backend sweep; writes the tracked ``BENCH_backend.json``.

The tracked sweep covers the hot path of every explorer at scale:

* the naive reference explorer (every certified machine step
  interleaved — the ablation baseline of the promise-first strategy) on
  the catalogue's largest multicopy-atomicity shapes plus scaled IRIW
  variants whose state spaces grow into the tens of thousands;
* the promise-first explorer on writer/reader products where the
  per-thread completion enumeration and the outcome cross product
  dominate — the regime the interned certification graphs and id-level
  outcome accumulation target;
* the Flat explorer on multicopy-atomicity shapes, where the packed
  window/restart/reservation representation replays memoised per-thread
  transitions instead of re-deriving them per visit.

Two legs per family, alternated within each repeat (drift hits both
alike), minimum wall time compared (the standard low-noise estimator for
deterministic CPU-bound work).  Gated rows carry a per-row ``min_speedup``
floor besides feeding the aggregate claim; context rows are
digest-checked only.  Every row records the packed leg's memo traffic
(``memo_hits``/``memo_misses``) so reruns can distinguish "fast because
memoised" from "fast because compiled".  Outcome digests must be
bit-identical between legs and across repeats everywhere: the backend
may never change semantics.

``scripts/check_bench_regression.py`` enforces the schema, the ≥10x
aggregate claim over the gated naive rows, each row's own floor, and
digest bit-identity on every row, against the committed artifact.

Usage::

    PYTHONPATH=src python scripts/bench_backend.py [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.explore import BACKENDS  # noqa: E402
from repro.flat import FlatConfig, explore_flat  # noqa: E402
from repro.harness.report import outcome_set_digest  # noqa: E402
from repro.lang import LocationEnv, load, make_program, seq, store  # noqa: E402
from repro.litmus import get_test  # noqa: E402
from repro.promising import ExploreConfig, explore, explore_naive  # noqa: E402

MAX_STATES = 2_000_000


def scaled_iriw(readers: int, reads: int):
    """IRIW blown up: 2 writers, ``readers`` observer threads of ``reads``
    alternating loads each.  State count grows combinatorially with both
    knobs, which is exactly the regime the packed backend targets."""
    env = LocationEnv(stride=8)
    x, y = env["x"], env["y"]
    threads = [store(x, 1), store(y, 1)]
    for r in range(readers):
        locs = (x, y) if r % 2 == 0 else (y, x)
        threads.append(seq(*(load(f"r{i}", locs[i % 2]) for i in range(reads))))
    return make_program(threads, env=env, name=f"IRIW+pos+{readers}r{reads}w")


def writers_readers(writes: int, readers: int, reads: int):
    """Two writer threads of ``writes`` stores each against ``readers``
    observer threads of ``reads`` alternating loads.  Final memories stay
    few while per-thread completion sets and their cross product explode —
    the promise-first explorer's hot path."""
    env = LocationEnv(stride=8)
    x, y = env["x"], env["y"]
    threads = [
        seq(*(store(x, i + 1) for i in range(writes))),
        seq(*(store(y, i + 1) for i in range(writes))),
    ]
    for r in range(readers):
        locs = (x, y) if r % 2 == 0 else (y, x)
        threads.append(seq(*(load(f"r{i}", locs[i % 2]) for i in range(reads))))
    return make_program(threads, env=env, name=f"W{writes}x2+R{readers}x{reads}")


def scaled_wrc(extra_loads: int):
    """WRC+pos with ``extra_loads`` further reads of ``x`` on the observer
    thread: speculation depth (and so the Flat window interleaving space)
    grows with every load."""
    env = LocationEnv(stride=8)
    x, y = env["x"], env["y"]
    t0 = store(x, 1)
    t1 = seq(load("r0", x), store(y, 1))
    t2 = seq(load("r1", y), *(load(f"r{i + 2}", x) for i in range(extra_loads)))
    return make_program([t0, t1, t2], env=env, name=f"WRC+pos+{extra_loads}l")


def _catalogue(name):
    return get_test(name).program


#: (family name, model, program thunk, gated?, per-row speedup floor).
#: Gated naive rows form the tracked aggregate; every gated row is also
#: held to its own floor; context rows (floor ``None``) are
#: digest-checked only.
FAMILIES = [
    ("IRIW+pos", "promising-naive", lambda: _catalogue("IRIW+pos"), True, 3.0),
    ("IRIW+addrs", "promising-naive", lambda: _catalogue("IRIW+addrs"), True, 3.0),
    ("WRC+pos", "promising-naive", lambda: _catalogue("WRC+pos"), True, 3.0),
    ("IRIW+pos+3r2w", "promising-naive", lambda: scaled_iriw(3, 2), True, 3.0),
    ("IRIW+pos+2r3w", "promising-naive", lambda: scaled_iriw(2, 3), True, 3.0),
    ("IRIW+pos+2r4w", "promising-naive", lambda: scaled_iriw(2, 4), True, 3.0),
    ("W3x2+R2x4", "promising", lambda: writers_readers(3, 2, 4), True, 3.0),
    ("W2x2+R3x3", "promising", lambda: writers_readers(2, 3, 3), True, 3.0),
    ("IRIW+pos", "flat", lambda: _catalogue("IRIW+pos"), True, 3.0),
    ("WRC+pos+3l", "flat", lambda: scaled_wrc(3), True, 3.0),
    ("MP", "promising", lambda: _catalogue("MP"), False, None),
    ("MP", "flat", lambda: _catalogue("MP"), False, None),
]


def _memo_traffic(stats) -> tuple[int, int]:
    """Packed-leg memo hits/misses across every memo table the backend
    keeps (certification, step replay, completion sets)."""
    cert_calls = getattr(stats, "cert_calls", 0)
    cert_hits = getattr(stats, "cert_memo_hits", 0)
    hits = (
        cert_hits
        + getattr(stats, "step_memo_hits", 0)
        + getattr(stats, "completion_memo_hits", 0)
    )
    misses = (cert_calls - cert_hits) + getattr(stats, "step_memo_misses", 0)
    return hits, misses


def run_once(model: str, program, backend: str):
    """One exploration; returns (seconds, digest, states, stats)."""
    if model == "flat":
        config = FlatConfig(backend=backend, max_states=MAX_STATES)
        runner = explore_flat
    else:
        config = ExploreConfig(backend=backend, max_states=MAX_STATES)
        runner = explore if model == "promising" else explore_naive
    start = time.perf_counter()
    result = runner(program, config)
    elapsed = time.perf_counter() - start
    if result.stats.truncated:
        raise SystemExit(f"{program.name} ({model}, {backend}) truncated — raise MAX_STATES")
    states = getattr(result.stats, "promise_states", None)
    if states is None:
        states = result.stats.states
    return elapsed, outcome_set_digest(result.outcomes), states, result.stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per (family, backend); the minimum is compared",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="recorded aggregate speedup claim over the gated rows",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_backend.json"))
    args = parser.parse_args(argv)

    rows = []
    for name, model, make_program_, gated, min_speedup in FAMILIES:
        program = make_program_()
        times: dict[str, list[float]] = {b: [] for b in BACKENDS}
        digests: dict[str, str] = {}
        states = 0
        memo_hits = memo_misses = 0
        for _repeat in range(args.repeats):
            for backend in BACKENDS:
                seconds, digest, states, stats = run_once(model, program, backend)
                times[backend].append(seconds)
                if backend == "packed":
                    memo_hits, memo_misses = _memo_traffic(stats)
                previous = digests.setdefault(backend, digest)
                if previous != digest:
                    raise SystemExit(
                        f"{name} ({model}, {backend}): digest unstable across repeats"
                    )
        object_s = min(times["object"])
        packed_s = min(times["packed"])
        row = {
            "name": name,
            "model": model,
            "gated": gated,
            "min_speedup": min_speedup,
            "states": states,
            "memo_hits": memo_hits,
            "memo_misses": memo_misses,
            "object_seconds": round(object_s, 4),
            "packed_seconds": round(packed_s, 4),
            "speedup": round(object_s / packed_s, 2),
            "digest_object": digests["object"],
            "digest_packed": digests["packed"],
            "digest_match": digests["object"] == digests["packed"],
        }
        rows.append(row)
        marker = "" if row["digest_match"] else "  DIGEST MISMATCH"
        print(
            f"{name:18s} {model:16s} obj {object_s:7.3f}s  packed {packed_s:7.3f}s  "
            f"x{row['speedup']:5.1f}{'' if gated else '  (context)'}{marker}"
        )

    naive_rows = [r for r in rows if r["gated"] and r["model"] == "promising-naive"]
    object_total = sum(r["object_seconds"] for r in naive_rows)
    packed_total = sum(r["packed_seconds"] for r in naive_rows)
    aggregate = object_total / packed_total if packed_total else float("inf")
    digests_ok = all(r["digest_match"] for r in rows)
    floors_ok = all(
        r["speedup"] >= r["min_speedup"]
        for r in rows
        if r["gated"] and r["min_speedup"] is not None
    )
    report = {
        "schema_version": 2,
        "name": "backend-sweep",
        "generated_unix": int(time.time()),
        "model_note": (
            "gated rows cover all three explorers (naive reference, "
            "promise-first, Flat), each held to its per-row min_speedup "
            "floor; the aggregate claim spans the gated naive rows; "
            "context rows are digest-checked only"
        ),
        "repeats": args.repeats,
        "min_speedup": args.min_speedup,
        "families": rows,
        "aggregate": {
            "object_seconds": round(object_total, 4),
            "packed_seconds": round(packed_total, 4),
            "speedup": round(aggregate, 2),
        },
        "claims": {
            "digests_identical": digests_ok,
            "speedup_at_least_min": aggregate >= args.min_speedup,
            "per_row_floors_met": floors_ok,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"aggregate (gated naive): object {object_total:.3f}s  "
        f"packed {packed_total:.3f}s  "
        f"x{aggregate:.1f} (claim: >= {args.min_speedup:.0f}x)"
    )
    print(f"report written to {args.output}")
    return 0 if digests_ok and aggregate >= args.min_speedup and floors_ok else 1


if __name__ == "__main__":
    sys.exit(main())
