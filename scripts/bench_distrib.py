#!/usr/bin/env python
"""Benchmark the distributed work-queue path and write ``BENCH_distrib.json``.

Four legs, all over the same stress corpus:

* **Pooled reference** — the corpus through the in-process scheduler
  (serial), establishing the wall-clock and per-job outcome digests the
  distributed rows must reproduce bit-identically.
* **Scaling rows** — the corpus through :func:`run_distributed` with a
  SQLite queue and 1, 2 and 4 fleet worker processes, each row on a
  fresh queue with no result cache so every job is really computed.
* **Warm rerun** — the 2-worker row again against a shared result cache
  warmed by a prior run: dedup-through-cache must serve every job
  without recomputing any (``computed_jobs == 0``).
* **Parallelism probe** — fixed CPU-bound work per process at 1/2/4
  concurrent processes.  ``effective_parallelism`` is what the machine
  actually delivers; on single-core runners the ≥``--min-speedup``
  scaling claim is recorded as ``hardware_limited`` instead of failed,
  because no queue can outrun the silicon.  The digest-identity,
  exactly-once and coordinator-overhead claims hold regardless.

Validation of the committed artifact (including the hardware-limited
branch) is ``scripts/check_bench_regression.py``'s job.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distrib import DistribConfig, run_distributed  # noqa: E402
from repro.harness import run_jobs  # noqa: E402
from repro.harness.report import outcome_set_digest  # noqa: E402
from repro.harness.sweep import build_jobs  # noqa: E402
from repro.litmus import generate_cycle_battery  # noqa: E402

WORKER_COUNTS = (1, 2, 4)
PROBE_SPIN = 2_000_000


def parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-per-family", type=int, default=3, help="corpus bound per family")
    parser.add_argument(
        "--models", default="promising,axiomatic", help="comma-separated model list"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.7,
        help="required 4-worker speedup (when the hardware can parallelise)",
    )
    parser.add_argument(
        "--overhead-bound",
        type=float,
        default=1.75,
        help="max allowed 1-worker distributed wall vs the pooled serial wall",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_distrib.json"))
    return parser.parse_args(argv)


def batch_digest(results) -> str:
    """One digest over the whole batch: order- and content-sensitive."""
    joined = "\n".join(outcome_set_digest(r.outcomes) or f"!{r.status}" for r in results)
    return hashlib.sha256(joined.encode()).hexdigest()[:16]


def _spin(_index: int) -> int:
    acc = 0
    for i in range(PROBE_SPIN):
        acc = (acc + i * i) % 1_000_003
    return acc


def probe_effective_parallelism() -> tuple[float, dict[str, float]]:
    """Fixed work per process: N concurrent processes on N real cores take
    the single-process wall; on one core they take N times it."""
    ctx = multiprocessing.get_context()
    walls: dict[str, float] = {}
    for procs in (1, 2, 4):
        start = time.monotonic()
        workers = [ctx.Process(target=_spin, args=(i,)) for i in range(procs)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        walls[str(procs)] = round(time.monotonic() - start, 3)
    effective = max(procs * walls["1"] / walls[str(procs)] for procs in (2, 4))
    return round(effective, 2), walls


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    models = tuple(args.models.split(","))
    tests = generate_cycle_battery(max_per_family=args.max_per_family)
    jobs = build_jobs(tests, models=models)
    print(f"corpus: {len(tests)} tests x {'+'.join(models)} = {len(jobs)} jobs")

    effective_parallelism, probe_walls = probe_effective_parallelism()
    print(f"probe : effective parallelism {effective_parallelism} (walls {probe_walls})")

    start = time.monotonic()
    pooled_results = run_jobs(jobs)
    pooled_wall = time.monotonic() - start
    pooled_digest = batch_digest(pooled_results)
    ok = sum(r.ok for r in pooled_results)
    print(f"pooled: {pooled_wall:.2f}s serial, {ok}/{len(jobs)} ok, digest {pooled_digest}")

    rows = []
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-distrib-") as tmp:
        for workers in WORKER_COUNTS:
            queue = Path(tmp) / f"queue-{workers}.db"
            start = time.monotonic()
            run = run_distributed(
                jobs, config=DistribConfig(backend_url=str(queue), workers=workers)
            )
            wall = time.monotonic() - start
            digest = batch_digest(run.results)
            row = {
                "workers": workers,
                "wall_seconds": round(wall, 3),
                "computed_jobs": run.info["jobs_computed"],
                "cache_served_jobs": run.info["jobs_cache_served"],
                "lease_reclaims": run.info["lease_reclaims"],
                "digest": digest,
                "digest_match": digest == pooled_digest,
                "speedup_vs_1": round(rows[0]["wall_seconds"] / wall, 2) if rows else 1.0,
            }
            rows.append(row)
            print(
                f"distrib: {workers} worker(s) {wall:.2f}s "
                f"({row['computed_jobs']} computed, digest "
                f"{'ok' if row['digest_match'] else 'MISMATCH'})"
            )
            if not row["digest_match"]:
                failures.append(f"{workers}-worker digest {digest} != pooled {pooled_digest}")
            if row["computed_jobs"] != len(jobs):
                failures.append(
                    f"{workers}-worker row computed {row['computed_jobs']} jobs, "
                    f"expected every one of {len(jobs)} exactly once"
                )

        # Dedup-through-cache: warm a shared cache, rerun distributed —
        # nothing may be recomputed.
        cache_dir = Path(tmp) / "shared-cache"
        run_jobs(jobs, cache=cache_dir)
        start = time.monotonic()
        warm = run_distributed(
            jobs,
            config=DistribConfig(backend_url=str(Path(tmp) / "queue-warm.db"), workers=2),
            cache=cache_dir,
        )
        warm_wall = time.monotonic() - start
        warm_row = {
            "workers": 2,
            "wall_seconds": round(warm_wall, 3),
            "computed_jobs": warm.info["jobs_computed"],
            "local_cache_hits": warm.info["local_cache_hits"],
            "cache_served_jobs": warm.info["jobs_cache_served"],
            "digest_match": batch_digest(warm.results) == pooled_digest,
        }
        print(
            f"warm   : {warm_wall:.2f}s, {warm_row['computed_jobs']} computed, "
            f"{warm_row['local_cache_hits']} local + {warm_row['cache_served_jobs']} "
            "worker cache hits"
        )
        if warm_row["computed_jobs"] != 0:
            failures.append(
                f"warm rerun recomputed {warm_row['computed_jobs']} job(s) — "
                "dedup-through-cache failed"
            )
        if not warm_row["digest_match"]:
            failures.append("warm rerun digest diverged from the pooled reference")

    overhead_ratio = round(rows[0]["wall_seconds"] / pooled_wall, 3)
    speedup_at_4 = rows[-1]["speedup_vs_1"]
    hardware_limited = effective_parallelism < 2.0
    scaling_ok = speedup_at_4 >= args.min_speedup
    if overhead_ratio > args.overhead_bound:
        failures.append(
            f"coordinator overhead {overhead_ratio}x exceeds the {args.overhead_bound}x bound"
        )
    if not scaling_ok and not hardware_limited:
        failures.append(
            f"4-worker speedup {speedup_at_4}x below {args.min_speedup}x on hardware "
            f"with effective parallelism {effective_parallelism}"
        )

    report = {
        "schema_version": 1,
        "name": "distrib-scaling",
        "generated_unix": int(time.time()),
        "tests": len(tests),
        "models": list(models),
        "n_jobs": len(jobs),
        "min_speedup": args.min_speedup,
        "overhead_bound": args.overhead_bound,
        "effective_parallelism": effective_parallelism,
        "probe_walls": probe_walls,
        "hardware_limited": hardware_limited,
        "pooled": {"wall_seconds": round(pooled_wall, 3), "digest": pooled_digest},
        "rows": rows,
        "warm": warm_row,
        "coordinator_overhead_ratio": overhead_ratio,
        "speedup_at_4_workers": speedup_at_4,
        "claims": {
            "digests_identical": all(r["digest_match"] for r in rows) and warm_row["digest_match"],
            "exactly_once": all(r["computed_jobs"] == len(jobs) for r in rows),
            "dedup_through_cache": warm_row["computed_jobs"] == 0,
            "coordinator_overhead_within_bound": overhead_ratio <= args.overhead_bound,
            "scaling_demonstrated": scaling_ok,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"coordinator overhead {overhead_ratio}x, 4-worker speedup {speedup_at_4}x")
    print(f"report written to {args.output}")
    if failures:
        print(f"\n{len(failures)} claim failure(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
