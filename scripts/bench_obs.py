#!/usr/bin/env python
"""Measure observability overhead on the tracked sweep; write BENCH_obs.json.

Two legs, each a fresh subprocess running the same serial sweep workload
in-process (interpreter start-up excluded from the timed region):

* **instrumented** — the default: metrics registry, phase accumulators,
  spans, and structured logging all live;
* **baseline** — the same workload under ``REPRO_OBS_DISABLED=1``, which
  swaps every instrument for a shared no-op at import time.

Each leg repeats ``--repeats`` times; the *minimum* wall time per leg is
compared (minima are the standard low-noise estimator for a deterministic
CPU-bound workload).  The recorded claim — instrumented/baseline within
``--bound`` (default 1.05, i.e. ≤5% overhead) — is what
``scripts/check_bench_regression.py`` enforces against the committed
artifact.

Usage::

    PYTHONPATH=src python scripts/bench_obs.py [--tests 24] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Workload run by one leg, inside a fresh interpreter.  Prints one JSON
#: line with the in-process wall time of the sweep itself.
_CHILD = """\
import json, sys, time
from repro.harness import run_sweep
from repro.lang.kinds import Arch
from repro.litmus import generate_battery

n_tests, workers = int(sys.argv[1]), int(sys.argv[2])
models = tuple(sys.argv[3].split(","))
tests = generate_battery(max_tests=n_tests)
start = time.monotonic()
sweep = run_sweep(tests, models, Arch.ARM, workers=workers, name="bench-obs")
elapsed = time.monotonic() - start
print(json.dumps({"seconds": elapsed, "ok": sweep.ok, "n_jobs": len(sweep.jobs)}))
"""


def run_leg(args: argparse.Namespace, disabled: bool) -> tuple[float, int]:
    """One timed subprocess run; returns (seconds, n_jobs)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if disabled:
        env["REPRO_OBS_DISABLED"] = "1"
    else:
        env.pop("REPRO_OBS_DISABLED", None)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(args.tests), str(args.workers), args.models],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
    )
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    if not payload["ok"]:
        raise SystemExit(f"bench sweep reported failures (disabled={disabled})")
    return payload["seconds"], payload["n_jobs"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tests", type=int, default=64, help="generated battery size")
    parser.add_argument("--models", default="promising,axiomatic,flat,promising-naive")
    parser.add_argument("--workers", type=int, default=1,
                        help="sweep workers (1 = serial, the low-noise default)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per leg; the minimum is compared")
    parser.add_argument("--bound", type=float, default=1.05,
                        help="recorded overhead bound (instrumented/baseline)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_obs.json"))
    args = parser.parse_args(argv)

    legs: dict[str, list[float]] = {"baseline": [], "instrumented": []}
    n_jobs = 0
    for repeat in range(args.repeats):
        # Alternate legs within each repeat so drift (thermal, noisy
        # neighbours) hits both sides alike.
        for name, disabled in (("baseline", True), ("instrumented", False)):
            seconds, n_jobs = run_leg(args, disabled)
            legs[name].append(seconds)
            print(f"repeat {repeat + 1}/{args.repeats} {name:13s}: {seconds:.3f}s")

    baseline = min(legs["baseline"])
    instrumented = min(legs["instrumented"])
    ratio = instrumented / baseline if baseline else float("inf")
    report = {
        "schema_version": 1,
        "name": "obs-overhead",
        "generated_unix": int(time.time()),
        "tests": args.tests,
        "models": args.models.split(","),
        "workers": args.workers,
        "n_jobs": n_jobs,
        "repeats": args.repeats,
        "baseline_seconds": round(baseline, 4),
        "instrumented_seconds": round(instrumented, 4),
        "overhead_ratio": round(ratio, 4),
        "bound": args.bound,
        "runs": {name: [round(s, 4) for s in times] for name, times in legs.items()},
        "claims": {"overhead_within_bound": ratio <= args.bound},
    }
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"baseline {baseline:.3f}s  instrumented {instrumented:.3f}s  "
        f"overhead {100 * (ratio - 1):+.1f}% (bound {100 * (args.bound - 1):.0f}%)"
    )
    print(f"report written to {args.output}")
    return 0 if ratio <= args.bound else 1


if __name__ == "__main__":
    sys.exit(main())
