#!/usr/bin/env python
"""Benchmark the exploration service; writes ``BENCH_service.json``.

Three measurements, in one real served deployment (the service runs as a
separate ``promising-arm serve`` process, reached over HTTP exactly as a
client would):

* **cold CLI** — single-shot ``python -m repro.tools run`` subprocesses,
  paying interpreter start-up, imports, and cold caches per request;
  this is the baseline the service exists to beat;
* **warm service** — the same tests served from the process-resident
  LRU: per-request latency (p50/p95) and sequential throughput;
* **coalescing** — a burst of identical concurrent requests for a fresh
  fingerprint, proving (via the service's own counters) that one
  computation served the whole burst.

The warm lap also records the **keep-alive** economics of API v2: how
many TCP connections the whole run consumed (the server's own
accounting), the resulting requests-per-connection ratio, and the warm
p50 compared against a ``Connection: close`` control lap — the same
client, same tests, same run, but paying a fresh TCP handshake per
request (the pre-v2 policy).  Measuring both policies side by side on
the same machine keeps the comparison honest across hardware drift;
the p50 recorded by the original close-only benchmark is kept in the
artifact as historical context.

The acceptance bars — warm served latency at least 10x below cold CLI
latency, a non-zero coalesced counter, and a keep-alive p50 no worse
than the same-run Connection-close p50 — are what
``scripts/check_bench_regression.py`` re-validates against the
committed artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402

#: Catalogue tests measured cold and warm (small, fast, representative).
BENCH_TESTS = ("MP+dmb+addr", "SB+dmbs", "LB+datas")

#: Test reserved for the coalescing burst (kept out of the warm set).
COALESCE_TEST = "IRIW+pos"

SCHEMA_VERSION = 1

#: Warm served p50 recorded by this benchmark before keep-alive landed,
#: when every request paid a fresh ``Connection: close`` TCP handshake.
#: Historical context only: the binding comparison is the same-run
#: ``Connection: close`` control lap, which sees the same hardware.
PRIOR_CLOSE_P50_SECONDS = 0.0019540249995770864


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cold-runs", type=int, default=2, help="cold CLI runs per test")
    parser.add_argument("--warm-requests", type=int, default=200, help="warm served requests")
    parser.add_argument(
        "--warm-laps",
        type=int,
        default=2,
        help="warm laps to run; the lap with the best p50 is reported "
        "(steady-state capability, insulated from scheduler noise)",
    )
    parser.add_argument("--burst", type=int, default=8, help="concurrent identical requests")
    parser.add_argument("--workers", type=int, default=2, help="service worker processes")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_service.json"), help="report path"
    )
    return parser.parse_args(argv)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def measure_cold_cli(runs: int) -> dict:
    """Wall time of one-shot CLI explorations (full process start-up)."""
    per_test: dict[str, list[float]] = {}
    for test in BENCH_TESTS:
        for _ in range(runs):
            start = time.perf_counter()
            subprocess.run(
                [sys.executable, "-m", "repro.tools", "run", "--test", test],
                check=True,
                env=child_env(),
                stdout=subprocess.DEVNULL,
                cwd=REPO_ROOT,
            )
            per_test.setdefault(test, []).append(time.perf_counter() - start)
    samples = [s for times in per_test.values() for s in times]
    return {
        "runs": len(samples),
        "per_test_seconds": {t: sum(v) / len(v) for t, v in per_test.items()},
        "mean_seconds": sum(samples) / len(samples),
    }


def start_service(workers: int, cache_dir: str) -> tuple[subprocess.Popen, ServiceClient]:
    """Launch ``promising-arm serve`` on an ephemeral port; parse the port."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.tools",
            "serve",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--cache-dir",
            cache_dir,
            "--batch-delay-ms",
            "5",
        ],
        env=child_env(),
        stdout=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
    )
    line = process.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if not match:
        process.kill()
        raise RuntimeError(f"could not parse service address from {line!r}")
    client = ServiceClient(match.group(1), int(match.group(2)))
    client.wait_until_ready(60)
    return process, client


def measure_warm_service(client: ServiceClient, requests: int, laps: int = 1) -> dict:
    """Latency/throughput of LRU-served requests (after one warm-up lap).

    Runs ``laps`` full measurement laps and reports the one with the
    best p50: every request in every lap is a real served request, but
    the recorded number is the service's steady-state capability, not
    whichever lap the OS scheduler happened to preempt.
    """
    for test in BENCH_TESTS:
        client.explore(test=test, models=["promising"])
    best = None
    for _ in range(max(1, laps)):
        latencies = []
        start = time.perf_counter()
        for index in range(requests):
            test = BENCH_TESTS[index % len(BENCH_TESTS)]
            t0 = time.perf_counter()
            response = client.explore(test=test, models=["promising"])
            latencies.append(time.perf_counter() - t0)
            assert response["ok"], f"warm request failed: {response}"
        total = time.perf_counter() - start
        latencies.sort()
        lap = {
            "requests": requests,
            "mean_seconds": sum(latencies) / len(latencies),
            "p50_seconds": latencies[len(latencies) // 2],
            "p95_seconds": latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))],
            "throughput_rps": requests / total,
        }
        if best is None or lap["p50_seconds"] < best["p50_seconds"]:
            best = lap
    best["laps"] = max(1, laps)
    return best


def measure_coalescing(client: ServiceClient, burst: int) -> dict:
    """Fire identical concurrent requests; read the coalesced counter."""
    before = client.stats()["served"]
    barrier = threading.Barrier(burst)
    failures = []

    def fire():
        barrier.wait()
        try:
            response = client.explore(test=COALESCE_TEST, models=["promising"])
            assert response["ok"]
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=fire) for _ in range(burst)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise RuntimeError(f"coalescing burst failed: {failures[0]}")
    after = client.stats()["served"]
    return {
        "concurrent_requests": burst,
        "coalesced": after["coalesced"] - before["coalesced"],
        "computed": after["computed"] - before["computed"],
        "lru": after["lru"] - before["lru"],
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    print(f"== cold CLI baseline ({args.cold_runs} runs x {len(BENCH_TESTS)} tests) ==")
    cold = measure_cold_cli(args.cold_runs)
    print(f"cold mean: {cold['mean_seconds'] * 1000:.0f} ms/request")

    with tempfile.TemporaryDirectory(prefix="promising-service-bench-") as cache_dir:
        print(f"== warm service ({args.warm_requests} served requests) ==")
        process, client = start_service(args.workers, cache_dir)
        try:
            warm = measure_warm_service(client, args.warm_requests, args.warm_laps)
            print(
                f"warm p50: {warm['p50_seconds'] * 1000:.2f} ms  "
                f"p95: {warm['p95_seconds'] * 1000:.2f} ms  "
                f"throughput: {warm['throughput_rps']:.0f} req/s"
            )
            # Connection accounting snapshot *before* the close control
            # lap, whose per-request handshakes would drown the ratio.
            http_stats = client.stats()["http"]
            print(
                f"== Connection: close control lap ({args.warm_requests} requests) =="
            )
            close_client = ServiceClient(client.host, client.port, keep_alive=False)
            close_warm = measure_warm_service(
                close_client, args.warm_requests, args.warm_laps
            )
            print(
                f"close p50: {close_warm['p50_seconds'] * 1000:.2f} ms  "
                f"p95: {close_warm['p95_seconds'] * 1000:.2f} ms"
            )
            print(f"== coalescing burst ({args.burst} concurrent identical requests) ==")
            coalescing = measure_coalescing(client, args.burst)
            print(
                f"computed: {coalescing['computed']}  coalesced: {coalescing['coalesced']}"
            )
            stats = client.stats()
            keep_alive = {
                "connections": http_stats["connections"],
                "requests": http_stats["requests"],
                "requests_per_connection": http_stats["requests"]
                / max(1, http_stats["connections"]),
                "close_p50_seconds": close_warm["p50_seconds"],
                "close_p95_seconds": close_warm["p95_seconds"],
                "prior_close_p50_seconds": PRIOR_CLOSE_P50_SECONDS,
                "p50_no_worse_than_close": warm["p50_seconds"]
                <= close_warm["p50_seconds"],
            }
            print(
                f"keep-alive: {keep_alive['requests']} requests over "
                f"{keep_alive['connections']} connection(s) "
                f"({keep_alive['requests_per_connection']:.0f} req/conn); "
                f"p50 {warm['p50_seconds'] * 1000:.2f} ms vs "
                f"{close_warm['p50_seconds'] * 1000:.2f} ms Connection-close same-run "
                f"({PRIOR_CLOSE_P50_SECONDS * 1000:.2f} ms recorded pre-keep-alive)"
            )
        finally:
            client.shutdown()
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()

    speedup = cold["mean_seconds"] / warm["p50_seconds"]
    report = {
        "schema_version": SCHEMA_VERSION,
        "name": "service-bench",
        "generated_unix": time.time(),
        "tests": list(BENCH_TESTS),
        "coalesce_test": COALESCE_TEST,
        "workers": args.workers,
        "cold_cli": cold,
        "warm_service": warm,
        "speedup_cold_vs_warm_p50": speedup,
        "coalescing": coalescing,
        "keep_alive": keep_alive,
        "service_stats": stats,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"cold {cold['mean_seconds'] * 1000:.0f} ms -> warm "
        f"{warm['p50_seconds'] * 1000:.2f} ms = {speedup:.0f}x; "
        f"report written to {output}"
    )
    if speedup < 10:
        print("WARNING: warm speedup below the 10x acceptance bar")
        return 1
    if coalescing["coalesced"] < 1:
        print("WARNING: coalescing burst did not coalesce any request")
        return 1
    if not keep_alive["p50_no_worse_than_close"]:
        print(
            "WARNING: keep-alive warm p50 regressed past the same-run "
            "Connection-close control lap"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
