#!/usr/bin/env python
"""Guard the tracked sweep artifact against silent regressions.

Re-runs the battery recorded in a baseline report (``BENCH_sweep.json``
by default), then compares the fresh results job-by-job:

* **Semantics** — every job's projected outcome-set digest must equal the
  baseline's (schema v2 reports carry ``outcome_digest`` per job; older
  baselines fall back to the outcome *count*).  Any difference means a
  model change altered an outcome set without the artifact being
  regenerated on purpose — the exact failure mode the PR 3 dedup layer
  must never introduce.

* **Performance** — per litmus family (the test-name prefix before the
  first ``+``), the summed fresh compute time must not exceed
  ``--slowdown`` (default 2.0) times the baseline's, ignoring families
  under the noise floor.

* **Service artifact** — the committed ``BENCH_service.json`` must parse
  against the service-bench schema, record a warm-vs-cold speedup of at
  least ``--min-service-speedup`` (default 10), and a coalescing burst
  that actually coalesced.  This validates the committed artifact's
  shape and recorded claims; regenerating the numbers is
  ``scripts/bench_service.py``'s job.

* **Sampling artifact** — the committed ``BENCH_sample.json`` must parse
  against the sample-scaling schema and record the PR 5 capability
  claim: on the blown-up workload, every exhaustive row truncated while
  every ``sample`` row completed with a non-empty outcome set, zero
  safety-condition violations, and less wall-clock than its truncated
  exhaustive counterpart.  Regeneration is
  ``benchmarks/test_sample_scaling.py``'s job (via ``bench.sh``).

* **Observability artifact** — the committed ``BENCH_obs.json`` must
  parse against the obs-overhead schema and record an
  instrumented-vs-disabled overhead ratio within
  ``--max-obs-overhead`` (default 1.05, i.e. ≤5%) with its own claim
  flag set.  Regeneration is ``scripts/bench_obs.py``'s job (via
  ``bench.sh``).

* **Backend artifact** — the committed ``BENCH_backend.json`` must parse
  against the backend-sweep schema and record the PR 7/PR 10 claims: a
  packed-vs-object aggregate speedup of at least
  ``--min-backend-speedup`` (default 10) over the gated naive rows,
  *every* gated row (naive, promise-first and Flat alike) at or above
  its own recorded ``min_speedup`` floor — so a single-family regression
  cannot hide under the aggregate — and bit-identical outcome digests
  between the two backends on every row (gated and context alike — the
  backend may never change semantics).  Regeneration is
  ``scripts/bench_backend.py``'s job (via ``bench.sh``).

* **Distributed artifact** — the committed ``BENCH_distrib.json`` must
  parse against the distrib-scaling schema and record the PR 8 claims:
  every scaling row's batch digest bit-identical to the pooled
  reference, every job computed exactly once per row, the warm rerun
  served entirely through the shared cache (nothing recomputed), and
  coordinator overhead within the recorded bound.  The ≥``--min-distrib-
  speedup`` 4-worker scaling claim is enforced only when the recording
  machine's measured ``effective_parallelism`` reached 2 — a single-core
  runner records ``hardware_limited`` instead, because no queue can
  outrun the silicon.  Regeneration is ``scripts/bench_distrib.py``'s
  job (via ``bench.sh``).

Exit status: 0 clean, 1 regression found, 2 usage/baseline problems.

Run it locally after touching an explorer::

    PYTHONPATH=src python scripts/check_bench_regression.py

CI runs it as an advisory job (shared runners make wall-clock noisy); the
semantic check is the part that should never fire.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness import run_sweep  # noqa: E402
from repro.harness.report import job_entry  # noqa: E402
from repro.lang.kinds import Arch  # noqa: E402
from repro.litmus import generate_battery  # noqa: E402


def parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="tracked sweep report to compare against",
    )
    parser.add_argument(
        "--slowdown",
        type=float,
        default=2.0,
        help="per-family slowdown factor that counts as a regression",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=0.05,
        help="ignore families whose baseline compute time is below this (s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the fresh sweep (1 = deterministic serial)",
    )
    parser.add_argument(
        "--perf-advisory",
        action="store_true",
        help=(
            "report per-family slowdowns without failing on them "
            "(outcome-digest drift still exits 1); for noisy CI runners"
        ),
    )
    parser.add_argument(
        "--report",
        default=None,
        help="optionally write the fresh sweep report to this path",
    )
    parser.add_argument(
        "--service-baseline",
        default=str(REPO_ROOT / "BENCH_service.json"),
        help="tracked service-bench report to schema-validate",
    )
    parser.add_argument(
        "--min-service-speedup",
        type=float,
        default=10.0,
        help="lowest acceptable recorded warm-vs-cold service speedup",
    )
    parser.add_argument(
        "--skip-service",
        action="store_true",
        help="skip BENCH_service.json validation entirely",
    )
    parser.add_argument(
        "--sample-baseline",
        default=str(REPO_ROOT / "BENCH_sample.json"),
        help="tracked sample-scaling report to schema-validate",
    )
    parser.add_argument(
        "--skip-sample",
        action="store_true",
        help="skip BENCH_sample.json validation entirely",
    )
    parser.add_argument(
        "--obs-baseline",
        default=str(REPO_ROOT / "BENCH_obs.json"),
        help="tracked observability-overhead report to schema-validate",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=1.05,
        help="highest acceptable recorded instrumented/baseline ratio",
    )
    parser.add_argument(
        "--skip-obs",
        action="store_true",
        help="skip BENCH_obs.json validation entirely",
    )
    parser.add_argument(
        "--backend-baseline",
        default=str(REPO_ROOT / "BENCH_backend.json"),
        help="tracked backend-sweep report to schema-validate",
    )
    parser.add_argument(
        "--min-backend-speedup",
        type=float,
        default=10.0,
        help="lowest acceptable recorded packed-vs-object aggregate speedup",
    )
    parser.add_argument(
        "--skip-backend",
        action="store_true",
        help="skip BENCH_backend.json validation entirely",
    )
    parser.add_argument(
        "--distrib-baseline",
        default=str(REPO_ROOT / "BENCH_distrib.json"),
        help="tracked distributed-scaling report to schema-validate",
    )
    parser.add_argument(
        "--min-distrib-speedup",
        type=float,
        default=1.7,
        help="lowest acceptable recorded 4-worker distributed speedup "
        "(enforced only when the artifact was recorded on multi-core hardware)",
    )
    parser.add_argument(
        "--skip-distrib",
        action="store_true",
        help="skip BENCH_distrib.json validation entirely",
    )
    return parser.parse_args(argv)


#: ``BENCH_service.json`` required layout: top-level key -> required
#: sub-keys (None = scalar leaf).  Kept in lockstep with
#: ``scripts/bench_service.py``.
SERVICE_SCHEMA = {
    "schema_version": None,
    "name": None,
    "generated_unix": None,
    "tests": None,
    "workers": None,
    "cold_cli": ("runs", "per_test_seconds", "mean_seconds"),
    "warm_service": (
        "requests",
        "mean_seconds",
        "p50_seconds",
        "p95_seconds",
        "throughput_rps",
    ),
    "speedup_cold_vs_warm_p50": None,
    "coalescing": ("concurrent_requests", "coalesced", "computed"),
    "keep_alive": (
        "connections",
        "requests",
        "requests_per_connection",
        "close_p50_seconds",
        "prior_close_p50_seconds",
        "p50_no_worse_than_close",
    ),
    "service_stats": None,
}


def validate_service_report(path: Path, min_speedup: float) -> list[str]:
    """Schema + recorded-claims validation of ``BENCH_service.json``."""
    failures: list[str] = []
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"service baseline {path} unreadable: {exc}"]
    if not isinstance(report, dict):
        return [f"service baseline {path} is not a JSON object"]
    for key, subkeys in SERVICE_SCHEMA.items():
        if key not in report:
            failures.append(f"service baseline missing key {key!r}")
            continue
        if subkeys is None:
            continue
        block = report[key]
        if not isinstance(block, dict):
            failures.append(f"service baseline {key!r} must be an object")
            continue
        for subkey in subkeys:
            if subkey not in block:
                failures.append(f"service baseline missing {key}.{subkey}")
    if failures:
        return failures
    speedup = report["speedup_cold_vs_warm_p50"]
    if not isinstance(speedup, (int, float)) or speedup < min_speedup:
        failures.append(
            f"service warm speedup {speedup!r} below the {min_speedup:.0f}x bar"
        )
    coalesced = report["coalescing"]["coalesced"]
    if not isinstance(coalesced, int) or coalesced < 1:
        failures.append(
            f"service coalescing burst recorded no coalesced requests ({coalesced!r})"
        )
    for field in ("p50_seconds", "p95_seconds", "throughput_rps"):
        value = report["warm_service"][field]
        if not isinstance(value, (int, float)) or value <= 0:
            failures.append(f"service warm_service.{field} must be a positive number")
    keep_alive = report["keep_alive"]
    connections = keep_alive["connections"]
    requests = keep_alive["requests"]
    if not isinstance(connections, int) or connections < 1:
        failures.append(f"service keep_alive.connections must be >= 1 ({connections!r})")
    elif not isinstance(requests, int) or requests <= connections:
        # The whole point of keep-alive: strictly more requests than
        # connections, i.e. connections actually got reused.
        failures.append(
            f"service keep-alive never reused a connection "
            f"({requests!r} requests over {connections!r} connections)"
        )
    close_p50 = keep_alive["close_p50_seconds"]
    if not isinstance(close_p50, (int, float)) or close_p50 <= 0:
        failures.append(
            f"service keep_alive.close_p50_seconds must be a positive number "
            f"({close_p50!r})"
        )
    # Re-derive the claim from the recorded laps instead of trusting the
    # flag: keep-alive must not be slower than the same-run
    # ``Connection: close`` control lap.
    elif (
        keep_alive["p50_no_worse_than_close"] is not True
        or report["warm_service"]["p50_seconds"] > close_p50
    ):
        failures.append(
            "service keep-alive warm p50 regressed past the same-run "
            "Connection-close control lap "
            f"({report['warm_service']['p50_seconds']!r}s vs {close_p50!r}s)"
        )
    return failures


#: ``BENCH_sample.json`` required layout, in lockstep with
#: ``benchmarks/test_sample_scaling.py``.
SAMPLE_SCHEMA = {
    "schema_version": None,
    "name": None,
    "generated_unix": None,
    "workload": ("name", "n_threads"),
    "sample_depth": None,
    "seed": None,
    "exhaustive": None,
    "sample_runs": None,
    "claims": ("sample_completes_where_exhaustive_truncates",),
}

SAMPLE_EXHAUSTIVE_ROW_KEYS = ("model", "max_states", "truncated", "n_outcomes", "elapsed_seconds")
SAMPLE_RUN_ROW_KEYS = (
    "model",
    "samples",
    "seed",
    "samples_run",
    "n_outcomes",
    "coverage_estimate",
    "condition_violations",
    "elapsed_seconds",
)


def validate_sample_report(path: Path) -> list[str]:
    """Schema + recorded-claims validation of ``BENCH_sample.json``."""
    failures: list[str] = []
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"sample baseline {path} unreadable: {exc}"]
    if not isinstance(report, dict):
        return [f"sample baseline {path} is not a JSON object"]
    for key, subkeys in SAMPLE_SCHEMA.items():
        if key not in report:
            failures.append(f"sample baseline missing key {key!r}")
            continue
        if subkeys is None:
            continue
        block = report[key]
        if not isinstance(block, dict):
            failures.append(f"sample baseline {key!r} must be an object")
            continue
        for subkey in subkeys:
            if subkey not in block:
                failures.append(f"sample baseline missing {key}.{subkey}")
    if failures:
        return failures
    exhaustive_rows = report["exhaustive"]
    sample_rows = report["sample_runs"]
    if not exhaustive_rows or not sample_rows:
        return ["sample baseline must record exhaustive and sample rows"]
    for row in exhaustive_rows:
        missing = [k for k in SAMPLE_EXHAUSTIVE_ROW_KEYS if k not in row]
        if missing:
            failures.append(f"sample baseline exhaustive row missing {missing}")
            continue
        if not row["truncated"]:
            failures.append(
                f"exhaustive {row['model']} did not truncate — the artifact no "
                "longer demonstrates a state space that needs sampling"
            )
    exhaustive_by_model = {r["model"]: r for r in exhaustive_rows if "model" in r}
    for row in sample_rows:
        missing = [k for k in SAMPLE_RUN_ROW_KEYS if k not in row]
        if missing:
            failures.append(f"sample baseline sample row missing {missing}")
            continue
        label = f"sample {row['model']} n={row['samples']}"
        if row["n_outcomes"] < 1:
            failures.append(f"{label} recorded an empty outcome set")
        if row["condition_violations"] != 0:
            failures.append(
                f"{label} recorded {row['condition_violations']} safety-condition "
                "violation(s) — a real model bug, not a bench artifact problem"
            )
        exhaustive = exhaustive_by_model.get(row["model"])
        if exhaustive and row["elapsed_seconds"] >= exhaustive["elapsed_seconds"]:
            failures.append(f"{label} was not faster than its truncated exhaustive run")
    claims = report["claims"]["sample_completes_where_exhaustive_truncates"]
    if not (isinstance(claims, dict) and claims and all(claims.values())):
        failures.append(f"sample baseline claim block must be all-true, got {claims!r}")
    return failures


#: ``BENCH_obs.json`` required layout, in lockstep with
#: ``scripts/bench_obs.py``.
OBS_SCHEMA = {
    "schema_version": None,
    "name": None,
    "generated_unix": None,
    "tests": None,
    "models": None,
    "repeats": None,
    "baseline_seconds": None,
    "instrumented_seconds": None,
    "overhead_ratio": None,
    "bound": None,
    "runs": ("baseline", "instrumented"),
    "claims": ("overhead_within_bound",),
}


def validate_obs_report(path: Path, max_overhead: float) -> list[str]:
    """Schema + recorded-claims validation of ``BENCH_obs.json``."""
    failures: list[str] = []
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"obs baseline {path} unreadable: {exc}"]
    if not isinstance(report, dict):
        return [f"obs baseline {path} is not a JSON object"]
    for key, subkeys in OBS_SCHEMA.items():
        if key not in report:
            failures.append(f"obs baseline missing key {key!r}")
            continue
        if subkeys is None:
            continue
        block = report[key]
        if not isinstance(block, dict):
            failures.append(f"obs baseline {key!r} must be an object")
            continue
        for subkey in subkeys:
            if subkey not in block:
                failures.append(f"obs baseline missing {key}.{subkey}")
    if failures:
        return failures
    ratio = report["overhead_ratio"]
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        failures.append(f"obs overhead_ratio must be a positive number, got {ratio!r}")
    elif ratio > max_overhead:
        failures.append(
            f"observability overhead {100 * (ratio - 1):.1f}% exceeds the "
            f"{100 * (max_overhead - 1):.0f}% bound — instrumentation got too "
            "expensive (or the artifact needs regenerating on a quiet machine)"
        )
    if report["claims"]["overhead_within_bound"] is not True:
        failures.append("obs baseline claim overhead_within_bound must be true")
    for field in ("baseline_seconds", "instrumented_seconds"):
        value = report[field]
        if not isinstance(value, (int, float)) or value <= 0:
            failures.append(f"obs {field} must be a positive number")
    for leg in ("baseline", "instrumented"):
        times = report["runs"][leg]
        if not isinstance(times, list) or len(times) != report["repeats"]:
            failures.append(f"obs runs.{leg} must record one time per repeat")
    return failures


#: ``BENCH_backend.json`` required layout, in lockstep with
#: ``scripts/bench_backend.py``.
BACKEND_SCHEMA = {
    "schema_version": None,
    "name": None,
    "generated_unix": None,
    "repeats": None,
    "min_speedup": None,
    "families": None,
    "aggregate": ("object_seconds", "packed_seconds", "speedup"),
    "claims": ("digests_identical", "speedup_at_least_min", "per_row_floors_met"),
}

BACKEND_ROW_KEYS = (
    "name",
    "model",
    "gated",
    "min_speedup",
    "memo_hits",
    "memo_misses",
    "object_seconds",
    "packed_seconds",
    "speedup",
    "digest_object",
    "digest_packed",
    "digest_match",
)


def validate_backend_report(path: Path, min_speedup: float) -> list[str]:
    """Schema + recorded-claims validation of ``BENCH_backend.json``."""
    failures: list[str] = []
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"backend baseline {path} unreadable: {exc}"]
    if not isinstance(report, dict):
        return [f"backend baseline {path} is not a JSON object"]
    for key, subkeys in BACKEND_SCHEMA.items():
        if key not in report:
            failures.append(f"backend baseline missing key {key!r}")
            continue
        if subkeys is None:
            continue
        block = report[key]
        if not isinstance(block, dict):
            failures.append(f"backend baseline {key!r} must be an object")
            continue
        for subkey in subkeys:
            if subkey not in block:
                failures.append(f"backend baseline missing {key}.{subkey}")
    if failures:
        return failures
    rows = report["families"]
    if not isinstance(rows, list) or not rows:
        return ["backend baseline must record at least one family row"]
    gated = 0
    for row in rows:
        missing = [k for k in BACKEND_ROW_KEYS if k not in row]
        if missing:
            failures.append(f"backend baseline row missing {missing}")
            continue
        label = f"backend {row['name']} ({row['model']})"
        # Semantics are non-negotiable on every row, context included.
        if row["digest_object"] != row["digest_packed"] or not row["digest_match"]:
            failures.append(
                f"{label}: packed and object outcome digests differ — the "
                "packed backend changed an outcome set"
            )
        if row["gated"]:
            gated += 1
            if not isinstance(row["speedup"], (int, float)) or row["speedup"] <= 0:
                failures.append(f"{label}: speedup must be a positive number")
                continue
            floor = row["min_speedup"]
            if not isinstance(floor, (int, float)) or floor <= 0:
                failures.append(f"{label}: gated row needs a positive min_speedup floor")
            elif row["speedup"] < floor:
                failures.append(
                    f"{label}: speedup {row['speedup']}x below its {floor}x "
                    "per-row floor"
                )
    if gated == 0:
        failures.append("backend baseline has no gated rows to aggregate")
    speedup = report["aggregate"]["speedup"]
    if not isinstance(speedup, (int, float)) or speedup < min_speedup:
        failures.append(f"backend aggregate speedup {speedup!r} below the {min_speedup:.0f}x bar")
    for claim in ("digests_identical", "speedup_at_least_min", "per_row_floors_met"):
        if report["claims"][claim] is not True:
            failures.append(f"backend baseline claim {claim} must be true")
    return failures


#: ``BENCH_distrib.json`` required layout, in lockstep with
#: ``scripts/bench_distrib.py``.
DISTRIB_SCHEMA = {
    "schema_version": None,
    "name": None,
    "generated_unix": None,
    "tests": None,
    "models": None,
    "n_jobs": None,
    "min_speedup": None,
    "overhead_bound": None,
    "effective_parallelism": None,
    "hardware_limited": None,
    "pooled": ("wall_seconds", "digest"),
    "rows": None,
    "warm": ("workers", "wall_seconds", "computed_jobs", "digest_match"),
    "coordinator_overhead_ratio": None,
    "speedup_at_4_workers": None,
    "claims": (
        "digests_identical",
        "exactly_once",
        "dedup_through_cache",
        "coordinator_overhead_within_bound",
        "scaling_demonstrated",
    ),
}

DISTRIB_ROW_KEYS = (
    "workers",
    "wall_seconds",
    "computed_jobs",
    "lease_reclaims",
    "digest",
    "digest_match",
    "speedup_vs_1",
)


def validate_distrib_report(path: Path, min_speedup: float) -> list[str]:
    """Schema + recorded-claims validation of ``BENCH_distrib.json``."""
    failures: list[str] = []
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"distrib baseline {path} unreadable: {exc}"]
    if not isinstance(report, dict):
        return [f"distrib baseline {path} is not a JSON object"]
    for key, subkeys in DISTRIB_SCHEMA.items():
        if key not in report:
            failures.append(f"distrib baseline missing key {key!r}")
            continue
        if subkeys is None:
            continue
        block = report[key]
        if not isinstance(block, dict):
            failures.append(f"distrib baseline {key!r} must be an object")
            continue
        for subkey in subkeys:
            if subkey not in block:
                failures.append(f"distrib baseline missing {key}.{subkey}")
    if failures:
        return failures
    rows = report["rows"]
    if not isinstance(rows, list) or not rows:
        return ["distrib baseline must record at least one scaling row"]
    pooled_digest = report["pooled"]["digest"]
    n_jobs = report["n_jobs"]
    for row in rows:
        missing = [k for k in DISTRIB_ROW_KEYS if k not in row]
        if missing:
            failures.append(f"distrib baseline row missing {missing}")
            continue
        label = f"distrib {row['workers']}-worker row"
        # Semantics are non-negotiable on every row: same digests as the
        # pooled reference, every job computed exactly once.
        if row["digest"] != pooled_digest or not row["digest_match"]:
            failures.append(
                f"{label}: batch digest {row['digest']} != pooled {pooled_digest} — "
                "the distributed path changed an outcome set"
            )
        if row["computed_jobs"] != n_jobs:
            failures.append(
                f"{label}: computed {row['computed_jobs']} of {n_jobs} jobs — "
                "a job was lost or computed twice"
            )
    warm = report["warm"]
    if warm["computed_jobs"] != 0:
        failures.append(
            f"distrib warm rerun recomputed {warm['computed_jobs']} job(s) — "
            "dedup-through-cache broke"
        )
    if not warm["digest_match"]:
        failures.append("distrib warm rerun digest diverged from the pooled reference")
    overhead = report["coordinator_overhead_ratio"]
    bound = report["overhead_bound"]
    if not isinstance(overhead, (int, float)) or overhead <= 0:
        failures.append(f"distrib coordinator_overhead_ratio must be positive, got {overhead!r}")
    elif overhead > bound:
        failures.append(
            f"distrib coordinator overhead {overhead}x exceeds the recorded {bound}x bound"
        )
    hardware_limited = report["hardware_limited"]
    speedup = report["speedup_at_4_workers"]
    if hardware_limited:
        # Recorded on a machine without real parallelism (effective
        # parallelism < 2): the scaling claim is unprovable there and the
        # artifact must say so rather than fake a number.
        if report["effective_parallelism"] >= 2.0:
            failures.append(
                "distrib baseline claims hardware_limited but measured effective "
                f"parallelism {report['effective_parallelism']}"
            )
    else:
        if not isinstance(speedup, (int, float)) or speedup < min_speedup:
            failures.append(
                f"distrib 4-worker speedup {speedup!r} below the {min_speedup}x bar "
                "on hardware that can parallelise"
            )
        if report["claims"]["scaling_demonstrated"] is not True:
            failures.append(
                "distrib baseline claim scaling_demonstrated must be true on "
                "multi-core hardware"
            )
    for claim in (
        "digests_identical",
        "exactly_once",
        "dedup_through_cache",
        "coordinator_overhead_within_bound",
    ):
        if report["claims"][claim] is not True:
            failures.append(f"distrib baseline claim {claim} must be true")
    return failures


def family(name: str) -> str:
    return name.split("+")[0]


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"baseline report not found: {baseline_path}")
        return 2
    baseline = json.loads(baseline_path.read_text())
    base_jobs = {
        (j["name"], j["model"], j["arch"]): j
        for j in baseline.get("jobs", [])
        if j.get("status") == "ok"
    }
    if not base_jobs:
        print(f"baseline report {baseline_path} has no ok jobs to compare")
        return 2

    extra = baseline.get("extra", {})
    n_tests = extra.get("n_tests") or len({k[0] for k in base_jobs})
    models = baseline.get("models") or ["promising", "axiomatic"]
    arch_name = (extra.get("arch") or "ARM").upper()
    arch = Arch.RISCV if arch_name.startswith("RISC") else Arch.ARM

    print(f"baseline : {baseline_path} ({len(base_jobs)} ok jobs)")
    print(f"fresh    : {n_tests} tests x {'+'.join(models)} on {arch.value}")
    tests = generate_battery(max_tests=n_tests)
    sweep = run_sweep(
        tests,
        tuple(models),
        arch,
        workers=args.workers,
        report_path=args.report,
        name="bench-regression-check",
    )
    fresh = {
        (e["name"], e["model"], e["arch"]): e
        for e in (job_entry(r) for r in sweep.results)
        if e["status"] == "ok"
    }

    failures: list[str] = []

    # -- service artifact --------------------------------------------------
    if not args.skip_service:
        service_path = Path(args.service_baseline)
        if service_path.exists():
            service_failures = validate_service_report(
                service_path, args.min_service_speedup
            )
            failures.extend(service_failures)
            print(
                f"service  : {service_path} "
                f"({'OK' if not service_failures else f'{len(service_failures)} problem(s)'})"
            )
        else:
            # The artifact is committed; its absence is itself a
            # regression (--skip-service is the explicit opt-out).
            failures.append(f"service baseline not found: {service_path}")
            print(f"service  : {service_path} MISSING")

    # -- sampling artifact -------------------------------------------------
    if not args.skip_sample:
        sample_path = Path(args.sample_baseline)
        if sample_path.exists():
            sample_failures = validate_sample_report(sample_path)
            failures.extend(sample_failures)
            print(
                f"sample   : {sample_path} "
                f"({'OK' if not sample_failures else f'{len(sample_failures)} problem(s)'})"
            )
        else:
            failures.append(f"sample baseline not found: {sample_path}")
            print(f"sample   : {sample_path} MISSING")

    # -- observability artifact --------------------------------------------
    if not args.skip_obs:
        obs_path = Path(args.obs_baseline)
        if obs_path.exists():
            obs_failures = validate_obs_report(obs_path, args.max_obs_overhead)
            failures.extend(obs_failures)
            print(
                f"obs      : {obs_path} "
                f"({'OK' if not obs_failures else f'{len(obs_failures)} problem(s)'})"
            )
        else:
            failures.append(f"obs baseline not found: {obs_path}")
            print(f"obs      : {obs_path} MISSING")

    # -- backend artifact ---------------------------------------------------
    if not args.skip_backend:
        backend_path = Path(args.backend_baseline)
        if backend_path.exists():
            backend_failures = validate_backend_report(backend_path, args.min_backend_speedup)
            failures.extend(backend_failures)
            print(
                f"backend  : {backend_path} "
                f"({'OK' if not backend_failures else f'{len(backend_failures)} problem(s)'})"
            )
        else:
            failures.append(f"backend baseline not found: {backend_path}")
            print(f"backend  : {backend_path} MISSING")

    # -- distributed artifact -----------------------------------------------
    if not args.skip_distrib:
        distrib_path = Path(args.distrib_baseline)
        if distrib_path.exists():
            distrib_failures = validate_distrib_report(distrib_path, args.min_distrib_speedup)
            failures.extend(distrib_failures)
            print(
                f"distrib  : {distrib_path} "
                f"({'OK' if not distrib_failures else f'{len(distrib_failures)} problem(s)'})"
            )
        else:
            failures.append(f"distrib baseline not found: {distrib_path}")
            print(f"distrib  : {distrib_path} MISSING")

    # -- semantic comparison ----------------------------------------------
    compared = 0
    for key, base_entry in sorted(base_jobs.items()):
        fresh_entry = fresh.get(key)
        if fresh_entry is None:
            failures.append(f"missing from fresh sweep: {key}")
            continue
        compared += 1
        base_digest = base_entry.get("outcome_digest")
        if base_digest is not None:
            if fresh_entry["outcome_digest"] != base_digest:
                failures.append(
                    f"outcome-set digest changed: {key} "
                    f"{base_digest} -> {fresh_entry['outcome_digest']}"
                )
        elif fresh_entry["n_outcomes"] != base_entry.get("n_outcomes"):
            failures.append(
                f"outcome count changed: {key} "
                f"{base_entry.get('n_outcomes')} -> {fresh_entry['n_outcomes']}"
            )
    differences = sum("digest" in f or "count" in f for f in failures)
    print(f"semantic : {compared} jobs compared, {differences} differences")

    # -- per-family timing ------------------------------------------------
    base_time: dict[str, float] = {}
    fresh_time: dict[str, float] = {}
    for (name, _model, _arch), entry in base_jobs.items():
        base_time[family(name)] = base_time.get(family(name), 0.0) + entry["elapsed_seconds"]
    for (name, _model, _arch), entry in fresh.items():
        fresh_time[family(name)] = fresh_time.get(family(name), 0.0) + entry["elapsed_seconds"]
    print(f"{'family':12s} {'baseline':>9s} {'fresh':>9s} {'ratio':>7s}")
    for fam in sorted(base_time):
        base_s = base_time[fam]
        fresh_s = fresh_time.get(fam, 0.0)
        ratio = fresh_s / base_s if base_s else float("inf")
        marker = ""
        if base_s >= args.noise_floor and fresh_s > args.slowdown * base_s:
            slowdown = f"family {fam} slowed {ratio:.2f}x ({base_s:.3f}s -> {fresh_s:.3f}s)"
            if args.perf_advisory:
                marker = f"  SLOWDOWN (> {args.slowdown:.1f}x, advisory)"
            else:
                marker = f"  REGRESSION (> {args.slowdown:.1f}x)"
                failures.append(slowdown)
        print(f"{fam:12s} {base_s:8.3f}s {fresh_s:8.3f}s {ratio:6.2f}x{marker}")

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno regressions against the tracked baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
