#!/usr/bin/env python
"""CI distributed smoke: a real worker fleet, a real crash, identical digests.

What it does, end to end:

1. Starts three ``promising-arm work`` subprocesses against a SQLite
   queue in a temporary directory, sharing one result-cache directory —
   exactly the deployment shape from the README fleet quickstart.
2. Runs the bounded differential fuzz battery through the coordinator in
   ``--external-workers`` mode (the coordinator spawns nothing; the
   fleet drains the queue).
3. Mid-run, SIGSTOPs one worker, confirms it is holding a lease, then
   SIGKILLs it — a real crash with a job in flight.  The coordinator
   must reclaim the expired lease and another worker must finish the
   job, exactly once.
4. Runs the same corpus through the ordinary in-process pool and diffs
   every job's outcome digest between the two reports.  The diff must be
   empty: distribution may never change semantics.
5. Repeats the fleet run against a network-reachable queue: an HTTP
   server mounts the work ledger at ``/v1/queue/<op>`` and two workers
   join with ``--backend-url http://host:port`` and **no shared
   filesystem at all** (no queue file, no cache directory).  The report
   must again be digest-identical to the pooled run.

Exit status: 0 on success, 1 on any assertion failure.
"""

from __future__ import annotations

import json
import signal
import sqlite3
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distrib import DistribConfig  # noqa: E402
from repro.harness import run_fuzz  # noqa: E402
from repro.litmus import generate_cycle_battery  # noqa: E402

N_WORKERS = 3
MAX_PER_FAMILY = 4
LEASE_SECONDS = 2.0
VICTIM = "w0"


def spawn_worker(
    backend_url: str, worker_id: str, cache: Path | None = None
) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro.tools",
        "work",
        "--backend-url",
        backend_url,
        "--worker-id",
        worker_id,
        "--lease-seconds",
        str(LEASE_SECONDS),
        "--poll-seconds",
        "0.05",
    ]
    if cache is not None:
        command += ["--cache-dir", str(cache)]
    return subprocess.Popen(
        command,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


def holds_lease(queue: Path, worker_id: str) -> bool:
    try:
        conn = sqlite3.connect(queue, timeout=5.0)
        try:
            row = conn.execute(
                "SELECT COUNT(*) FROM items WHERE status = 'leased' AND worker = ?",
                (worker_id,),
            ).fetchone()
            return bool(row[0])
        finally:
            conn.close()
    except sqlite3.OperationalError:
        return False


def kill_victim_mid_lease(queue: Path, victim: subprocess.Popen, deadline: float) -> bool:
    """SIGSTOP-check-SIGKILL: freeze the victim, verify it holds a lease
    (a stopped process cannot complete one under our feet), then kill it.
    Returns True if it died holding a lease."""
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            return False
        victim.send_signal(signal.SIGSTOP)
        if holds_lease(queue, VICTIM):
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            return True
        victim.send_signal(signal.SIGCONT)
        time.sleep(0.05)
    return False


def digests(report: dict) -> dict:
    return {
        (j["name"], j["model"], j["arch"]): j["outcome_digest"] for j in report["jobs"]
    }


def diff_digests(left_report: dict, right_report: dict, failures: list[str], label: str) -> None:
    left, right = digests(left_report), digests(right_report)
    if left.keys() != right.keys():
        failures.append(f"{label}: job sets differ: {left.keys() ^ right.keys()}")
    diverged = [k for k in left.keys() & right.keys() if left[k] != right[k]]
    if diverged:
        failures.append(
            f"{label}: outcome digests diverged on {len(diverged)} job(s): {diverged[:5]}"
        )
    print(f"{label}: {len(diverged)} difference(s) over {len(left)} jobs")


def http_fleet_leg(tests, pooled_report: dict, tmp: Path) -> list[str]:
    """Fleet over an HTTP queue: two workers, no shared filesystem."""
    import queue as queue_module

    from repro.distrib import DistribConfig
    from repro.harness import run_fuzz
    from repro.service import ServiceClient, ServiceConfig
    from repro.service.http import run_server

    ready: "queue_module.Queue[tuple[str, int]]" = queue_module.Queue()
    server = threading.Thread(
        target=run_server,
        args=(ServiceConfig(workers=1, batch_max_delay=0.0), "127.0.0.1", 0),
        kwargs={"on_ready": lambda host, port: ready.put((host, port))},
        daemon=True,
    )
    server.start()
    host, port = ready.get(timeout=60)
    url = f"http://{host}:{port}"
    print(f"http leg: queue mounted at {url}/v1/queue, 2 workers, no shared filesystem")
    workers = [spawn_worker(url, f"h{i}") for i in range(2)]
    try:
        distributed = run_fuzz(
            tests,
            models=("promising", "axiomatic"),
            report_path=tmp / "fuzz-http.json",
            name="http-smoke",
            distrib=DistribConfig(
                backend_url=url,
                workers=0,  # external fleet only
                lease_seconds=LEASE_SECONDS,
                stall_timeout=120.0,
            ),
        )
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            if worker.poll() is None:
                try:
                    worker.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    worker.kill()
        ServiceClient(host, port).shutdown()
        server.join(timeout=30)

    failures: list[str] = []
    info = distributed.report["extra"]["distrib"]
    print(
        f"http fleet: {distributed.report['n_jobs']} jobs, "
        f"{info['jobs_computed']} computed + {info['jobs_cache_served']} cache-served, "
        f"workers {[w['worker_id'] for w in info['workers']]}"
    )
    if not distributed.report["ok"]:
        failures.append(f"http fuzz run not ok: {distributed.report['status_counts']}")
    if info["jobs_computed"] + info["jobs_cache_served"] == 0:
        failures.append("http fleet served no jobs — the workers never joined")
    diff_digests(distributed.report, pooled_report, failures, "http digest diff vs pooled run")
    return failures


def main() -> int:
    tests = generate_cycle_battery(max_per_family=MAX_PER_FAMILY)
    print(f"corpus: {len(tests)} tests, {N_WORKERS} fleet workers, lease {LEASE_SECONDS}s")

    with tempfile.TemporaryDirectory(prefix="distrib-smoke-") as tmp:
        queue = Path(tmp) / "queue.db"
        cache = Path(tmp) / "cache"
        workers = [spawn_worker(str(queue), f"w{i}", cache) for i in range(N_WORKERS)]
        killed = {"mid_lease": False}
        killer = threading.Thread(
            target=lambda: killed.__setitem__(
                "mid_lease", kill_victim_mid_lease(queue, workers[0], time.monotonic() + 60)
            ),
            daemon=True,
        )
        killer.start()
        try:
            distributed = run_fuzz(
                tests,
                models=("promising", "axiomatic"),
                report_path=Path(tmp) / "fuzz-distributed.json",
                name="distrib-smoke",
                distrib=DistribConfig(
                    backend_url=str(queue),
                    workers=0,  # external fleet only
                    lease_seconds=LEASE_SECONDS,
                    stall_timeout=120.0,
                ),
            )
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.terminate()
            for worker in workers:
                if worker.poll() is None:
                    try:
                        worker.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        worker.kill()
        killer.join(timeout=5)

        pooled = run_fuzz(
            tests,
            models=("promising", "axiomatic"),
            report_path=Path(tmp) / "fuzz-pooled.json",
            name="pooled-smoke",
            workers=2,
        )

        http_failures = http_fleet_leg(tests, pooled.report, Path(tmp))

    failures: list[str] = []
    info = distributed.report["extra"]["distrib"]
    print(
        f"distributed: {distributed.report['n_jobs']} jobs, "
        f"{info['jobs_computed']} computed + {info['jobs_cache_served']} cache-served, "
        f"{info['lease_reclaims']} lease reclaim(s), "
        f"workers {[w['worker_id'] for w in info['workers']]}"
    )

    if not killed["mid_lease"]:
        failures.append("never caught worker w0 holding a lease — kill leg did not run")
    if info["lease_reclaims"] < 1:
        failures.append("coordinator recorded no lease reclamations after the worker kill")
    if not distributed.report["ok"]:
        failures.append(f"distributed fuzz run not ok: {distributed.report['status_counts']}")
    n_mismatches = len(distributed.report["mismatches"]) + len(pooled.report["mismatches"])
    if n_mismatches:
        failures.append(
            f"model mismatches: distributed={len(distributed.report['mismatches'])} "
            f"pooled={len(pooled.report['mismatches'])}"
        )
    # Exactly-once: every job was served by exactly one completion —
    # computed plus cache-served covers the enqueued set with no repeats.
    served = info["jobs_computed"] + info["jobs_cache_served"] + info["local_cache_hits"]
    expected = distributed.report["n_jobs"] - info["in_batch_duplicates"]
    if served != expected:
        failures.append(f"served {served} jobs, expected exactly {expected}")
    # ...and the fleet's per-worker completion counts tile those
    # completions with no overlap (the victim's pre-crash finishes
    # included — a reclaimed lease never double-counts).
    fleet_done = sum(w["jobs_done"] for w in info["workers"])
    if fleet_done != info["jobs_computed"] + info["jobs_cache_served"]:
        failures.append(
            f"fleet jobs_done {fleet_done} != {info['jobs_computed']} computed + "
            f"{info['jobs_cache_served']} cache-served ({info['workers']})"
        )

    # -- digest diff: distribution must not change a single outcome set --
    diff_digests(distributed.report, pooled.report, failures, "digest diff vs pooled run")
    failures.extend(http_failures)

    if failures:
        print(f"\n{len(failures)} failure(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(json.dumps({"ok": True, "lease_reclaims": info["lease_reclaims"]}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
