"""Promising-ARM/RISC-V — Python reproduction of the PLDI 2019 system.

The package is organised as:

* :mod:`repro.lang` — the paper's small imperative calculus.
* :mod:`repro.promising` — the Promising operational model, certification,
  and the exhaustive / interactive exploration tools (the paper's primary
  contribution).
* :mod:`repro.axiomatic` — the reference ARMv8/RISC-V axiomatic model the
  operational model is equivalent to.
* :mod:`repro.flat` — a Flat-style abstract-microarchitectural baseline.
* :mod:`repro.isa` — ARMv8 and RISC-V assembly front ends.
* :mod:`repro.litmus` — litmus tests: format, catalogue, generators.
* :mod:`repro.harness` — the parallel sweep harness: batch execution of
  litmus jobs with a worker pool, persistent result cache, and JSON
  sweep reports.
* :mod:`repro.workloads` — the concurrent data structures of the
  evaluation (spinlocks, ticket lock, Treiber stack, Michael-Scott queue,
  Chase-Lev deque, producer/consumer queues).
* :mod:`repro.tools` — command-line interface and model comparison.
"""

__version__ = "1.0.0"

from .lang import Arch

__all__ = ["Arch", "__version__"]
