"""The reference ARMv8/RISC-V axiomatic memory model (Fig. 6)."""

from .events import Event, EventId, INIT_TID, init_write
from .relations import Relation, cross, identity_on, relation_from_pairs
from .preexec import (
    PreExecution,
    TooManyPreExecutions,
    enumerate_preexecutions,
    infer_value_domains,
)
from .model import (
    AxiomaticConfig,
    AxiomaticResult,
    AxiomaticStats,
    CandidateExecution,
    axiomatic_verdict,
    check_axioms,
    enumerate_axiomatic_outcomes,
    preserved_ordering,
)

__all__ = [
    "Event",
    "EventId",
    "INIT_TID",
    "init_write",
    "Relation",
    "cross",
    "identity_on",
    "relation_from_pairs",
    "PreExecution",
    "TooManyPreExecutions",
    "enumerate_preexecutions",
    "infer_value_domains",
    "AxiomaticConfig",
    "AxiomaticResult",
    "AxiomaticStats",
    "CandidateExecution",
    "axiomatic_verdict",
    "check_axioms",
    "enumerate_axiomatic_outcomes",
    "preserved_ordering",
]
