"""Events of candidate executions (the axiomatic model's vocabulary).

A candidate execution consists of memory-access, fence and ISB events with
per-thread program order, plus the execution witness relations ``rf`` (a
read reads from a write), ``co`` (per-location coherence order) and ``rmw``
(successful load/store-exclusive pairing).  Dependencies (``addr``,
``data``, ``ctrl``) are recorded on the events themselves while a thread's
pre-execution is generated, because they are purely syntactic properties
of the instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..lang.expr import Value
from ..lang.kinds import FenceSet, ReadKind, WriteKind
from ..lang.program import Loc, TId

#: Event identifiers are (thread id, per-thread index); initial writes use
#: thread id -1.
EventId = tuple[int, int]

INIT_TID = -1


@dataclass(frozen=True)
class Event:
    """One event of a candidate execution."""

    eid: EventId
    tid: TId
    kind: str  # 'R', 'W', 'F', 'ISB'
    loc: Optional[Loc] = None
    val: Optional[Value] = None
    #: Read kind (loads) — plain / weak acquire / acquire.
    rkind: ReadKind = ReadKind.PLN
    #: Write kind (stores) — plain / weak release / release.
    wkind: WriteKind = WriteKind.PLN
    #: Exclusive access (load-reserve / store-conditional)?
    exclusive: bool = False
    #: Fence operands for 'F' events (before / after classes).
    fence_before: FenceSet = FenceSet.NONE
    fence_after: FenceSet = FenceSet.NONE
    #: Read events this event's address depends on.
    addr_deps: FrozenSet[EventId] = frozenset()
    #: Read events this event's data depends on (stores only).
    data_deps: FrozenSet[EventId] = frozenset()
    #: Read events this event is control-dependent on.
    ctrl_deps: FrozenSet[EventId] = frozenset()
    #: For a successful store exclusive: the paired load exclusive.
    rmw_partner: Optional[EventId] = None

    # -- classification ------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.kind == "R"

    @property
    def is_write(self) -> bool:
        return self.kind == "W"

    @property
    def is_access(self) -> bool:
        return self.kind in ("R", "W")

    @property
    def is_fence(self) -> bool:
        return self.kind == "F"

    @property
    def is_isb(self) -> bool:
        return self.kind == "ISB"

    @property
    def is_init(self) -> bool:
        return self.tid == INIT_TID

    @property
    def is_acquire(self) -> bool:
        """AQ | AQpc — strong or weak acquire read."""
        return self.is_read and self.rkind.is_acquire

    @property
    def is_strong_acquire(self) -> bool:
        """AQ — strong acquire read."""
        return self.is_read and self.rkind.is_strong_acquire

    @property
    def is_release(self) -> bool:
        """RL | RLpc — strong or weak release write."""
        return self.is_write and self.wkind.is_release

    @property
    def is_strong_release(self) -> bool:
        """RL — strong release write."""
        return self.is_write and self.wkind.is_strong_release

    def matches_fence_class(self, klass: FenceSet) -> bool:
        """Is this access in the R/W class ``klass`` of a fence operand?"""
        if self.is_read:
            return klass.includes(FenceSet.R)
        if self.is_write:
            return klass.includes(FenceSet.W)
        return False

    def __repr__(self) -> str:
        if self.is_access:
            tag = self.kind
            if self.exclusive:
                tag += "x"
            if self.is_read and self.rkind is not ReadKind.PLN:
                tag += f".{self.rkind.name.lower()}"
            if self.is_write and self.wkind is not WriteKind.PLN:
                tag += f".{self.wkind.name.lower()}"
            return f"{self.eid}:{tag}[{self.loc}]={self.val}"
        if self.is_fence:
            return f"{self.eid}:F.{self.fence_before.name}.{self.fence_after.name}"
        return f"{self.eid}:{self.kind}"


def init_write(loc: Loc, value: Value, index: int) -> Event:
    """The implicit initial write event of a location."""
    return Event(eid=(INIT_TID, index), tid=INIT_TID, kind="W", loc=loc, val=value)


__all__ = ["Event", "EventId", "INIT_TID", "init_write"]
