"""The ARMv8/RISC-V axiomatic memory model (Fig. 6 / §D of the paper).

Candidate executions are built from per-thread pre-executions
(:mod:`repro.axiomatic.preexec`) by choosing a reads-from relation ``rf``
and a per-location coherence order ``co``; a candidate is *legal* when it
satisfies the three axioms:

* ``internal``: ``acyclic (po-loc | fr | co | rf)`` — coherence;
* ``external``: ``acyclic ob`` where ``ob = obs | dob | aob | bob`` —
  observed ordering must be consistent with the preserved thread-local
  ordering (dependencies, barriers, release/acquire);
* ``atomic``: ``empty (rmw & (fre; coe))`` — load/store exclusive pairs
  are not interleaved by another thread's write to the same location.

The two architectures differ only in ``aob`` (forwarding from an exclusive
write) and in ``bob`` (RISC-V orders the paired load before the store
conditional), exactly as in the paper's Fig. 6.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from ..lang.kinds import Arch
from ..lang.program import Loc, Program, TId
from ..lang.expr import Value
from ..outcomes import Outcome, OutcomeSet
from .events import Event, EventId, INIT_TID, init_write
from .preexec import (
    PreExecution,
    TooManyPreExecutions,
    enumerate_preexecutions,
    infer_value_domains,
)
from .relations import Relation, identity_on


@dataclass
class AxiomaticConfig:
    """Configuration of the axiomatic enumerator."""

    arch: Arch = Arch.ARM
    loop_bound: int = 2
    #: Cap on interpreter states per thread unfolding.
    max_preexec_states: int = 100_000
    #: Cap on candidate executions examined (safety valve).
    max_candidates: int = 2_000_000
    #: Iterations of the value-domain fixpoint.
    domain_iterations: int = 4


@dataclass
class AxiomaticStats:
    """Diagnostics from an axiomatic enumeration."""

    pre_executions: int = 0
    candidates: int = 0
    consistent: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"pre-executions: {self.pre_executions}, candidates: {self.candidates}, "
            f"consistent: {self.consistent}, truncated: {self.truncated}, "
            f"time: {self.elapsed_seconds:.3f}s"
        )


@dataclass
class AxiomaticResult:
    outcomes: OutcomeSet
    stats: AxiomaticStats
    program: Program

    def describe(self) -> str:
        header = f"{len(self.outcomes)} outcomes ({self.stats.describe()})"
        return header + "\n" + self.outcomes.describe(self.program.loc_names)


@dataclass(frozen=True)
class CandidateExecution:
    """A full candidate: events plus the execution witness."""

    events: tuple[Event, ...]
    po: Relation
    rf: Relation
    co: Relation
    rmw: Relation

    def event(self, eid: EventId) -> Event:
        return self._index[eid]

    @property
    def _index(self) -> dict[EventId, Event]:
        return {e.eid: e for e in self.events}


# ---------------------------------------------------------------------------
# Axiom checking
# ---------------------------------------------------------------------------


def _external(index: Mapping[EventId, Event], relation: Relation) -> Relation:
    return Relation(
        (a, b) for a, b in relation if index[a].tid != index[b].tid
    )


def _internal(index: Mapping[EventId, Event], relation: Relation) -> Relation:
    return Relation(
        (a, b) for a, b in relation if index[a].tid == index[b].tid
    )


def preserved_ordering(
    events: Sequence[Event],
    po: Relation,
    rf: Relation,
    co: Relation,
    rmw: Relation,
    arch: Arch,
) -> Relation:
    """The ordered-before relation ``ob = obs | dob | aob | bob`` (Fig. 6)."""
    index = {e.eid: e for e in events}
    fr = rf.inverse().compose(co)

    rfe = _external(index, rf)
    rfi = _internal(index, rf)

    obs = rfe | fr | co

    addr = Relation(
        (dep, e.eid) for e in events for dep in e.addr_deps
    )
    data = Relation(
        (dep, e.eid) for e in events for dep in e.data_deps
    )
    ctrl = Relation(
        (dep, e.eid) for e in events for dep in e.ctrl_deps
    )

    def is_write(eid):
        return index[eid].is_write

    def is_read(eid):
        return index[eid].is_read

    addr_or_data = addr | data
    ctrl_or_addrpo = ctrl | addr.compose(po)
    isb_id = identity_on(events, lambda e: e.is_isb)

    dob = (
        addr
        | data
        | addr_or_data.compose(rfi)
        | ctrl_or_addrpo.restrict(range_=is_write)
        | ctrl_or_addrpo.compose(isb_id).compose(po).restrict(range_=is_read)
    )

    # aob: forwarding from a successful store exclusive.
    rmw_writes = {b for _a, b in rmw}
    aob_pairs = []
    for a, b in rfi:
        if a in rmw_writes:
            target = index[b]
            if arch is Arch.RISCV or target.is_acquire:
                aob_pairs.append((a, b))
    aob = Relation(aob_pairs)

    # bob: barriers and release/acquire ordering.
    bob_pairs: list[tuple[EventId, EventId]] = []
    by_thread: dict[TId, list[Event]] = {}
    for event in events:
        if event.tid != INIT_TID:
            by_thread.setdefault(event.tid, []).append(event)
    for thread_events in by_thread.values():
        thread_events.sort(key=lambda e: e.eid[1])
        for i, fence in enumerate(thread_events):
            if not fence.is_fence:
                continue
            before = [
                e for e in thread_events[:i] if e.matches_fence_class(fence.fence_before)
            ]
            after = [
                e
                for e in thread_events[i + 1 :]
                if e.matches_fence_class(fence.fence_after)
            ]
            bob_pairs.extend((b.eid, a.eid) for b in before for a in after)
        for i, first in enumerate(thread_events):
            for later in thread_events[i + 1 :]:
                # [RL]; po; [AQ]
                if first.is_strong_release and later.is_strong_acquire:
                    bob_pairs.append((first.eid, later.eid))
                # [AQ|AQpc]; po
                if first.is_acquire:
                    bob_pairs.append((first.eid, later.eid))
                # po; [RL|RLpc]
                if later.is_release:
                    bob_pairs.append((first.eid, later.eid))
    bob = Relation(bob_pairs)
    if arch is Arch.RISCV:
        bob = bob | rmw

    return obs | dob | aob | bob


def check_axioms(candidate: CandidateExecution, arch: Arch) -> bool:
    """Do the Fig. 6 axioms hold for ``candidate``?"""
    events = candidate.events
    index = {e.eid: e for e in events}
    po, rf, co, rmw = candidate.po, candidate.rf, candidate.co, candidate.rmw
    fr = rf.inverse().compose(co)

    # internal: acyclic (po-loc | fr | co | rf)
    po_loc = Relation(
        (a, b)
        for a, b in po
        if index[a].is_access
        and index[b].is_access
        and index[a].loc == index[b].loc
    )
    if not (po_loc | fr | co | rf).is_acyclic():
        return False

    # external: acyclic ob
    ob = preserved_ordering(events, po, rf, co, rmw, arch)
    if not ob.is_acyclic():
        return False

    # atomic: empty (rmw & (fre; coe))
    fre = _external(index, fr)
    coe = _external(index, co)
    if not (rmw & fre.compose(coe)).is_empty():
        return False
    return True


# ---------------------------------------------------------------------------
# Candidate enumeration
# ---------------------------------------------------------------------------


def _program_order(pre_execs: Sequence[PreExecution]) -> Relation:
    pairs = []
    for pre in pre_execs:
        events = pre.events
        for i, first in enumerate(events):
            for later in events[i + 1 :]:
                pairs.append((first.eid, later.eid))
    return Relation(pairs)


def _rf_choices(reads: Sequence[Event], writes: Sequence[Event]) -> Iterator[Relation]:
    """All reads-from assignments matching locations and values."""
    per_read: list[list[Event]] = []
    for read in reads:
        sources = [
            w for w in writes if w.loc == read.loc and w.val == read.val
        ]
        if not sources:
            return
        per_read.append(sources)
    for combo in itertools.product(*per_read):
        yield Relation(
            (w.eid, r.eid) for w, r in zip(combo, reads)
        )


def _co_choices(writes: Sequence[Event]) -> Iterator[Relation]:
    """All per-location coherence orders (initial writes first)."""
    by_loc: dict[Loc, list[Event]] = {}
    init_by_loc: dict[Loc, Event] = {}
    for w in writes:
        if w.is_init:
            init_by_loc[w.loc] = w
        else:
            by_loc.setdefault(w.loc, []).append(w)
    per_loc_orders: list[list[list[Event]]] = []
    for loc, ws in by_loc.items():
        orders = []
        for perm in itertools.permutations(ws):
            chain = ([init_by_loc[loc]] if loc in init_by_loc else []) + list(perm)
            orders.append(chain)
        per_loc_orders.append(orders)
    if not per_loc_orders:
        yield Relation()
        return
    for combo in itertools.product(*per_loc_orders):
        pairs = []
        for chain in combo:
            for i, first in enumerate(chain):
                for later in chain[i + 1 :]:
                    pairs.append((first.eid, later.eid))
        yield Relation(pairs)


def _candidate_outcome(
    pre_execs: Sequence[PreExecution],
    events: Sequence[Event],
    co: Relation,
    initial: Mapping[Loc, Value],
) -> Outcome:
    final_memory: dict[Loc, Value] = dict(initial)
    writes = [e for e in events if e.is_write]
    co_pairs = set(co)
    for write in writes:
        final_memory.setdefault(write.loc, 0)
    for loc in {w.loc for w in writes}:
        loc_writes = [w for w in writes if w.loc == loc]
        maximal = [
            w
            for w in loc_writes
            if not any((w.eid, other.eid) in co_pairs for other in loc_writes if other is not w)
        ]
        if maximal:
            final_memory[loc] = maximal[0].val
    registers = [pre.final_register_values() for pre in pre_execs]
    return Outcome.make(registers, final_memory)


def enumerate_axiomatic_outcomes(
    program: Program, config: Optional[AxiomaticConfig] = None
) -> AxiomaticResult:
    """Enumerate all outcomes allowed by the axiomatic model."""
    config = config or AxiomaticConfig()
    start = time.perf_counter()
    stats = AxiomaticStats()
    outcomes = OutcomeSet()

    domains = infer_value_domains(
        program,
        loop_bound=config.loop_bound,
        max_iterations=config.domain_iterations,
        max_states=config.max_preexec_states,
    )

    per_thread: list[list[PreExecution]] = []
    for tid, stmt in enumerate(program.threads):
        try:
            pre_execs = enumerate_preexecutions(
                stmt,
                tid,
                domains,
                program.initial,
                config.loop_bound,
                config.max_preexec_states,
            )
        except TooManyPreExecutions:
            stats.truncated = True
            pre_execs = []
        if not pre_execs:
            pre_execs = [PreExecution(tid, (), ())]
        stats.pre_executions += len(pre_execs)
        per_thread.append(pre_execs)

    for chosen in itertools.product(*per_thread):
        thread_events = [e for pre in chosen for e in pre.events]
        locations = sorted(
            {e.loc for e in thread_events if e.is_access} | set(program.initial)
        )
        init_events = [
            init_write(loc, program.initial_value(loc), i)
            for i, loc in enumerate(locations)
        ]
        events = tuple(init_events + thread_events)
        reads = [e for e in thread_events if e.is_read]
        writes = [e for e in events if e.is_write]
        po = _program_order(chosen)
        rmw = Relation(
            (e.rmw_partner, e.eid)
            for e in thread_events
            if e.is_write and e.rmw_partner is not None
        )
        for rf in _rf_choices(reads, writes):
            for co in _co_choices(writes):
                stats.candidates += 1
                if stats.candidates > config.max_candidates:
                    stats.truncated = True
                    stats.elapsed_seconds = time.perf_counter() - start
                    return AxiomaticResult(outcomes, stats, program)
                candidate = CandidateExecution(events, po, rf, co, rmw)
                if check_axioms(candidate, config.arch):
                    stats.consistent += 1
                    outcomes.add(_candidate_outcome(chosen, events, co, program.initial))

    stats.elapsed_seconds = time.perf_counter() - start
    return AxiomaticResult(outcomes, stats, program)


def axiomatic_verdict(test, config: Optional[AxiomaticConfig] = None):
    """Verdict oracle: is ``test``'s condition observable axiomatically?

    The standalone, harness-free entry point (the axiomatic models are the
    architectures' official definitions, so their verdict is what
    generated tests are checked against): enumerate the axiomatic
    outcomes, project them onto the observables mentioned by the
    condition — the same projection the litmus runner applies — and
    evaluate the condition.  Returns a
    :class:`~repro.litmus.test.Verdict`.  For whole corpora prefer
    :func:`repro.litmus.synth.attach_expected`, which asks the same
    question through the sweep harness (worker pool + result cache).

    ``test`` is a :class:`~repro.litmus.test.LitmusTest` (typed loosely to
    keep this package import-free of :mod:`repro.litmus`); pass the target
    architecture via ``config``.
    """
    result = enumerate_axiomatic_outcomes(test.program, config)
    registers = {
        tid: sorted(names) for tid, names in test.observable_registers().items()
    }
    locations = sorted(test.observable_locations())
    return test.evaluate(result.outcomes.project(registers, locations))


__all__ = [
    "AxiomaticConfig",
    "AxiomaticStats",
    "AxiomaticResult",
    "CandidateExecution",
    "preserved_ordering",
    "check_axioms",
    "enumerate_axiomatic_outcomes",
    "axiomatic_verdict",
]
