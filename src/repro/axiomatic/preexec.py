"""Per-thread pre-executions: program-order event streams with dependencies.

The axiomatic model works on *candidate executions*: a control-flow
unfolding of each thread with concrete values for every read, together
with the witness relations rf/co/rmw.  This module enumerates the
per-thread part — the possible event streams — by executing a thread's
statement and branching on the value returned by each load.

Loads draw their values from a per-location *value domain*.  The domain is
inferred by :func:`infer_value_domains` as a fixpoint: start from the
initial values, run all threads, collect the values written, and repeat
until no new value appears.  The resulting domains over-approximate the
values reads can observe; infeasible choices are discarded later when no
write can justify them under ``rf``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from ..lang.ast import (
    Assign,
    Fence,
    If,
    Isb,
    Load,
    Seq,
    Skip,
    Stmt,
    Store,
    While,
)
from ..lang.expr import BinOp, Const, Expr, OPERATORS, RegE, Reg, Value
from ..lang.kinds import VFAIL, VSUCC
from ..lang.program import Loc, Program, TId
from ..lang.transform import unroll_loops
from ..lang import has_loops
from .events import Event, EventId

#: Per-location sets of values a read may observe.
ValueDomains = Mapping[Loc, frozenset[Value]]


@dataclass(frozen=True)
class PreExecution:
    """One control-flow unfolding of a thread with concrete read values."""

    tid: TId
    events: tuple[Event, ...]
    final_regs: tuple[tuple[Reg, Value], ...]

    def reads(self) -> list[Event]:
        return [e for e in self.events if e.is_read]

    def writes(self) -> list[Event]:
        return [e for e in self.events if e.is_write]

    def final_register_values(self) -> dict[Reg, Value]:
        return dict(self.final_regs)


@dataclass
class _ThreadEnv:
    """Mutable interpreter state threaded through the enumeration."""

    tid: TId
    regs: dict[Reg, tuple[Value, frozenset[EventId]]]
    ctrl: frozenset[EventId]
    events: list[Event]
    next_index: int
    #: Most recent load exclusive not yet consumed by a store exclusive.
    pending_lr: Optional[EventId]

    def copy(self) -> "_ThreadEnv":
        return _ThreadEnv(
            self.tid,
            dict(self.regs),
            self.ctrl,
            list(self.events),
            self.next_index,
            self.pending_lr,
        )

    def fresh_eid(self) -> EventId:
        eid = (self.tid, self.next_index)
        self.next_index += 1
        return eid

    def eval(self, expr: Expr) -> tuple[Value, frozenset[EventId]]:
        """Evaluate an expression to a value and the reads it depends on."""
        if isinstance(expr, Const):
            return expr.value, frozenset()
        if isinstance(expr, RegE):
            return self.regs.get(expr.reg, (0, frozenset()))
        if isinstance(expr, BinOp):
            v1, d1 = self.eval(expr.left)
            v2, d2 = self.eval(expr.right)
            return OPERATORS[expr.op](v1, v2), d1 | d2
        raise TypeError(f"not an expression: {expr!r}")


class TooManyPreExecutions(Exception):
    """Raised when a thread's unfolding exceeds the configured bound."""


def _domain_for(domains: ValueDomains, loc: Loc, initial: Mapping[Loc, Value]) -> frozenset[Value]:
    base = domains.get(loc, frozenset())
    return base | frozenset((initial.get(loc, 0),))


def _run(
    stmt: Stmt,
    env: _ThreadEnv,
    domains: ValueDomains,
    initial: Mapping[Loc, Value],
    budget: list[int],
) -> Iterator[_ThreadEnv]:
    """Yield the interpreter states after executing ``stmt`` from ``env``."""
    if budget[0] <= 0:
        raise TooManyPreExecutions()
    if isinstance(stmt, Skip):
        yield env
        return
    if isinstance(stmt, Seq):
        for mid in _run(stmt.first, env, domains, initial, budget):
            yield from _run(stmt.second, mid, domains, initial, budget)
        return
    if isinstance(stmt, Assign):
        new = env.copy()
        new.regs[stmt.reg] = new.eval(stmt.expr)
        yield new
        return
    if isinstance(stmt, If):
        value, deps = env.eval(stmt.cond)
        new = env.copy()
        new.ctrl = env.ctrl | deps
        branch = stmt.then if value != 0 else stmt.orelse
        yield from _run(branch, new, domains, initial, budget)
        return
    if isinstance(stmt, While):
        raise ValueError("loops must be unrolled before pre-execution enumeration")
    if isinstance(stmt, Fence):
        new = env.copy()
        eid = new.fresh_eid()
        new.events.append(
            Event(
                eid=eid,
                tid=env.tid,
                kind="F",
                fence_before=stmt.before,
                fence_after=stmt.after,
                ctrl_deps=env.ctrl,
            )
        )
        yield new
        return
    if isinstance(stmt, Isb):
        new = env.copy()
        eid = new.fresh_eid()
        new.events.append(Event(eid=eid, tid=env.tid, kind="ISB", ctrl_deps=env.ctrl))
        yield new
        return
    if isinstance(stmt, Load):
        loc, addr_deps = env.eval(stmt.addr)
        for value in sorted(_domain_for(domains, loc, initial)):
            budget[0] -= 1
            if budget[0] <= 0:
                raise TooManyPreExecutions()
            new = env.copy()
            eid = new.fresh_eid()
            new.events.append(
                Event(
                    eid=eid,
                    tid=env.tid,
                    kind="R",
                    loc=loc,
                    val=value,
                    rkind=stmt.kind,
                    exclusive=stmt.exclusive,
                    addr_deps=addr_deps,
                    ctrl_deps=env.ctrl,
                )
            )
            new.regs[stmt.reg] = (value, frozenset((eid,)))
            if stmt.exclusive:
                new.pending_lr = eid
            yield new
        return
    if isinstance(stmt, Store):
        loc, addr_deps = env.eval(stmt.addr)
        value, data_deps = env.eval(stmt.data)
        if stmt.exclusive:
            # Branch 1: the store exclusive fails — no write event.
            fail = env.copy()
            if stmt.succ_reg is not None:
                fail.regs[stmt.succ_reg] = (VFAIL, frozenset())
            fail.pending_lr = None
            yield fail
            # Branch 2: it succeeds, provided a load exclusive is pending.
            if env.pending_lr is not None:
                ok = env.copy()
                eid = ok.fresh_eid()
                ok.events.append(
                    Event(
                        eid=eid,
                        tid=env.tid,
                        kind="W",
                        loc=loc,
                        val=value,
                        wkind=stmt.kind,
                        exclusive=True,
                        addr_deps=addr_deps,
                        data_deps=data_deps,
                        ctrl_deps=env.ctrl,
                        rmw_partner=env.pending_lr,
                    )
                )
                if stmt.succ_reg is not None:
                    ok.regs[stmt.succ_reg] = (VSUCC, frozenset())
                ok.pending_lr = None
                yield ok
            return
        new = env.copy()
        eid = new.fresh_eid()
        new.events.append(
            Event(
                eid=eid,
                tid=env.tid,
                kind="W",
                loc=loc,
                val=value,
                wkind=stmt.kind,
                exclusive=False,
                addr_deps=addr_deps,
                data_deps=data_deps,
                ctrl_deps=env.ctrl,
            )
        )
        yield new
        return
    raise TypeError(f"cannot pre-execute statement {stmt!r}")


def enumerate_preexecutions(
    stmt: Stmt,
    tid: TId,
    domains: ValueDomains,
    initial: Mapping[Loc, Value],
    loop_bound: int = 2,
    max_states: int = 100_000,
) -> list[PreExecution]:
    """Enumerate the pre-executions of one thread.

    Raises :class:`TooManyPreExecutions` when the unfolding exceeds
    ``max_states`` interpreter states.
    """
    if has_loops(stmt):
        stmt = unroll_loops(stmt, loop_bound)
    env = _ThreadEnv(tid, {}, frozenset(), [], 0, None)
    budget = [max_states]
    result = []
    for final in _run(stmt, env, domains, initial, budget):
        regs = tuple(sorted((r, v) for r, (v, _deps) in final.regs.items()))
        result.append(PreExecution(tid, tuple(final.events), regs))
    return result


def infer_value_domains(
    program: Program,
    loop_bound: int = 2,
    max_iterations: int = 4,
    max_states: int = 100_000,
) -> dict[Loc, frozenset[Value]]:
    """Fixpoint inference of the per-location read-value domains.

    Iteration 0 seeds each location with its initial value; each round
    re-enumerates the threads' pre-executions under the current domains and
    adds every written (location, value) pair.  The fixpoint is reached
    quickly for litmus-style programs (values are constants or copied).
    """
    domains: dict[Loc, set[Value]] = {
        loc: {val} for loc, val in program.initial.items()
    }
    for _ in range(max_iterations):
        changed = False
        frozen = {loc: frozenset(vals) for loc, vals in domains.items()}
        for tid, stmt in enumerate(program.threads):
            try:
                pre_execs = enumerate_preexecutions(
                    stmt, tid, frozen, program.initial, loop_bound, max_states
                )
            except TooManyPreExecutions:
                continue
            for pre in pre_execs:
                for event in pre.writes():
                    bucket = domains.setdefault(event.loc, set())
                    if event.val not in bucket:
                        bucket.add(event.val)
                        changed = True
        if not changed:
            break
    return {loc: frozenset(vals) for loc, vals in domains.items()}


__all__ = [
    "PreExecution",
    "ValueDomains",
    "TooManyPreExecutions",
    "enumerate_preexecutions",
    "infer_value_domains",
]
