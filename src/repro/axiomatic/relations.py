"""Relational algebra over event identifiers.

The axiomatic model (Fig. 6) is phrased as unions, compositions and
restrictions of binary relations over events, plus acyclicity/emptiness
checks.  :class:`Relation` provides exactly those operations on sets of
``(EventId, EventId)`` pairs, keeping :mod:`repro.axiomatic.model` close to
the herd/cat source text.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .events import Event, EventId

Pair = tuple[EventId, EventId]


class Relation:
    """An immutable binary relation over event identifiers."""

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Iterable[Pair] = ()) -> None:
        self._pairs: frozenset[Pair] = frozenset(pairs)

    # -- basic set operations ------------------------------------------------
    def __or__(self, other: "Relation") -> "Relation":
        return Relation(self._pairs | other._pairs)

    def __and__(self, other: "Relation") -> "Relation":
        return Relation(self._pairs & other._pairs)

    def __sub__(self, other: "Relation") -> "Relation":
        return Relation(self._pairs - other._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relation) and self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:
        return f"Relation({sorted(self._pairs)})"

    # -- relational operators --------------------------------------------------
    def compose(self, other: "Relation") -> "Relation":
        """Relational composition ``self ; other``."""
        by_src: dict[EventId, list[EventId]] = {}
        for a, b in other._pairs:
            by_src.setdefault(a, []).append(b)
        return Relation(
            (a, c) for a, b in self._pairs for c in by_src.get(b, ())
        )

    def inverse(self) -> "Relation":
        """The converse relation ``self^-1``."""
        return Relation((b, a) for a, b in self._pairs)

    def restrict(
        self,
        domain: Callable[[EventId], bool] | None = None,
        range_: Callable[[EventId], bool] | None = None,
    ) -> "Relation":
        """Restrict the domain and/or range by predicates on event ids."""
        return Relation(
            (a, b)
            for a, b in self._pairs
            if (domain is None or domain(a)) and (range_ is None or range_(b))
        )

    def irreflexive(self) -> bool:
        return all(a != b for a, b in self._pairs)

    def transitive_closure(self) -> "Relation":
        """The transitive closure ``self+`` (used only on small graphs)."""
        succ: dict[EventId, set[EventId]] = {}
        for a, b in self._pairs:
            succ.setdefault(a, set()).add(b)
        closure: set[Pair] = set()
        for start in list(succ):
            seen: set[EventId] = set()
            stack = list(succ.get(start, ()))
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                closure.add((start, node))
                stack.extend(succ.get(node, ()))
        return Relation(closure)

    def is_acyclic(self) -> bool:
        """Is the relation acyclic (no directed cycle)?"""
        succ: dict[EventId, list[EventId]] = {}
        nodes: set[EventId] = set()
        for a, b in self._pairs:
            succ.setdefault(a, []).append(b)
            nodes.add(a)
            nodes.add(b)
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in nodes}
        for root in nodes:
            if colour[root] != WHITE:
                continue
            stack: list[tuple[EventId, Iterator[EventId]]] = [(root, iter(succ.get(root, ())))]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == GREY:
                        return False
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(succ.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return True

    def is_empty(self) -> bool:
        return not self._pairs


def identity_on(events: Iterable[Event], predicate: Callable[[Event], bool]) -> Relation:
    """The identity relation restricted to events satisfying ``predicate``.

    Corresponds to the cat-language ``[S]`` set-as-relation notation.
    """
    return Relation((e.eid, e.eid) for e in events if predicate(e))


def relation_from_pairs(pairs: Iterable[tuple[Event, Event]]) -> Relation:
    """Build a relation from event (not event-id) pairs."""
    return Relation((a.eid, b.eid) for a, b in pairs)


def cross(sources: Iterable[Event], targets: Iterable[Event]) -> Relation:
    """Cartesian product of two event sets as a relation."""
    targets = list(targets)
    return Relation((s.eid, t.eid) for s in sources for t in targets)


__all__ = ["Relation", "Pair", "identity_on", "relation_from_pairs", "cross"]
