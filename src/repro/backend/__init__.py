"""Execution backends: swappable state representations for exploration.

See :mod:`repro.backend.base` for the seam contract.  The factories
below are what the explorers call; they validate the backend name
against :data:`~repro.explore.config.BACKENDS`.
"""

from .base import (
    BACKENDS,
    DEFAULT_BACKEND,
    EXPLORE_PHASE_SECONDS,
    ExecutionBackend,
    validate_backend,
)
from .object import ObjectFlatBackend, ObjectPromisingBackend
from .packed import PackedFlatBackend, PackedPromisingBackend


def make_promising_backend(name, program, config, stats):
    """Backend for the promising explorers (promise-first and naive)."""
    validate_backend(name)
    cls = ObjectPromisingBackend if name == "object" else PackedPromisingBackend
    return cls(program, config, stats)


def make_flat_backend(name, program, config, stats, successors_fn, thread_transitions_fn):
    """Backend for the Flat-style explorer.

    ``successors_fn`` is the explorer's whole-state labelled transition
    relation and ``thread_transitions_fn`` its per-thread factorisation
    (signature ``(thread, state, config) -> iterable of (label, thread,
    write)``); both are injected so the backend package never imports
    the explorer it serves.  The object backend drives the former, the
    packed backend memoises the latter.
    """
    validate_backend(name)
    if name == "object":
        return ObjectFlatBackend(program, config, stats, successors_fn)
    return PackedFlatBackend(program, config, stats, successors_fn, thread_transitions_fn)


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "EXPLORE_PHASE_SECONDS",
    "ExecutionBackend",
    "ObjectFlatBackend",
    "ObjectPromisingBackend",
    "PackedFlatBackend",
    "PackedPromisingBackend",
    "make_flat_backend",
    "make_promising_backend",
    "validate_backend",
]
