"""Execution backends: swappable state representations for exploration.

See :mod:`repro.backend.base` for the seam contract.  The factories
below are what the explorers call; they validate the backend name
against :data:`~repro.explore.config.BACKENDS`.
"""

from .base import (
    BACKENDS,
    DEFAULT_BACKEND,
    EXPLORE_PHASE_SECONDS,
    ExecutionBackend,
    validate_backend,
)
from .object import ObjectFlatBackend, ObjectPromisingBackend
from .packed import PackedFlatBackend, PackedPromisingBackend


def make_promising_backend(name, program, config, stats):
    """Backend for the promising explorers (promise-first and naive)."""
    validate_backend(name)
    cls = ObjectPromisingBackend if name == "object" else PackedPromisingBackend
    return cls(program, config, stats)


def make_flat_backend(name, program, config, stats, successors_fn):
    """Backend for the Flat-style explorer.

    ``successors_fn`` is the explorer's labelled transition relation,
    injected so the backend package never imports the explorer it
    serves.
    """
    validate_backend(name)
    cls = ObjectFlatBackend if name == "object" else PackedFlatBackend
    return cls(program, config, stats, successors_fn)


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "EXPLORE_PHASE_SECONDS",
    "ExecutionBackend",
    "ObjectFlatBackend",
    "ObjectPromisingBackend",
    "PackedFlatBackend",
    "PackedPromisingBackend",
    "make_flat_backend",
    "make_promising_backend",
    "validate_backend",
]
