"""The execution-backend seam of the exploration stack.

An *execution backend* owns the state representation of one exploration
run: how machine states are encoded for the search kernel, how successor
states are produced, and what identity the visited/memo tables key on.
The explorers (:func:`~repro.promising.exhaustive.explore`,
:func:`~repro.promising.exhaustive.explore_naive`,
:func:`~repro.flat.explorer.explore_flat`) keep the *drive* logic —
what to do with a popped state — and delegate every state-representation
question to the backend, so the same search produces the same outcome
set on any conforming backend.

Two backends conform today:

``object``
    The reference backend (:mod:`repro.backend.object`): states are the
    historical ``MachineState``/``FlatState`` dataclass graphs, keyed by
    hash-consed ``cache_key()`` tuples.  Bit-identical to the
    pre-seam explorers.

``packed``
    The compiled backend (:mod:`repro.backend.packed`): the program is
    compiled once per job (:mod:`repro.isa.compile`), thread
    configurations and memories are interned to dense integer ids, and a
    machine state is a flat tuple of ints whose ``key`` is the identity
    function.  Step computation runs the *same* reference step functions,
    but once per distinct ``(thread, thread-config, memory)`` triple
    instead of once per visit, then replays memoised integer results.

Backend names are validated against
:data:`~repro.explore.config.BACKENDS` (defined next to the config
dataclass so CLI/service layers need not import the implementations).
"""

from __future__ import annotations

from typing import Hashable, Protocol, runtime_checkable

from ..explore.config import BACKENDS, DEFAULT_BACKEND
from ..obs import metrics

#: Wall time per explorer phase, shared by both promising backends (the
#: registry returns the one counter for the name, so this is the same
#: series the pre-seam explorer exported).
EXPLORE_PHASE_SECONDS = metrics.counter(
    "explore_phase_seconds_total",
    "Wall time spent per explorer phase (certify/enumerate/intern).",
    labels=("model", "phase"),
)


@runtime_checkable
class ExecutionBackend(Protocol):
    """The minimal protocol every execution backend satisfies.

    ``encode``/``decode`` are inverse up to state equality (the
    round-trip law the conformance tests assert); ``key`` is the
    visited-set identity — states are equal iff their keys are; and
    ``successors`` enumerates the packed successor states of a packed
    state.  Concrete explorers use richer model-specific methods
    (certification, completion enumeration, outcome extraction) carried
    by the same backend objects.
    """

    name: str

    def encode(self, state) -> object: ...

    def decode(self, packed) -> object: ...

    def successors(self, packed) -> list: ...

    def key(self, packed) -> Hashable: ...


def validate_backend(name: str) -> str:
    """Return ``name`` if it names a known backend, else raise ValueError."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {name!r}; choose from {', '.join(BACKENDS)}"
        )
    return name


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "EXPLORE_PHASE_SECONDS",
    "ExecutionBackend",
    "validate_backend",
]
