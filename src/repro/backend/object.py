"""The ``object`` (reference) execution backends.

These wrap the historical dataclass-walking enumeration behind the
backend seam without changing a single step of it: states are the
``MachineState``/``FlatState`` object graphs themselves (``encode`` and
``decode`` are the identity), visited-set keys are the hash-consed
``cache_key()`` tuples, and certification/intern/phase accounting is
byte-for-byte the logic the explorers ran before the seam existed.  The
conformance suite holds the ``packed`` backend to this one's outcomes
and counters.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..explore import DepthFirst, SearchKernel
from ..lang.ast import Stmt
from ..lang.kinds import Arch
from ..lang.program import Program, TId
from ..obs.tracing import PhaseAccumulator
from ..outcomes import Outcome
from ..promising.certification import (
    CertificationCache,
    can_complete_without_promising,
    find_and_certify,
)
from ..promising.intern import InternPool
from ..promising.machine import MachineState, machine_transitions
from ..promising.state import Memory, TState
from ..promising.steps import is_terminated, non_promise_steps, promise_step
from .base import EXPLORE_PHASE_SECONDS


def enumerate_completions(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    stats,
    max_states: int,
    key_fn: Optional[Callable],
) -> set[tuple]:
    """All final register states of one thread under a fixed memory.

    Non-promise phase of §7: memory is fixed, so the thread's behaviour
    is independent of the other threads; we enumerate its executions and
    collect the register file of every run that terminates with all
    promises fulfilled.

    Always exhaustive (plain DFS through the kernel) even when the outer
    promise search is sampling: a sampled run must under-approximate the
    *reachable memories*, never fabricate partial register files.  With a
    ``key_fn`` (dedup enabled) symmetric instruction interleavings that
    reconverge on the same thread state are enumerated once; without it
    the search degenerates to the full execution tree (ablation mode).
    The key function is backend-specific — hash-consed ``(statement,
    thread-state key)`` tuples for ``object``, ``(statement id, packed
    thread state)`` for ``packed`` — but induces the same equivalence
    classes, so the ``thread_enumeration_states`` / ``thread_dedup_hits``
    counters agree across backends.
    """
    results: set[tuple] = set()

    def expand(node: tuple[Stmt, TState]) -> list[tuple[Stmt, TState]]:
        cur_stmt, cur_ts = node
        if is_terminated(cur_stmt) and not cur_ts.prom:
            results.add(tuple(sorted(cur_ts.register_values().items())))
            return []
        return [
            (step.stmt, step.tstate)
            for step in non_promise_steps(cur_stmt, cur_ts, memory, arch, tid)
        ]

    kernel = SearchKernel(
        expand, strategy=DepthFirst(), max_states=max_states, key_fn=key_fn
    )
    kernel.run([(stmt, ts)])
    stats.thread_enumeration_states += kernel.stats.states
    stats.thread_dedup_hits += kernel.stats.dedup_hits
    if kernel.stats.truncated:
        stats.truncated = True
    return results


class ObjectPromisingBackend:
    """Reference backend of the promising explorers (object-graph states)."""

    name = "object"

    def __init__(self, program: Program, config, stats) -> None:
        self.program = program
        self.config = config
        self.arch = config.arch
        self.stats = stats
        self.pool = InternPool() if config.dedup else None
        self.cert_cache = (
            CertificationCache(config.arch, config.cert_fuel)
            if config.cert_memo
            else None
        )
        # Memoise per-thread completion enumeration across final-memory
        # states: different promise interleavings frequently reconverge.
        self._completions: dict[tuple, set[tuple]] = {}
        self.phases = PhaseAccumulator()

    # -- ExecutionBackend core --------------------------------------------
    def initial(self) -> MachineState:
        return MachineState.initial(self.program, self.arch)

    def encode(self, state: MachineState) -> MachineState:
        return state

    def decode(self, packed: MachineState) -> MachineState:
        return packed

    def key(self, state: MachineState):
        # The hash-consing visited-set key, timed as the "intern" phase.
        t0 = time.perf_counter()
        key = state.cache_key(self.pool)
        self.phases.add("intern", time.perf_counter() - t0)
        return key

    # -- promise-first exploration ----------------------------------------
    def certify_all(self, state: MachineState):
        """Certify every thread; returns (per-thread results, can-finish)."""
        stats = self.stats
        per_thread = []
        can_finish = []
        phase_start = time.perf_counter()
        for tid, thread in enumerate(state.threads):
            if self.cert_cache is not None:
                # One sequential-graph build (memoised) answers both the
                # promise enumeration and the can-finish question.
                cert = self.cert_cache.certify(
                    thread.stmt, thread.tstate, state.memory, tid
                )
                can_finish.append(cert.can_complete)
            else:
                stats.cert_calls += 2
                cert = find_and_certify(
                    thread.stmt, thread.tstate, state.memory, self.arch, tid,
                    self.config.cert_fuel,
                )
                can_finish.append(
                    can_complete_without_promising(
                        thread.stmt, thread.tstate, state.memory, self.arch, tid,
                        self.config.cert_fuel,
                    )
                )
            if not cert.complete:
                stats.truncated = True
            per_thread.append(cert)
        self.phases.add("certify", time.perf_counter() - phase_start)
        return per_thread, can_finish

    def completion_sets(self, state: MachineState) -> Optional[list[set[tuple]]]:
        """Per-thread final register sets under this (final) memory.

        ``None`` when some thread has no completing execution (the
        candidate final memory is infeasible).
        """
        stats = self.stats
        phase_start = time.perf_counter()
        thread_results: list[set[tuple]] = []
        feasible = True
        for tid, thread in enumerate(state.threads):
            if self.pool is not None:
                cache_key = (tid, thread.key(), state.memory.cache_key())
                if cache_key in self._completions:
                    stats.completion_memo_hits += 1
                else:
                    pool = self.pool
                    key_fn = lambda node: (  # noqa: E731
                        node[0],
                        pool.tstates.intern(node[1].cache_key()),
                    )
                    self._completions[cache_key] = enumerate_completions(
                        thread.stmt, thread.tstate, state.memory, self.arch,
                        tid, stats, self.config.max_states, key_fn,
                    )
                regs = self._completions[cache_key]
            else:
                regs = enumerate_completions(
                    thread.stmt, thread.tstate, state.memory, self.arch,
                    tid, stats, self.config.max_states, None,
                )
            if not regs:
                feasible = False
                break
            thread_results.append(regs)
        self.phases.add("enumerate", time.perf_counter() - phase_start)
        return thread_results if feasible else None

    def accumulate_outcomes(self, outcomes, state: MachineState) -> None:
        """Cross per-thread completion sets into the outcome set.

        The reference cross product: decoded register dicts folded
        through :meth:`Outcome.make`, exactly the drive logic the
        explorer ran before outcome accumulation moved behind the seam.
        """
        thread_results = self.completion_sets(state)
        if thread_results is None:
            return
        final_memory = state.memory.final_values()

        def recurse(tid: int, acc: list[dict]) -> None:
            if tid == len(thread_results):
                outcomes.add(Outcome.make(list(acc), final_memory))
                return
            for regs in thread_results[tid]:
                acc.append(dict(regs))
                recurse(tid + 1, acc)
                acc.pop()

        recurse(0, [])

    def promise_successors(self, state: MachineState, per_thread) -> list[MachineState]:
        successors: list[MachineState] = []
        for tid, cert in enumerate(per_thread):
            thread = state.threads[tid]
            for msg in cert.promises:
                step = promise_step(thread.stmt, thread.tstate, state.memory, msg)
                successors.append(state.replace_thread(tid, step))
        return successors

    def final_memory(self, state: MachineState) -> dict:
        return state.memory.final_values()

    # -- naive (fully interleaved) exploration -----------------------------
    def successors(self, state: MachineState) -> list[MachineState]:
        # Certification happens inside machine_transitions here, so the
        # naive explorer's step enumeration and certify time are one
        # phase by construction.
        phase_start = time.perf_counter()
        transitions = machine_transitions(
            state, self.config.cert_fuel, cert_cache=self.cert_cache
        )
        self.phases.add("enumerate", time.perf_counter() - phase_start)
        return [transition.state for transition in transitions]

    def is_final(self, state: MachineState) -> bool:
        return state.is_final

    def has_outstanding_promises(self, state: MachineState) -> bool:
        return state.has_outstanding_promises

    def outcome(self, state: MachineState):
        return state.outcome()

    # -- accounting ---------------------------------------------------------
    def finalise(self, stats, model: str) -> None:
        """Fold the run's intern/cert counters into stats; flush phases."""
        if self.pool is not None:
            stats.interned_keys = self.pool.unique
            stats.intern_hits = self.pool.hits
        if self.cert_cache is not None:
            stats.cert_calls += self.cert_cache.calls
            stats.cert_memo_hits += self.cert_cache.hits
        self.phases.flush(EXPLORE_PHASE_SECONDS, model=model)


class ObjectFlatBackend:
    """Reference backend of the Flat-style explorer.

    The transition relation stays in :mod:`repro.flat.explorer`; it is
    injected as ``successors_fn`` (signature ``(state, config) ->
    iterable of (label, state)``) so this module needs no import of the
    explorer it serves.
    """

    name = "object"

    def __init__(self, program: Program, config, stats, successors_fn) -> None:
        self.program = program
        self.config = config
        self.stats = stats
        self._successors = successors_fn
        self.phases = PhaseAccumulator()

    def initial(self):
        from ..flat.machine import initial_state

        return self.encode(initial_state(self.program, self.config.arch))

    def encode(self, state):
        return state

    def decode(self, packed):
        return packed

    def key(self, state):
        t0 = time.perf_counter()
        key = state.cache_key()
        self.phases.add("intern", time.perf_counter() - t0)
        return key

    def successors(self, state) -> list:
        phase_start = time.perf_counter()
        result = []
        for label, succ in self._successors(state, self.config):
            if label == "restart":
                self.stats.restarts += 1
            result.append(succ)
        self.phases.add("enumerate", time.perf_counter() - phase_start)
        return result

    def is_final(self, state) -> bool:
        return state.is_final

    def outcome(self, state):
        return state.outcome()

    def finalise(self, stats, model: str) -> None:
        self.phases.flush(EXPLORE_PHASE_SECONDS, model=model)


__all__ = [
    "ObjectFlatBackend",
    "ObjectPromisingBackend",
    "enumerate_completions",
]
