"""The ``packed`` execution backend: compiled programs, integer states.

The object backend spends its time re-deriving structure from dataclass
graphs on every visit: statements are decomposed per step enumeration,
state snapshots are deep tuples whose hashes walk every register and
message on every visited-set or memo probe, and a thread configuration
recurring across interleavings is re-certified (or at best re-hashed)
each time.  This backend removes all of that:

* the program is compiled once per job (:mod:`repro.isa.compile`),
  giving every reachable statement a dense id and precomputing its head
  decomposition, register dependencies and static successor ids; step
  candidates are enumerated off those tables
  (:meth:`CompiledProgram.candidate_steps`) with no per-visit ``Seq``
  walking or statement hashing;
* thread configurations ``(statement, thread state)`` and memories are
  interned to dense integer ids (:class:`~repro.promising.intern.IdInterner`),
  with the first-seen objects kept as the canonical decoded forms;
* a machine state is the flat tuple ``(tcfg_0, …, tcfg_{T-1}, mem)`` of
  those ids — ``cache_key()`` degenerates to the identity function and
  every visited/memo table keys on small immutable int tuples;
* certification builds its sequential graphs directly on interned
  ``(stmt id, packed regs, mem id)`` nodes
  (:func:`~repro.promising.certification.certify_compiled`) and the
  per-thread completion enumeration runs over ``(stmt id, thread
  state)`` nodes — no decode → certify → re-encode round trip on memo
  misses;
* dynamic behaviour still comes from the *reference* step rule bodies
  (:mod:`repro.promising.steps`) — run once per distinct ``(thread,
  thread-config, memory)`` triple, encoded, and replayed from integer
  memo tables on every later visit.

Successor *order* is preserved exactly (candidates before promises,
promises sorted by location/value, as in
:func:`~repro.promising.machine.machine_transitions`), so even seeded
``sample`` runs walk the same traces as the object backend.
"""

from __future__ import annotations

import time
from itertools import product
from typing import Optional

from ..explore import DepthFirst, SearchKernel
from ..isa.compile import CompiledProgram, compile_program
from ..lang.program import Program
from ..obs.tracing import PhaseAccumulator
from ..outcomes import Outcome
from ..promising.certification import CertificationResult, certify_compiled
from ..promising.intern import IdInterner
from ..promising.machine import MachineState, Thread
from ..promising.steps import promise_step
from .base import EXPLORE_PHASE_SECONDS

#: Packed machine state: thread-config ids then the memory id.
Packed = tuple


class PackedPromisingBackend:
    """Promising-model backend over compiled programs and id tuples."""

    name = "packed"

    def __init__(self, program: Program, config, stats) -> None:
        self.program = program
        self.config = config
        self.arch = config.arch
        self.stats = stats
        self.compiled: CompiledProgram = compile_program(program)
        self._registers = self.compiled.registers
        #: (stmt id, packed tstate) -> dense id; objects are the
        #: canonical decoded ``(stmt, tstate)`` pairs.
        self._tcfgs = IdInterner()
        #: Per-tcfg data, parallel to ``self._tcfgs.objects``.
        self._tcfg_final: list[bool] = []
        self._tcfg_prom: list[bool] = []
        self._tcfg_sid: list[int] = []
        #: messages tuple -> dense id; objects are the Memory instances.
        #: Shared with certification, which interns the memories its
        #: sequential writes create, so a memory is hashed once per run.
        self._mems = IdInterner()
        #: ``(mem, loc, val, tid)`` -> appended memory id: promise and
        #: normal-write steps extend memory deterministically, so the
        #: resulting id never needs a messages-tuple hash twice.
        self._appends: dict[tuple, int] = {}
        #: Certification memo keyed by small ``(tid, tcfg, mem)`` tuples.
        #: Always on: memoisation is what the packed representation *is*
        #: (``cert_memo=False`` remains an object-backend ablation).
        self._certs: dict[tuple, CertificationResult] = {}
        self._cert_hits = 0
        self._cert_misses = 0
        self._steps: dict[tuple, tuple] = {}
        self._promise_steps: dict[tuple, tuple] = {}
        #: (tid, tcfg, mem) -> sorted tuple of interned register-file ids.
        self._completions: dict[tuple, tuple] = {}
        #: register-assignment tuple -> dense id; objects are the tuples.
        self._regs = IdInterner()
        #: mem id -> (final-values id, sorted final-values items); distinct
        #: memories with equal final values share the final-values id.
        self._final_mems: dict[int, tuple] = {}
        self._final_vals: dict[tuple, int] = {}
        #: (reg ids..., final-values id) combinations already turned into
        #: an Outcome: the cross product runs on ints and only fresh
        #: combinations materialise an object.
        self._outcome_seen: set[tuple] = set()
        self._step_hits = 0
        self._step_misses = 0
        self.phases = PhaseAccumulator()

    # -- encoding ----------------------------------------------------------
    def _encode_cfg(self, sid: int, ts) -> int:
        key = (sid, ts.pack(self._registers))
        table = self._tcfgs
        before = len(table)
        nid = table.intern(key, (self.compiled.stmts[sid].stmt, ts))
        if len(table) != before:
            self._tcfg_final.append(
                self.compiled.stmts[sid].terminated and not ts.prom
            )
            self._tcfg_prom.append(bool(ts.prom))
            self._tcfg_sid.append(sid)
        return nid

    def _encode_thread(self, stmt, ts) -> int:
        return self._encode_cfg(self.compiled.stmt_id(stmt), ts)

    def _encode_memory(self, memory) -> int:
        return self._mems.intern(memory.cache_key(), memory)

    def _append_id(self, mem: int, msg, memory) -> int:
        """Memory id of ``mems[mem]`` extended with ``msg`` (= ``memory``)."""
        key = (mem, msg.loc, msg.val, msg.tid)
        nid = self._appends.get(key)
        if nid is None:
            nid = self._encode_memory(memory)
            self._appends[key] = nid
        return nid

    def encode(self, state: MachineState) -> Packed:
        encode_thread = self._encode_thread
        return tuple(
            encode_thread(t.stmt, t.tstate) for t in state.threads
        ) + (self._encode_memory(state.memory),)

    def decode(self, packed: Packed) -> MachineState:
        objs = self._tcfgs.objects
        threads = tuple(Thread(*objs[i]) for i in packed[:-1])
        return MachineState(threads, self._mems.objects[packed[-1]], self.arch)

    def key(self, packed: Packed) -> Packed:
        return packed

    def initial(self) -> Packed:
        return self.encode(MachineState.initial(self.program, self.arch))

    # -- certification ------------------------------------------------------
    def _certify(self, tid: int, cfg: int, mem: int) -> CertificationResult:
        key = (tid, cfg, mem)
        result = self._certs.get(key)
        if result is not None:
            self._cert_hits += 1
            return result
        self._cert_misses += 1
        _stmt, ts = self._tcfgs.objects[cfg]
        result = certify_compiled(
            self.compiled,
            self._tcfg_sid[cfg],
            ts,
            self._mems.objects[mem],
            self.arch,
            tid,
            self.config.cert_fuel,
            self._mems,
            mem_id=mem,
            appends=self._appends,
        )
        self._certs[key] = result
        return result

    def certify_all(self, packed: Packed):
        """Certify every thread; returns (per-thread results, can-finish)."""
        stats = self.stats
        phase_start = time.perf_counter()
        mem = packed[-1]
        per_thread = []
        can_finish = []
        for tid in range(len(packed) - 1):
            cert = self._certify(tid, packed[tid], mem)
            if not cert.complete:
                stats.truncated = True
            per_thread.append(cert)
            can_finish.append(cert.can_complete)
        self.phases.add("certify", time.perf_counter() - phase_start)
        return per_thread, can_finish

    # -- promise-first exploration ------------------------------------------
    def promise_successors(self, packed: Packed, per_thread) -> list[Packed]:
        mem = packed[-1]
        out: list[Packed] = []
        for tid, cert in enumerate(per_thread):
            memo_key = (tid, packed[tid], mem)
            pairs = self._promise_steps.get(memo_key)
            if pairs is None:
                self._step_misses += 1
                sid = self._tcfg_sid[packed[tid]]
                stmt, ts = self._tcfgs.objects[packed[tid]]
                memory = self._mems.objects[mem]
                encoded = []
                for msg in cert.promises:
                    # promise_step normalises the (already normalised)
                    # statement, so the successor keeps this thread's sid.
                    step = promise_step(stmt, ts, memory, msg)
                    encoded.append(
                        (
                            self._encode_cfg(sid, step.tstate),
                            self._append_id(mem, msg, step.memory),
                        )
                    )
                pairs = tuple(encoded)
                self._promise_steps[memo_key] = pairs
            else:
                self._step_hits += 1
            if pairs:
                prefix = packed[:tid]
                suffix = packed[tid + 1 : -1]
                for new_cfg, new_mem in pairs:
                    out.append(prefix + (new_cfg,) + suffix + (new_mem,))
        return out

    def completion_sets(self, packed: Packed) -> Optional[list[set[tuple]]]:
        """Per-thread final register sets under this (final) memory."""
        per_thread = self._completion_id_sets(packed)
        if per_thread is None:
            return None
        objects = self._regs.objects
        return [{objects[i] for i in ids} for ids in per_thread]

    def _completion_id_sets(self, packed: Packed) -> Optional[list[tuple]]:
        """Per-thread completion sets as tuples of interned register ids.

        ``None`` when some thread has no completing execution (the
        candidate final memory is infeasible); the memo/enumeration
        discipline — and therefore the ``completion_memo_hits`` /
        enumeration counters — matches the object backend's
        ``completion_sets`` exactly.
        """
        stats = self.stats
        phase_start = time.perf_counter()
        mem = packed[-1]
        per_thread: list[tuple] = []
        feasible = True
        dedup = self.config.dedup
        for tid in range(len(packed) - 1):
            if dedup:
                memo_key = (tid, packed[tid], mem)
                ids = self._completions.get(memo_key)
                if ids is not None:
                    stats.completion_memo_hits += 1
                else:
                    ids = self._enumerate(tid, packed[tid], mem, dedup=True)
                    self._completions[memo_key] = ids
            else:
                ids = self._enumerate(tid, packed[tid], mem, dedup=False)
            if not ids:
                feasible = False
                break
            per_thread.append(ids)
        self.phases.add("enumerate", time.perf_counter() - phase_start)
        return per_thread if feasible else None

    def accumulate_outcomes(self, outcomes, packed: Packed) -> None:
        """Cross per-thread completion sets into the outcome set.

        The cross product runs entirely on interned ids: a combination is
        a tuple of register-file ids plus the final-values id of the
        memory, and only combinations never seen before materialise an
        :class:`~repro.outcomes.Outcome` (from the already-canonical
        frozen tuples, so no dict rebuild or re-sort).  Promise
        interleavings overwhelmingly reconverge on the same completion
        sets and final values, which makes this the difference between
        hundreds of thousands of object constructions and a few.
        """
        per_thread = self._completion_id_sets(packed)
        if per_thread is None:
            return
        mem = packed[-1]
        entry = self._final_mems.get(mem)
        if entry is None:
            items = tuple(
                sorted(self._mems.objects[mem].final_values().items())
            )
            fm_id = self._final_vals.setdefault(items, len(self._final_vals))
            entry = (fm_id, items)
            self._final_mems[mem] = entry
        fm_id, items = entry
        seen = self._outcome_seen
        objects = self._regs.objects
        for combo in product(*per_thread):
            key = combo + (fm_id,)
            if key not in seen:
                seen.add(key)
                outcomes.add(
                    Outcome(tuple(objects[i] for i in combo), items)
                )

    def _enumerate(self, tid: int, cfg: int, mem: int, dedup: bool) -> tuple:
        """Compiled run-to-completion enumeration of one thread.

        The packed counterpart of
        :func:`~repro.backend.object.enumerate_completions`: nodes are
        ``(stmt id, thread state)`` pairs expanded through the compiled
        candidate tables (non-promise steps only), deduplicated — when
        enabled — under ``(stmt id, packed regs)`` keys.  Node classes,
        expansion order and kernel counters match the object backend's
        enumeration exactly.  Returns the final register files as a
        sorted tuple of interned ids (decoded on demand by
        :meth:`completion_sets`).
        """
        sid = self._tcfg_sid[cfg]
        _stmt, ts = self._tcfgs.objects[cfg]
        memory = self._mems.objects[mem]
        compiled = self.compiled
        records = compiled.stmts
        registers = self._registers
        arch = self.arch
        results: set[tuple] = set()

        def expand(node):
            nsid, nts = node
            if records[nsid].terminated and not nts.prom:
                results.add(tuple(sorted(nts.register_values().items())))
                return []
            return [
                (succ_sid, step.tstate)
                for succ_sid, step in compiled.candidate_steps(
                    nsid, nts, memory, arch, tid, include_writes=False
                )
            ]

        key_fn = None
        if dedup:
            key_fn = lambda node: (node[0], node[1].pack(registers))  # noqa: E731
        kernel = SearchKernel(
            expand,
            strategy=DepthFirst(),
            max_states=self.config.max_states,
            key_fn=key_fn,
        )
        kernel.run([(sid, ts)])
        stats = self.stats
        stats.thread_enumeration_states += kernel.stats.states
        stats.thread_dedup_hits += kernel.stats.dedup_hits
        if kernel.stats.truncated:
            stats.truncated = True
        intern = self._regs.intern
        return tuple(sorted(intern(regs, regs) for regs in results))

    def final_memory(self, packed: Packed) -> dict:
        return self._mems.objects[packed[-1]].final_values()

    # -- naive (fully interleaved) exploration -------------------------------
    def successors(self, packed: Packed) -> list[Packed]:
        phase_start = time.perf_counter()
        mem = packed[-1]
        out: list[Packed] = []
        steps = self._steps
        for tid in range(len(packed) - 1):
            memo_key = (tid, packed[tid], mem)
            pairs = steps.get(memo_key)
            if pairs is None:
                self._step_misses += 1
                pairs = self._machine_steps(tid, packed[tid], mem)
                steps[memo_key] = pairs
            else:
                self._step_hits += 1
            if pairs:
                prefix = packed[:tid]
                suffix = packed[tid + 1 : -1]
                for new_cfg, new_mem in pairs:
                    out.append(prefix + (new_cfg,) + suffix + (new_mem,))
        self.phases.add("enumerate", time.perf_counter() - phase_start)
        return out

    def _machine_steps(self, tid: int, cfg: int, mem: int) -> tuple:
        """Certified steps of one thread config, in machine-step order."""
        sid = self._tcfg_sid[cfg]
        stmt, ts = self._tcfgs.objects[cfg]
        memory = self._mems.objects[mem]
        pairs = []
        for succ_sid, step in self.compiled.candidate_steps(
            sid, ts, memory, self.arch, tid
        ):
            step_cfg = self._encode_cfg(succ_sid, step.tstate)
            if step.memory is memory:
                step_mem = mem
            else:
                step_mem = self._encode_memory(step.memory)
            if self._certify(tid, step_cfg, step_mem).certified:
                pairs.append((step_cfg, step_mem))
        cert = self._certify(tid, cfg, mem)
        for msg in sorted(cert.promises, key=lambda m: (m.loc, m.val)):
            step = promise_step(stmt, ts, memory, msg)
            pairs.append(
                (
                    self._encode_cfg(sid, step.tstate),
                    self._append_id(mem, msg, step.memory),
                )
            )
        return tuple(pairs)

    def is_final(self, packed: Packed) -> bool:
        final = self._tcfg_final
        return all(final[i] for i in packed[:-1])

    def has_outstanding_promises(self, packed: Packed) -> bool:
        prom = self._tcfg_prom
        return any(prom[i] for i in packed[:-1])

    def outcome(self, packed: Packed):
        return self.decode(packed).outcome()

    # -- accounting ----------------------------------------------------------
    def finalise(self, stats, model: str) -> None:
        """Fold the id-table, cert and memo counters into stats; flush phases."""
        stats.interned_keys = self._tcfgs.unique + self._mems.unique
        stats.intern_hits = self._tcfgs.hits + self._mems.hits
        stats.cert_calls += self._cert_hits + self._cert_misses
        stats.cert_memo_hits += self._cert_hits
        stats.step_memo_hits += self._step_hits
        stats.step_memo_misses += self._step_misses
        self.phases.flush(EXPLORE_PHASE_SECONDS, model=model)


class PackedFlatBackend:
    """Flat-model backend with a packed window/restart/reservation state.

    A Flat thread's enabled transitions depend only on that thread and
    the versioned storage — threads interact exclusively through
    storage — so the packed representation mirrors the promising one:

    * threads intern to dense ids under a packed key (committed regs,
      window entries coded as ``(stmt id, alt-continuation id,
      speculated direction, done, value, success)`` tuples, continuation
      id, reservation), with the first-seen :class:`FlatThread` kept as
      the canonical decoded form;
    * storages intern to dense ids; a state is the flat int tuple
      ``(thread_0, …, thread_{T-1}, storage)`` and ``key()`` is the
      identity;
    * the per-thread labelled transition relation (injected from
      :mod:`repro.flat.explorer` as ``thread_transitions_fn``) runs once
      per distinct ``(thread, storage)`` pair and is replayed from an
      integer memo table — including its restart labels, so the restart
      counter matches the object backend on every visit;
    * storage writes memoise per ``(storage, loc, value)`` (the version
      bump is deterministic).

    Transition order is preserved exactly (threads in index order; per
    thread: fetch, then window entries in order), so seeded ``sample``
    runs walk the same traces as the object backend.
    """

    name = "packed"

    def __init__(
        self, program, config, stats, successors_fn, thread_transitions_fn
    ) -> None:
        self.program = program
        self.config = config
        self.stats = stats
        self._successors_fn = successors_fn
        self._thread_transitions = thread_transitions_fn
        #: Continuation/window statements -> dense ids (thread-key coding).
        self._stmt_ids: dict = {}
        #: packed thread key -> dense id; objects are FlatThread instances.
        self._threads = IdInterner()
        self._thread_final: list[bool] = []
        #: storage tuple -> dense id; objects are the storage tuples.
        self._storages = IdInterner()
        #: (thread id, storage id) -> ((label, new thread id, new storage id), ...)
        self._steps: dict[tuple, tuple] = {}
        #: (storage id, loc, value) -> written storage id.
        self._writes: dict[tuple, int] = {}
        self._step_hits = 0
        self._step_misses = 0
        self._initial: Optional[tuple] = None
        self._state_cls = None
        self.phases = PhaseAccumulator()

    # -- encoding ----------------------------------------------------------
    def _stmt_id(self, stmt) -> int:
        sid = self._stmt_ids.get(stmt)
        if sid is None:
            sid = len(self._stmt_ids)
            self._stmt_ids[stmt] = sid
        return sid

    def _encode_thread(self, thread) -> int:
        stmt_id = self._stmt_id
        key = (
            thread.regs,
            tuple(
                (
                    stmt_id(entry.stmt),
                    -1
                    if entry.alt_continuation is None
                    else stmt_id(entry.alt_continuation),
                    entry.speculated_taken,
                    entry.done,
                    entry.value,
                    entry.success,
                )
                for entry in thread.window
            ),
            stmt_id(thread.continuation),
            thread.reservation,
        )
        table = self._threads
        before = len(table)
        nid = table.intern(key, thread)
        if len(table) != before:
            self._thread_final.append(thread.finished)
        return nid

    def _encode_storage(self, storage: tuple) -> int:
        return self._storages.intern(storage, storage)

    def encode(self, state) -> Packed:
        if self._initial is None:
            self._initial = state.initial
            self._state_cls = type(state)
        return tuple(
            self._encode_thread(t) for t in state.threads
        ) + (self._encode_storage(state.storage),)

    def decode(self, packed: Packed):
        objs = self._threads.objects
        return self._state_cls(
            tuple(objs[i] for i in packed[:-1]),
            self._storages.objects[packed[-1]],
            self._initial,
        )

    def key(self, packed: Packed) -> Packed:
        return packed

    def initial(self) -> Packed:
        from ..flat.machine import initial_state

        return self.encode(initial_state(self.program, self.config.arch))

    # -- transitions --------------------------------------------------------
    def successors(self, packed: Packed) -> list[Packed]:
        phase_start = time.perf_counter()
        storage = packed[-1]
        out: list[Packed] = []
        steps = self._steps
        stats = self.stats
        for tid in range(len(packed) - 1):
            memo_key = (packed[tid], storage)
            triples = steps.get(memo_key)
            if triples is None:
                self._step_misses += 1
                triples = self._expand_thread(packed[tid], storage)
                steps[memo_key] = triples
            else:
                self._step_hits += 1
            if triples:
                prefix = packed[:tid]
                suffix = packed[tid + 1 : -1]
                for label, new_thread, new_storage in triples:
                    if label == "restart":
                        stats.restarts += 1
                    out.append(prefix + (new_thread,) + suffix + (new_storage,))
        self.phases.add("enumerate", time.perf_counter() - phase_start)
        return out

    def _expand_thread(self, thread_id: int, storage_id: int) -> tuple:
        """Reference transitions of one (thread, storage) pair, encoded."""
        thread = self._threads.objects[thread_id]
        storage = self._storages.objects[storage_id]
        # Thread transitions consult the state for storage values and
        # versions only, so a thread-less skeleton state suffices.
        state = self._state_cls((), storage, self._initial)
        triples = []
        for label, new_thread, write in self._thread_transitions(
            thread, state, self.config
        ):
            new_tid = self._encode_thread(new_thread)
            if write is None:
                new_sid = storage_id
            else:
                wkey = (storage_id, write[0], write[1])
                new_sid = self._writes.get(wkey)
                if new_sid is None:
                    new_sid = self._encode_storage(
                        state.with_write(write[0], write[1]).storage
                    )
                    self._writes[wkey] = new_sid
            triples.append((label, new_tid, new_sid))
        return tuple(triples)

    # -- queries -------------------------------------------------------------
    def is_final(self, packed: Packed) -> bool:
        final = self._thread_final
        return all(final[i] for i in packed[:-1])

    def outcome(self, packed: Packed):
        return self.decode(packed).outcome()

    # -- accounting ----------------------------------------------------------
    def finalise(self, stats, model: str) -> None:
        """Fold the id-table and memo counters into stats; flush phases."""
        stats.interned_keys = self._threads.unique + self._storages.unique
        stats.intern_hits = self._threads.hits + self._storages.hits
        stats.step_memo_hits += self._step_hits
        stats.step_memo_misses += self._step_misses
        self.phases.flush(EXPLORE_PHASE_SECONDS, model=model)


__all__ = ["Packed", "PackedFlatBackend", "PackedPromisingBackend"]
