"""The ``packed`` execution backend: compiled programs, integer states.

The object backend spends its time re-deriving structure from dataclass
graphs on every visit: statements are decomposed per step enumeration,
state snapshots are deep tuples whose hashes walk every register and
message on every visited-set or memo probe, and a thread configuration
recurring across interleavings is re-certified (or at best re-hashed)
each time.  This backend removes all of that:

* the program is compiled once per job (:mod:`repro.isa.compile`),
  giving every reachable statement a dense id and precomputing its head
  kind, register dependencies and static successors;
* thread configurations ``(statement, thread state)`` and memories are
  interned to dense integer ids (:class:`~repro.promising.intern.IdInterner`),
  with the first-seen objects kept as the canonical decoded forms;
* a machine state is the flat tuple ``(tcfg_0, …, tcfg_{T-1}, mem)`` of
  those ids — ``cache_key()`` degenerates to the identity function and
  every visited/memo table keys on small immutable int tuples;
* dynamic behaviour still comes from the *reference* step functions
  (:mod:`repro.promising.steps`) — run once per distinct ``(thread,
  thread-config, memory)`` triple, encoded, and replayed from integer
  memo tables on every later visit.  Because the naive explorer visits
  the same thread configuration across every interleaving of the other
  threads, this turns its per-state cost from step-enumeration +
  certification into T dict probes and tuple splices.

Successor *order* is preserved exactly (candidates before promises,
promises sorted by location/value, as in
:func:`~repro.promising.machine.machine_transitions`), so even seeded
``sample`` runs walk the same traces as the object backend.
"""

from __future__ import annotations

import time
from typing import Optional

from ..isa.compile import CompiledProgram, compile_program
from ..lang.program import Program
from ..obs.tracing import PhaseAccumulator
from ..promising.certification import CertificationCache
from ..promising.intern import IdInterner
from ..promising.machine import MachineState, Thread, thread_candidate_steps
from ..promising.steps import promise_step
from .base import EXPLORE_PHASE_SECONDS
from .object import ObjectFlatBackend, enumerate_completions

#: Packed machine state: thread-config ids then the memory id.
Packed = tuple


class PackedPromisingBackend:
    """Promising-model backend over compiled programs and id tuples."""

    name = "packed"

    def __init__(self, program: Program, config, stats) -> None:
        self.program = program
        self.config = config
        self.arch = config.arch
        self.stats = stats
        self.compiled: CompiledProgram = compile_program(program)
        self._registers = self.compiled.registers
        #: (stmt id, packed tstate) -> dense id; objects are the
        #: canonical decoded ``(stmt, tstate)`` pairs.
        self._tcfgs = IdInterner()
        #: Per-tcfg flags, parallel to ``self._tcfgs.objects``.
        self._tcfg_final: list[bool] = []
        self._tcfg_prom: list[bool] = []
        #: messages tuple -> dense id; objects are the Memory instances.
        self._mems = IdInterner()
        #: Certification memo keyed by small ``(tid, tcfg, mem)`` tuples.
        #: Always on: memoisation is what the packed representation *is*
        #: (``cert_memo=False`` remains an object-backend ablation).
        self.cert_cache = CertificationCache(config.arch, config.cert_fuel)
        self._steps: dict[tuple, tuple] = {}
        self._promise_steps: dict[tuple, tuple] = {}
        self._completions: dict[tuple, set[tuple]] = {}
        self.phases = PhaseAccumulator()

    # -- encoding ----------------------------------------------------------
    def _encode_thread(self, stmt, ts) -> int:
        sid = self.compiled.stmt_id(stmt)
        key = (sid, ts.pack(self._registers))
        table = self._tcfgs
        before = len(table)
        nid = table.intern(key, (stmt, ts))
        if len(table) != before:
            self._tcfg_final.append(
                self.compiled.record(sid).terminated and not ts.prom
            )
            self._tcfg_prom.append(bool(ts.prom))
        return nid

    def _encode_memory(self, memory) -> int:
        return self._mems.intern(memory.cache_key(), memory)

    def encode(self, state: MachineState) -> Packed:
        encode_thread = self._encode_thread
        return tuple(
            encode_thread(t.stmt, t.tstate) for t in state.threads
        ) + (self._encode_memory(state.memory),)

    def decode(self, packed: Packed) -> MachineState:
        objs = self._tcfgs.objects
        threads = tuple(Thread(*objs[i]) for i in packed[:-1])
        return MachineState(threads, self._mems.objects[packed[-1]], self.arch)

    def key(self, packed: Packed) -> Packed:
        return packed

    def initial(self) -> Packed:
        return self.encode(MachineState.initial(self.program, self.arch))

    # -- certification ------------------------------------------------------
    def _certify(self, tid: int, cfg: int, mem: int):
        stmt, ts = self._tcfgs.objects[cfg]
        return self.cert_cache.certify_keyed(
            (tid, cfg, mem), stmt, ts, self._mems.objects[mem], tid
        )

    def certify_all(self, packed: Packed):
        """Certify every thread; returns (per-thread results, can-finish)."""
        stats = self.stats
        phase_start = time.perf_counter()
        mem = packed[-1]
        per_thread = []
        can_finish = []
        for tid in range(len(packed) - 1):
            cert = self._certify(tid, packed[tid], mem)
            if not cert.complete:
                stats.truncated = True
            per_thread.append(cert)
            can_finish.append(cert.can_complete)
        self.phases.add("certify", time.perf_counter() - phase_start)
        return per_thread, can_finish

    # -- promise-first exploration ------------------------------------------
    def promise_successors(self, packed: Packed, per_thread) -> list[Packed]:
        mem = packed[-1]
        out: list[Packed] = []
        for tid, cert in enumerate(per_thread):
            memo_key = (tid, packed[tid], mem)
            pairs = self._promise_steps.get(memo_key)
            if pairs is None:
                stmt, ts = self._tcfgs.objects[packed[tid]]
                memory = self._mems.objects[mem]
                pairs = tuple(
                    (
                        self._encode_thread(step.stmt, step.tstate),
                        self._encode_memory(step.memory),
                    )
                    for step in (
                        promise_step(stmt, ts, memory, msg)
                        for msg in cert.promises
                    )
                )
                self._promise_steps[memo_key] = pairs
            if pairs:
                prefix = packed[:tid]
                suffix = packed[tid + 1 : -1]
                for new_cfg, new_mem in pairs:
                    out.append(prefix + (new_cfg,) + suffix + (new_mem,))
        return out

    def completion_sets(self, packed: Packed) -> Optional[list[set[tuple]]]:
        """Per-thread final register sets under this (final) memory."""
        stats = self.stats
        phase_start = time.perf_counter()
        mem = packed[-1]
        thread_results: list[set[tuple]] = []
        feasible = True
        dedup = self.config.dedup
        for tid in range(len(packed) - 1):
            if dedup:
                memo_key = (tid, packed[tid], mem)
                regs = self._completions.get(memo_key)
                if regs is not None:
                    stats.completion_memo_hits += 1
                else:
                    regs = self._enumerate(tid, packed[tid], mem, dedup=True)
                    self._completions[memo_key] = regs
            else:
                regs = self._enumerate(tid, packed[tid], mem, dedup=False)
            if not regs:
                feasible = False
                break
            thread_results.append(regs)
        self.phases.add("enumerate", time.perf_counter() - phase_start)
        return thread_results if feasible else None

    def _enumerate(self, tid: int, cfg: int, mem: int, dedup: bool) -> set[tuple]:
        stmt, ts = self._tcfgs.objects[cfg]
        memory = self._mems.objects[mem]
        key_fn = None
        if dedup:
            compiled = self.compiled
            registers = self._registers
            key_fn = lambda node: (  # noqa: E731
                compiled.stmt_id(node[0]),
                node[1].pack(registers),
            )
        return enumerate_completions(
            stmt, ts, memory, self.arch, tid, self.stats,
            self.config.max_states, key_fn,
        )

    def final_memory(self, packed: Packed) -> dict:
        return self._mems.objects[packed[-1]].final_values()

    # -- naive (fully interleaved) exploration -------------------------------
    def successors(self, packed: Packed) -> list[Packed]:
        phase_start = time.perf_counter()
        mem = packed[-1]
        out: list[Packed] = []
        steps = self._steps
        for tid in range(len(packed) - 1):
            memo_key = (tid, packed[tid], mem)
            pairs = steps.get(memo_key)
            if pairs is None:
                pairs = self._machine_steps(tid, packed[tid], mem)
                steps[memo_key] = pairs
            if pairs:
                prefix = packed[:tid]
                suffix = packed[tid + 1 : -1]
                for new_cfg, new_mem in pairs:
                    out.append(prefix + (new_cfg,) + suffix + (new_mem,))
        self.phases.add("enumerate", time.perf_counter() - phase_start)
        return out

    def _machine_steps(self, tid: int, cfg: int, mem: int) -> tuple:
        """Certified steps of one thread config, in machine-step order."""
        stmt, ts = self._tcfgs.objects[cfg]
        memory = self._mems.objects[mem]
        pairs = []
        for step in thread_candidate_steps(Thread(stmt, ts), memory, self.arch, tid):
            step_cfg = self._encode_thread(step.stmt, step.tstate)
            step_mem = self._encode_memory(step.memory)
            cert = self.cert_cache.certify_keyed(
                (tid, step_cfg, step_mem), step.stmt, step.tstate, step.memory, tid
            )
            if cert.certified:
                pairs.append((step_cfg, step_mem))
        cert = self._certify(tid, cfg, mem)
        for msg in sorted(cert.promises, key=lambda m: (m.loc, m.val)):
            step = promise_step(stmt, ts, memory, msg)
            pairs.append(
                (
                    self._encode_thread(step.stmt, step.tstate),
                    self._encode_memory(step.memory),
                )
            )
        return tuple(pairs)

    def is_final(self, packed: Packed) -> bool:
        final = self._tcfg_final
        return all(final[i] for i in packed[:-1])

    def has_outstanding_promises(self, packed: Packed) -> bool:
        prom = self._tcfg_prom
        return any(prom[i] for i in packed[:-1])

    def outcome(self, packed: Packed):
        return self.decode(packed).outcome()

    # -- accounting ----------------------------------------------------------
    def finalise(self, stats, model: str) -> None:
        """Fold the id-table and cert counters into stats; flush phases."""
        stats.interned_keys = self._tcfgs.unique + self._mems.unique
        stats.intern_hits = self._tcfgs.hits + self._mems.hits
        stats.cert_calls += self.cert_cache.calls
        stats.cert_memo_hits += self.cert_cache.hits
        self.phases.flush(EXPLORE_PHASE_SECONDS, model=model)


class PackedFlatBackend(ObjectFlatBackend):
    """Flat-model backend with interned dense-id states.

    Flat states have no recurring thread-config × memory structure to
    memoise (the window and storage evolve together), so this backend
    keeps the object enumeration and packs only the *identity*: states
    intern to dense ids, the visited set holds ints, and ``key`` is the
    identity function.  Full packing of the flat window is a ROADMAP
    follow-up behind this same seam.
    """

    name = "packed"

    def __init__(self, program, config, stats, successors_fn) -> None:
        super().__init__(program, config, stats, successors_fn)
        self._states = IdInterner()

    def encode(self, state) -> int:
        return self._states.intern(state.cache_key(), state)

    def decode(self, packed: int):
        return self._states.objects[packed]

    def key(self, packed: int) -> int:
        return packed

    def is_final(self, packed: int) -> bool:
        return self._states.objects[packed].is_final

    def outcome(self, packed: int):
        return self._states.objects[packed].outcome()

    def successors(self, packed: int) -> list:
        encode = self.encode
        return [
            encode(succ)
            for succ in super().successors(self._states.objects[packed])
        ]


__all__ = ["Packed", "PackedFlatBackend", "PackedPromisingBackend"]
