"""Distributed exploration: leased work queues, fleet workers, coordinator.

The litmus-job sweep is embarrassingly parallel; this package removes the
single-machine ceiling.  A :class:`~repro.distrib.backend.WorkBackend` is
the shared lease ledger (in-memory for tests, SQLite across processes and
machines), :func:`~repro.distrib.worker.run_worker` is the stateless
fleet member, and :func:`~repro.distrib.coordinator.run_distributed` is
the batch driver that sweep/fuzz route through under ``--distributed`` —
producing reports bit-identical to the single-pool path.
"""

from .backend import (
    DEFAULT_MAX_ATTEMPTS,
    Claim,
    ItemView,
    MemoryBackend,
    WorkBackend,
    WorkerInfo,
    open_backend,
)
from .coordinator import DistribConfig, DistribRun, run_distributed
from .http_backend import HttpWorkBackend, QueueHttpApi
from .sqlite import SqliteBackend
from .worker import DEFAULT_LEASE_SECONDS, WorkerStats, run_worker

__all__ = [
    "Claim",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "DistribConfig",
    "DistribRun",
    "HttpWorkBackend",
    "ItemView",
    "MemoryBackend",
    "QueueHttpApi",
    "SqliteBackend",
    "WorkBackend",
    "WorkerInfo",
    "WorkerStats",
    "open_backend",
    "run_distributed",
    "run_worker",
]
