"""Pluggable leased work-queue backends.

A :class:`WorkBackend` is the shared ledger a fleet of stateless workers
coordinates through: the coordinator enqueues fingerprinted work items,
workers *claim* one item at a time under a lease, extend the lease from
their heartbeat while the job runs, and *complete* (or *fail*) it when
done.  A worker that dies mid-job simply stops extending its lease; once
the lease expires, :meth:`WorkBackend.requeue_expired` returns the item
to the pending pool and another worker picks it up.

Completion is exactly-once by construction: every claim carries a
monotonically increasing *token*, and ``complete``/``fail``/``extend``
only succeed for the worker currently holding the item under that token.
A reclaimed item re-claimed by anyone — including the original worker —
gets a fresh token, so a zombie's late ``complete`` is always rejected.

Two implementations ship here and in :mod:`repro.distrib.sqlite`:

* :class:`MemoryBackend` — in-process, for unit tests and the law suite;
* :class:`~repro.distrib.sqlite.SqliteBackend` — one SQLite file in WAL
  mode, safe across processes and across machines on a shared
  filesystem (the litmus7-style "farm the battery over the lab" shape).

Both are driven through the same :func:`open_backend` URL scheme:
``memory://<name>`` and ``sqlite:///path/to/queue.db`` (a bare
filesystem path also means SQLite).  A third implementation,
:class:`~repro.distrib.http_backend.HttpWorkBackend`, speaks the same
protocol to a ``promising-arm serve`` instance over ``http://host:port``
— a fleet with no shared filesystem at all.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Protocol, Union, runtime_checkable

from ..obs import metrics

#: Lifecycle of a work item.
STATUS_PENDING = "pending"
STATUS_LEASED = "leased"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
ITEM_STATUSES = (STATUS_PENDING, STATUS_LEASED, STATUS_DONE, STATUS_FAILED)

#: Claims a single item may consume (initial execution + reclaims) before
#: the backend marks it failed instead of requeueing it again.
DEFAULT_MAX_ATTEMPTS = 5

QUEUE_ENQUEUED = metrics.counter(
    "distrib_enqueued_total", "Work items enqueued onto a distributed backend."
)
QUEUE_CLAIMS = metrics.counter(
    "distrib_leases_claimed_total", "Leases granted to workers by a distributed backend."
)
QUEUE_COMPLETED = metrics.counter(
    "distrib_completed_total",
    "Work items completed on a distributed backend, by serving mode.",
    labels=("mode",),
)
QUEUE_RECLAIMS = metrics.counter(
    "distrib_lease_reclaims_total",
    "Expired leases requeued after their worker stopped heartbeating.",
)
QUEUE_FAILED = metrics.counter("distrib_failed_total", "Work items marked terminally failed.")
QUEUE_DEPTH = metrics.gauge(
    "distrib_queue_depth", "Pending + leased items on the most recently polled backend."
)


@dataclass(frozen=True)
class Claim:
    """One granted lease: the item, its payload, and the fencing token."""

    item_id: str
    payload: bytes
    token: int
    attempts: int
    enqueued_at: float


@dataclass(frozen=True)
class ItemView:
    """Read-only snapshot of one work item (coordinator polling)."""

    item_id: str
    status: str
    worker: Optional[str]
    attempts: int
    result: Optional[bytes]
    error: str
    served_from: str = ""


@dataclass(frozen=True)
class WorkerInfo:
    """Registration row of one fleet worker."""

    worker_id: str
    registered_at: float
    heartbeat_at: float
    jobs_done: int
    meta: Mapping = field(default_factory=dict)


@runtime_checkable
class WorkBackend(Protocol):
    """The lease ledger every queue implementation must provide.

    All mutating calls are atomic with respect to concurrent claimants;
    ``claim``/``extend``/``complete``/``fail`` implement the fencing-token
    laws exercised by ``tests/test_distrib.py`` identically across
    implementations.
    """

    def enqueue(self, item_id: str, payload: bytes) -> bool:
        """Add an item; ``False`` if ``item_id`` is already present (dedup)."""
        ...

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Claim]:
        """Atomically lease the oldest pending item, or ``None`` if idle."""
        ...

    def extend(self, item_id: str, worker_id: str, token: int, lease_seconds: float) -> bool:
        """Prolong a held lease (heartbeat); ``False`` if no longer held."""
        ...

    def complete(
        self, item_id: str, worker_id: str, token: int, result: bytes, *, mode: str = "computed"
    ) -> bool:
        """Finish a held item exactly once; ``False`` if the lease was lost."""
        ...

    def fail(
        self, item_id: str, worker_id: str, token: int, error: str, *, requeue: bool = True
    ) -> bool:
        """Record a failure; requeues while attempts remain, else fails it."""
        ...

    def requeue_expired(self) -> list[str]:
        """Return expired leases to the pending pool (stale-worker reclaim)."""
        ...

    def counts(self) -> dict[str, int]:
        """Item counts by status (every status present, zero included)."""
        ...

    def collect(self, item_ids: Iterable[str]) -> dict[str, ItemView]:
        """Terminal (done/failed) snapshots for the requested ids."""
        ...

    def register_worker(self, worker_id: str, meta: Optional[Mapping] = None) -> None: ...

    def heartbeat(self, worker_id: str) -> None: ...

    def workers(self) -> list[WorkerInfo]: ...

    def close(self) -> None: ...


class MemoryBackend:
    """In-process reference implementation of the lease ledger.

    Thread-safe (one lock around the ledger) so concurrent-claimant laws
    can be tested without a filesystem; naturally process-local, which is
    exactly what unit tests want and fleet deployments must not use.
    """

    def __init__(
        self,
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.max_attempts = max_attempts
        self.clock = clock
        self._lock = threading.Lock()
        self._items: dict[str, dict] = {}
        self._order: list[str] = []
        self._workers: dict[str, dict] = {}

    # -- queue ---------------------------------------------------------------
    def enqueue(self, item_id: str, payload: bytes) -> bool:
        with self._lock:
            if item_id in self._items:
                return False
            self._items[item_id] = {
                "payload": bytes(payload),
                "status": STATUS_PENDING,
                "worker": None,
                "token": 0,
                "attempts": 0,
                "enqueued_at": self.clock(),
                "lease_expires": None,
                "result": None,
                "error": "",
                "served_from": "",
            }
            self._order.append(item_id)
        QUEUE_ENQUEUED.inc()
        return True

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Claim]:
        with self._lock:
            for item_id in self._order:
                item = self._items[item_id]
                if item["status"] != STATUS_PENDING:
                    continue
                item["status"] = STATUS_LEASED
                item["worker"] = worker_id
                item["token"] += 1
                item["attempts"] += 1
                item["lease_expires"] = self.clock() + lease_seconds
                QUEUE_CLAIMS.inc()
                return Claim(
                    item_id=item_id,
                    payload=item["payload"],
                    token=item["token"],
                    attempts=item["attempts"],
                    enqueued_at=item["enqueued_at"],
                )
        return None

    def _held(self, item_id: str, worker_id: str, token: int) -> Optional[dict]:
        item = self._items.get(item_id)
        if (
            item is None
            or item["status"] != STATUS_LEASED
            or item["worker"] != worker_id
            or item["token"] != token
        ):
            return None
        return item

    def extend(self, item_id: str, worker_id: str, token: int, lease_seconds: float) -> bool:
        with self._lock:
            item = self._held(item_id, worker_id, token)
            if item is None:
                return False
            item["lease_expires"] = self.clock() + lease_seconds
            return True

    def complete(
        self, item_id: str, worker_id: str, token: int, result: bytes, *, mode: str = "computed"
    ) -> bool:
        with self._lock:
            item = self._held(item_id, worker_id, token)
            if item is None:
                return False
            item["status"] = STATUS_DONE
            item["result"] = bytes(result)
            item["served_from"] = mode
            item["lease_expires"] = None
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker["jobs_done"] += 1
        QUEUE_COMPLETED.inc(mode=mode)
        return True

    def fail(
        self, item_id: str, worker_id: str, token: int, error: str, *, requeue: bool = True
    ) -> bool:
        with self._lock:
            item = self._held(item_id, worker_id, token)
            if item is None:
                return False
            self._fail_locked(item, error, requeue=requeue)
            return True

    def _fail_locked(self, item: dict, error: str, *, requeue: bool) -> None:
        if requeue and item["attempts"] < self.max_attempts:
            item["status"] = STATUS_PENDING
            item["worker"] = None
            item["lease_expires"] = None
            item["error"] = error
        else:
            item["status"] = STATUS_FAILED
            item["lease_expires"] = None
            item["error"] = error
            QUEUE_FAILED.inc()

    def requeue_expired(self) -> list[str]:
        now = self.clock()
        reclaimed: list[str] = []
        with self._lock:
            for item_id in self._order:
                item = self._items[item_id]
                if item["status"] != STATUS_LEASED:
                    continue
                expires = item["lease_expires"]
                if expires is not None and expires < now:
                    self._fail_locked(
                        item,
                        f"lease expired after attempt {item['attempts']} "
                        f"(worker {item['worker']})",
                        requeue=True,
                    )
                    reclaimed.append(item_id)
        if reclaimed:
            QUEUE_RECLAIMS.inc(len(reclaimed))
        return reclaimed

    # -- introspection -------------------------------------------------------
    def counts(self) -> dict[str, int]:
        out = {status: 0 for status in ITEM_STATUSES}
        with self._lock:
            for item in self._items.values():
                out[item["status"]] += 1
        return out

    def collect(self, item_ids: Iterable[str]) -> dict[str, ItemView]:
        out: dict[str, ItemView] = {}
        with self._lock:
            for item_id in item_ids:
                item = self._items.get(item_id)
                if item is None or item["status"] not in (STATUS_DONE, STATUS_FAILED):
                    continue
                out[item_id] = ItemView(
                    item_id=item_id,
                    status=item["status"],
                    worker=item["worker"],
                    attempts=item["attempts"],
                    result=item["result"],
                    error=item["error"],
                    served_from=item["served_from"],
                )
        return out

    # -- workers -------------------------------------------------------------
    def register_worker(self, worker_id: str, meta: Optional[Mapping] = None) -> None:
        now = self.clock()
        with self._lock:
            self._workers[worker_id] = {
                "registered_at": now,
                "heartbeat_at": now,
                "jobs_done": self._workers.get(worker_id, {}).get("jobs_done", 0),
                "meta": dict(meta or {}),
            }

    def heartbeat(self, worker_id: str) -> None:
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker["heartbeat_at"] = self.clock()

    def workers(self) -> list[WorkerInfo]:
        with self._lock:
            return [
                WorkerInfo(
                    worker_id=worker_id,
                    registered_at=row["registered_at"],
                    heartbeat_at=row["heartbeat_at"],
                    jobs_done=row["jobs_done"],
                    meta=dict(row["meta"]),
                )
                for worker_id, row in sorted(self._workers.items())
            ]

    def close(self) -> None:  # symmetric with SqliteBackend
        pass


#: Named in-process queues, so ``open_backend("memory://x")`` hands every
#: caller in the process the same ledger (what a unit test wants).
_MEMORY_BACKENDS: dict[str, MemoryBackend] = {}
_MEMORY_LOCK = threading.Lock()


def open_backend(url: Union[str, WorkBackend]) -> WorkBackend:
    """Coerce a ``--backend-url`` argument into a live :class:`WorkBackend`.

    * ``memory://<name>`` — shared in-process queue (tests only);
    * ``sqlite:///path/to/queue.db`` — SQLite ledger on a path;
    * ``http://host:port`` — the queue a ``promising-arm serve`` instance
      mounts at ``/v1/queue/*`` (fleets with no shared filesystem);
    * any other string — treated as a filesystem path for SQLite.
    """
    if not isinstance(url, str):
        return url
    if url.startswith("http://"):
        from .http_backend import HttpWorkBackend

        return HttpWorkBackend(url)
    if url.startswith("memory://"):
        name = url[len("memory://") :] or "default"
        with _MEMORY_LOCK:
            backend = _MEMORY_BACKENDS.get(name)
            if backend is None:
                backend = _MEMORY_BACKENDS[name] = MemoryBackend()
            return backend
    from .sqlite import SqliteBackend

    if url.startswith("sqlite://"):
        path = url[len("sqlite://") :]
        # Accept both sqlite:///abs/path (canonical) and sqlite://rel/path.
        if path.startswith("//"):
            path = path[1:]
        if not path:
            raise ValueError(f"backend url {url!r} has no database path")
        return SqliteBackend(path)
    if "://" in url:
        raise ValueError(
            f"unsupported backend url {url!r}; expected memory://<name>, "
            "sqlite:///path, http://host:port, or a filesystem path"
        )
    return SqliteBackend(url)


__all__ = [
    "Claim",
    "DEFAULT_MAX_ATTEMPTS",
    "ITEM_STATUSES",
    "ItemView",
    "MemoryBackend",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_LEASED",
    "STATUS_PENDING",
    "WorkBackend",
    "WorkerInfo",
    "open_backend",
]
