"""Coordinator: enqueue a batch onto a work backend and gather the fleet.

:func:`run_distributed` is the distributed twin of
:func:`repro.harness.scheduler.run_jobs` — same signature shape, same
result contract (results in submission order, cache hits recalled,
in-batch duplicates rebound, worker metrics deltas folded
deterministically), so sweep and fuzz reports built from either path are
bit-identical for the same corpus.

The coordinator plans the batch locally (cache hits and duplicates never
reach the queue), enqueues each remaining job under its content
fingerprint — which doubles as cross-run dedup on a shared queue — then
polls: expired leases from crashed workers are requeued, finished items
collected, and the queue-depth gauge refreshed.  It can spawn its own
local fleet (one process per worker, sharing the backend by URL) or
attach to an external one (``workers=0``), e.g. ``promising-arm work``
processes on other machines.
"""

from __future__ import annotations

import multiprocessing
import shutil
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from ..harness.cache import ResultCache, open_cache
from ..harness.jobs import Job, JobResult, STATUS_ERROR
from ..harness.scheduler import BatchStats, plan_batch, rebind_duplicates
from ..obs import metrics
from ..obs.logging import get_logger, log_event
from ..obs.tracing import span
from .backend import QUEUE_DEPTH, STATUS_DONE, WorkBackend, open_backend
from .worker import (
    DEFAULT_LEASE_SECONDS,
    MODE_COMPUTED,
    decode_result,
    encode_work,
    run_worker,
)

_log = get_logger("distrib.coordinator")


@dataclass
class DistribConfig:
    """How one distributed batch is coordinated.

    ``backend_url`` empty means an ephemeral SQLite queue in a temporary
    directory (created and removed by the run) — the zero-setup local
    fleet.  ``workers=0`` spawns nothing and relies on an external fleet
    already pointed at the same backend.
    """

    backend_url: Union[str, WorkBackend] = ""
    workers: int = 2
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    poll_seconds: float = 0.05
    #: Abort if no item completes for this long (None = wait forever).
    #: Only meaningful with an external fleet; a spawned fleet that dies
    #: is detected directly.
    stall_timeout: Optional[float] = None


@dataclass
class DistribRun:
    """Results plus the fleet/queue accounting for one distributed batch."""

    results: list[JobResult]
    info: dict = field(default_factory=dict)


def _process_worker_main(
    backend_url: str,
    cache_path: Optional[str],
    worker_id: str,
    lease_seconds: float,
    poll_seconds: float,
) -> None:
    run_worker(
        backend_url,
        cache_path,
        worker_id=worker_id,
        lease_seconds=lease_seconds,
        poll_seconds=poll_seconds,
    )


def _spawn_context() -> multiprocessing.context.BaseContext:
    # Mirror the resident pool: fork where it is safe (Linux), platform
    # default elsewhere — everything shipped to a worker is picklable.
    use_fork = sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if use_fork else None)


class _Fleet:
    """Locally spawned workers (processes for URL backends, threads for
    in-process ones) with one teardown path.

    Worker processes are daemonic *and* explicitly terminated in
    :meth:`stop`, so neither a clean return nor a coordinator Ctrl-C
    leaves orphaned children behind.
    """

    def __init__(self) -> None:
        self.processes: list[multiprocessing.process.BaseProcess] = []
        self.threads: list[threading.Thread] = []
        self.stop_event = threading.Event()

    def spawn(
        self,
        count: int,
        backend: WorkBackend,
        backend_url: Union[str, WorkBackend],
        cache: Optional[ResultCache],
        config: DistribConfig,
    ) -> None:
        in_process = not isinstance(backend_url, str) or backend_url.startswith("memory://")
        if in_process:
            # An in-process ledger cannot cross a process boundary; run the
            # fleet as threads instead (SIGALRM deadlines do not fire off
            # the main thread, which in-process tests accept).
            for index in range(count):
                thread = threading.Thread(
                    target=run_worker,
                    args=(backend, cache),
                    kwargs={
                        "worker_id": f"thread-{index}",
                        "lease_seconds": config.lease_seconds,
                        "poll_seconds": config.poll_seconds,
                        "stop_event": self.stop_event,
                    },
                    name=f"distrib-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self.threads.append(thread)
            return
        ctx = _spawn_context()
        cache_path = str(cache.path) if cache is not None else None
        for index in range(count):
            process = ctx.Process(
                target=_process_worker_main,
                args=(
                    backend_url,
                    cache_path,
                    f"fleet-{index}",
                    config.lease_seconds,
                    config.poll_seconds,
                ),
                name=f"distrib-worker-{index}",
                daemon=True,
            )
            process.start()
            self.processes.append(process)

    @property
    def spawned(self) -> int:
        return len(self.processes) + len(self.threads)

    def any_alive(self) -> bool:
        return any(p.is_alive() for p in self.processes) or any(
            t.is_alive() for t in self.threads
        )

    def stop(self) -> None:
        self.stop_event.set()
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for thread in self.threads:
            thread.join(timeout=10.0)


def _error_result(job: Job, error: str) -> JobResult:
    return JobResult(
        name=job.test.name,
        model=job.model,
        arch=job.arch,
        status=STATUS_ERROR,
        outcomes=None,
        verdict=None,
        expected=job.test.expected_verdict(job.arch),
        elapsed_seconds=0.0,
        error=error,
        fingerprint=job.fingerprint(),
    )


def run_distributed(
    jobs: Sequence[Job],
    *,
    config: Optional[DistribConfig] = None,
    timeout: Optional[float] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    stats: Optional[BatchStats] = None,
) -> DistribRun:
    """Execute ``jobs`` through a work backend; results in submission order."""
    config = config or DistribConfig()
    cache = open_cache(cache)
    ephemeral: Optional[str] = None
    backend_url = config.backend_url
    if not backend_url:
        ephemeral = tempfile.mkdtemp(prefix="promising-distrib-")
        backend_url = str(Path(ephemeral) / "queue.db")
    backend = open_backend(backend_url)

    results, pending, duplicate_of = plan_batch(jobs, cache)
    item_of: dict[int, str] = {index: jobs[index].fingerprint() for index in pending}
    fleet = _Fleet()
    reclaims: list[str] = []
    enqueued_new = 0
    try:
        with span("distrib", jobs=len(jobs), pending=len(pending), workers=config.workers):
            for index in pending:
                if backend.enqueue(item_of[index], encode_work(jobs[index], timeout)):
                    enqueued_new += 1
            log_event(
                _log,
                "batch enqueued",
                n_jobs=len(jobs),
                pending=len(pending),
                enqueued=enqueued_new,
                cache_hits=len(jobs) - len(pending) - len(duplicate_of),
                duplicates=len(duplicate_of),
                workers=config.workers,
            )
            if config.workers > 0 and pending:
                fleet.spawn(config.workers, backend, backend_url, cache, config)

            outstanding = set(item_of.values())
            collected: dict[str, object] = {}
            last_progress = time.monotonic()
            while outstanding:
                reclaimed = backend.requeue_expired()
                if reclaimed:
                    reclaims.extend(reclaimed)
                    log_event(_log, "leases reclaimed", items=len(reclaimed))
                views = backend.collect(outstanding)
                counts = backend.counts()
                QUEUE_DEPTH.set(counts["pending"] + counts["leased"])
                if views:
                    collected.update(views)
                    outstanding -= views.keys()
                    last_progress = time.monotonic()
                    continue
                if fleet.spawned and not fleet.any_alive():
                    raise RuntimeError(
                        f"distributed fleet exited with {len(outstanding)} item(s) "
                        "outstanding"
                    )
                if (
                    config.stall_timeout is not None
                    and time.monotonic() - last_progress > config.stall_timeout
                ):
                    raise TimeoutError(
                        f"no distributed progress for {config.stall_timeout}s with "
                        f"{len(outstanding)} item(s) outstanding"
                    )
                time.sleep(config.poll_seconds)
    finally:
        fleet.stop()
        worker_rows = [
            {"worker_id": w.worker_id, "jobs_done": w.jobs_done} for w in backend.workers()
        ]
        backend.close()
        if ephemeral is not None:
            shutil.rmtree(ephemeral, ignore_errors=True)

    computed = cache_served = failed = 0
    for index in pending:
        view = collected[item_of[index]]
        if view.status == STATUS_DONE:
            result = decode_result(view.result)
            if view.served_from == MODE_COMPUTED:
                computed += 1
            else:
                cache_served += 1
        else:
            failed += 1
            result = _error_result(
                jobs[index],
                view.error or f"distributed item failed after {view.attempts} attempt(s)",
            )
        results[index] = result
    # Fold worker metrics deltas in submission order — one deterministic
    # merge regardless of which worker ran what, mirroring the pool path
    # (which folds in completion order but over commutative counter adds;
    # here the order is pinned outright).  In-process (thread) fleets
    # share this registry already, so their deltas are only stripped —
    # merging them would replay increments the registry has seen.
    out_of_process = isinstance(backend_url, str) and not backend_url.startswith("memory://")
    registry = metrics.get_registry()
    for index in pending:
        result = results[index]
        if result.metrics_delta and out_of_process:
            registry.merge(result.metrics_delta)
        result.metrics_delta = None

    rebind_duplicates(jobs, results, duplicate_of)

    if stats is not None:
        stats.total += len(jobs)
        stats.executed += computed
        stats.cache_hits += len(jobs) - len(pending) - len(duplicate_of) + cache_served
        for result in results:
            stats.statuses[result.status] = stats.statuses.get(result.status, 0) + 1

    info = {
        "backend": backend_url if isinstance(backend_url, str) else type(backend).__name__,
        "ephemeral_backend": ephemeral is not None,
        "workers_requested": config.workers,
        "workers_spawned": fleet.spawned,
        "jobs_enqueued": enqueued_new,
        "jobs_computed": computed,
        "jobs_cache_served": cache_served,
        "jobs_failed": failed,
        "local_cache_hits": len(jobs) - len(pending) - len(duplicate_of),
        "in_batch_duplicates": len(duplicate_of),
        "lease_reclaims": len(reclaims),
        "workers": worker_rows,
    }
    log_event(
        _log,
        "batch collected",
        computed=computed,
        cache_served=cache_served,
        failed=failed,
        reclaims=len(reclaims),
    )
    return DistribRun(results=results, info=info)  # type: ignore[arg-type]


__all__ = ["DistribConfig", "DistribRun", "run_distributed"]
