"""The leased work queue over HTTP: one protocol, both ends of the wire.

PR 8's fleets coordinate through a :class:`~repro.distrib.backend.WorkBackend`
ledger, which until now meant a shared filesystem (SQLite) or a shared
process (memory).  This module lifts the same protocol onto the service's
versioned HTTP surface:

* :class:`QueueHttpApi` — the server-side adapter.  The service mounts it
  at ``/v1/queue/<op>``; each op is a small JSON body delegated to a real
  backend (memory or SQLite) living inside the server process.
* :class:`HttpWorkBackend` — the client side.  A drop-in
  :class:`~repro.distrib.backend.WorkBackend` whose every method is one
  ``POST`` over the pooled keep-alive :class:`~repro.service.client.ServiceClient`,
  so ``promising-arm work --backend-url http://host:port`` joins a fleet
  with no shared filesystem at all.

The fencing-token laws survive the wire untouched because the ledger
itself never leaves the server: claim tokens are minted there, and a
zombie's stale ``complete`` is refused by the same atomic check that
refuses it in process.  Payload and result bytes ride base64 inside the
JSON bodies (litmus job pickles are a few KB, far under the server's
body cap).
"""

from __future__ import annotations

import base64
import urllib.parse
from typing import Iterable, Mapping, Optional

from ..obs import metrics
from .backend import Claim, ItemView, WorkBackend, WorkerInfo

QUEUE_HTTP_OPS = metrics.counter(
    "service_queue_ops_total",
    "Work-queue operations served over HTTP, by op and outcome.",
    labels=("op", "outcome"),
)

#: Every op of the WorkBackend protocol, as mounted under ``/v1/queue/``.
QUEUE_OPS = (
    "info",
    "enqueue",
    "claim",
    "extend",
    "complete",
    "fail",
    "requeue_expired",
    "counts",
    "collect",
    "register_worker",
    "heartbeat",
    "workers",
)


def _b64encode(data: bytes) -> str:
    return base64.b64encode(bytes(data)).decode("ascii")


def _b64decode(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"), validate=True)


_MISSING = object()


def _field(payload: dict, key: str, kinds, *, default=_MISSING):
    value = payload.get(key, default)
    if value is _MISSING:
        raise ValueError(f"missing field {key!r}")
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise ValueError(f"field {key!r} has the wrong type")
    return value


class QueueHttpApi:
    """Server-side adapter: ``/v1/queue/<op>`` JSON bodies → a delegate ledger.

    Transport-agnostic on purpose (dict in, ``(status, dict)`` out) so the
    HTTP layer stays a router and the op vocabulary is testable directly.
    """

    def __init__(self, backend: WorkBackend) -> None:
        self.backend = backend

    def handle(self, op: str, payload: object) -> tuple[int, dict]:
        if op not in QUEUE_OPS:
            return 404, {"ok": False, "error": f"no such queue op {op!r}"}
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            QUEUE_HTTP_OPS.inc(op=op, outcome="bad_request")
            return 400, {"ok": False, "error": "queue request body must be a JSON object"}
        try:
            outcome, body = getattr(self, f"_op_{op}")(payload)
        except (ValueError, TypeError) as exc:
            QUEUE_HTTP_OPS.inc(op=op, outcome="bad_request")
            return 400, {"ok": False, "error": f"bad queue request: {exc}"}
        QUEUE_HTTP_OPS.inc(op=op, outcome=outcome)
        body["ok"] = True
        return 200, body

    # -- ops -----------------------------------------------------------------
    def _op_info(self, p: dict) -> tuple[str, dict]:
        return "applied", {
            "info": {
                "backend": type(self.backend).__name__,
                "max_attempts": self.backend.max_attempts,
            }
        }

    def _op_enqueue(self, p: dict) -> tuple[str, dict]:
        enqueued = self.backend.enqueue(
            _field(p, "item_id", str), _b64decode(_field(p, "payload", str))
        )
        return ("applied" if enqueued else "refused"), {"enqueued": enqueued}

    def _op_claim(self, p: dict) -> tuple[str, dict]:
        claim = self.backend.claim(
            _field(p, "worker_id", str), float(_field(p, "lease_seconds", (int, float)))
        )
        if claim is None:
            return "empty", {"claim": None}
        return "granted", {
            "claim": {
                "item_id": claim.item_id,
                "payload": _b64encode(claim.payload),
                "token": claim.token,
                "attempts": claim.attempts,
                "enqueued_at": claim.enqueued_at,
            }
        }

    def _op_extend(self, p: dict) -> tuple[str, dict]:
        extended = self.backend.extend(
            _field(p, "item_id", str),
            _field(p, "worker_id", str),
            _field(p, "token", int),
            float(_field(p, "lease_seconds", (int, float))),
        )
        return ("applied" if extended else "refused"), {"extended": extended}

    def _op_complete(self, p: dict) -> tuple[str, dict]:
        completed = self.backend.complete(
            _field(p, "item_id", str),
            _field(p, "worker_id", str),
            _field(p, "token", int),
            _b64decode(_field(p, "result", str)),
            mode=_field(p, "mode", str, default="computed"),
        )
        return ("applied" if completed else "refused"), {"completed": completed}

    def _op_fail(self, p: dict) -> tuple[str, dict]:
        requeue = p.get("requeue", True)
        if not isinstance(requeue, bool):
            raise ValueError("field 'requeue' must be a boolean")
        failed = self.backend.fail(
            _field(p, "item_id", str),
            _field(p, "worker_id", str),
            _field(p, "token", int),
            _field(p, "error", str, default=""),
            requeue=requeue,
        )
        return ("applied" if failed else "refused"), {"failed": failed}

    def _op_requeue_expired(self, p: dict) -> tuple[str, dict]:
        return "applied", {"reclaimed": self.backend.requeue_expired()}

    def _op_counts(self, p: dict) -> tuple[str, dict]:
        return "applied", {"counts": self.backend.counts()}

    def _op_collect(self, p: dict) -> tuple[str, dict]:
        item_ids = _field(p, "item_ids", list)
        if not all(isinstance(item_id, str) for item_id in item_ids):
            raise ValueError("field 'item_ids' must be a list of strings")
        views = self.backend.collect(item_ids)
        return "applied", {
            "items": {
                item_id: {
                    "status": view.status,
                    "worker": view.worker,
                    "attempts": view.attempts,
                    "result": None if view.result is None else _b64encode(view.result),
                    "error": view.error,
                    "served_from": view.served_from,
                }
                for item_id, view in views.items()
            }
        }

    def _op_register_worker(self, p: dict) -> tuple[str, dict]:
        meta = p.get("meta")
        if meta is not None and not isinstance(meta, dict):
            raise ValueError("field 'meta' must be an object")
        self.backend.register_worker(_field(p, "worker_id", str), meta=meta)
        return "applied", {}

    def _op_heartbeat(self, p: dict) -> tuple[str, dict]:
        self.backend.heartbeat(_field(p, "worker_id", str))
        return "applied", {}

    def _op_workers(self, p: dict) -> tuple[str, dict]:
        return "applied", {
            "workers": [
                {
                    "worker_id": info.worker_id,
                    "registered_at": info.registered_at,
                    "heartbeat_at": info.heartbeat_at,
                    "jobs_done": info.jobs_done,
                    "meta": dict(info.meta),
                }
                for info in self.backend.workers()
            ]
        }


class HttpWorkBackend:
    """A :class:`WorkBackend` whose ledger lives behind ``http://host:port``.

    Safe to share between a worker's main thread and its lease-keeper
    heartbeat thread: the underlying client pools one keep-alive
    connection per concurrent caller.  The constructor does not connect —
    the first op does — so ``open_backend`` stays cheap and a coordinator
    can build the URL before the server is even up.
    """

    def __init__(self, url: str, *, timeout: float = 60.0, client=None) -> None:
        parts = urllib.parse.urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"HttpWorkBackend needs an http://host:port url, got {url!r}")
        self.url = url
        if client is None:
            from ..service.client import ServiceClient

            client = ServiceClient(parts.hostname, parts.port or 8765, timeout=timeout)
        self._client = client
        self._max_attempts: Optional[int] = None

    def _op(self, op: str, payload: dict) -> dict:
        return self._client.queue_op(op, payload)

    @property
    def max_attempts(self) -> int:
        """The server-side ledger's retry budget (fetched once, cached)."""
        if self._max_attempts is None:
            self._max_attempts = int(self._op("info", {})["info"]["max_attempts"])
        return self._max_attempts

    # -- queue ---------------------------------------------------------------
    def enqueue(self, item_id: str, payload: bytes) -> bool:
        return bool(
            self._op("enqueue", {"item_id": item_id, "payload": _b64encode(payload)})[
                "enqueued"
            ]
        )

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Claim]:
        granted = self._op(
            "claim", {"worker_id": worker_id, "lease_seconds": lease_seconds}
        )["claim"]
        if granted is None:
            return None
        return Claim(
            item_id=granted["item_id"],
            payload=_b64decode(granted["payload"]),
            token=int(granted["token"]),
            attempts=int(granted["attempts"]),
            enqueued_at=float(granted["enqueued_at"]),
        )

    def extend(self, item_id: str, worker_id: str, token: int, lease_seconds: float) -> bool:
        return bool(
            self._op(
                "extend",
                {
                    "item_id": item_id,
                    "worker_id": worker_id,
                    "token": token,
                    "lease_seconds": lease_seconds,
                },
            )["extended"]
        )

    def complete(
        self, item_id: str, worker_id: str, token: int, result: bytes, *, mode: str = "computed"
    ) -> bool:
        return bool(
            self._op(
                "complete",
                {
                    "item_id": item_id,
                    "worker_id": worker_id,
                    "token": token,
                    "result": _b64encode(result),
                    "mode": mode,
                },
            )["completed"]
        )

    def fail(
        self, item_id: str, worker_id: str, token: int, error: str, *, requeue: bool = True
    ) -> bool:
        return bool(
            self._op(
                "fail",
                {
                    "item_id": item_id,
                    "worker_id": worker_id,
                    "token": token,
                    "error": error,
                    "requeue": requeue,
                },
            )["failed"]
        )

    def requeue_expired(self) -> list[str]:
        return list(self._op("requeue_expired", {})["reclaimed"])

    # -- introspection -------------------------------------------------------
    def counts(self) -> dict[str, int]:
        return {status: int(n) for status, n in self._op("counts", {})["counts"].items()}

    def collect(self, item_ids: Iterable[str]) -> dict[str, ItemView]:
        items = self._op("collect", {"item_ids": list(item_ids)})["items"]
        return {
            item_id: ItemView(
                item_id=item_id,
                status=row["status"],
                worker=row["worker"],
                attempts=int(row["attempts"]),
                result=None if row["result"] is None else _b64decode(row["result"]),
                error=row["error"],
                served_from=row.get("served_from", ""),
            )
            for item_id, row in items.items()
        }

    # -- workers -------------------------------------------------------------
    def register_worker(self, worker_id: str, meta: Optional[Mapping] = None) -> None:
        self._op(
            "register_worker",
            {"worker_id": worker_id, "meta": None if meta is None else dict(meta)},
        )

    def heartbeat(self, worker_id: str) -> None:
        self._op("heartbeat", {"worker_id": worker_id})

    def workers(self) -> list[WorkerInfo]:
        return [
            WorkerInfo(
                worker_id=row["worker_id"],
                registered_at=float(row["registered_at"]),
                heartbeat_at=float(row["heartbeat_at"]),
                jobs_done=int(row["jobs_done"]),
                meta=dict(row.get("meta") or {}),
            )
            for row in self._op("workers", {})["workers"]
        ]

    def close(self) -> None:
        self._client.close()


__all__ = ["HttpWorkBackend", "QueueHttpApi", "QUEUE_OPS"]
