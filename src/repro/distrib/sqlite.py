"""SQLite implementation of the leased work queue.

One database file is the whole deployment: every worker and the
coordinator open it independently (different processes, or different
machines over a shared filesystem), and WAL journaling plus
``BEGIN IMMEDIATE`` transactions make each claim/extend/complete an
atomic compare-and-set against the ledger.  SQLite's single-writer lock
serialises claims, which is exactly the arbitration a work queue needs —
and at whole-litmus-job granularity (milliseconds to minutes of compute
per claim) the write lock is never the bottleneck.

Connections are per-thread (``sqlite3`` objects must not cross threads),
so a worker's heartbeat thread gets its own handle transparently.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Optional, Union

from contextlib import contextmanager

from .backend import (
    DEFAULT_MAX_ATTEMPTS,
    ITEM_STATUSES,
    QUEUE_CLAIMS,
    QUEUE_COMPLETED,
    QUEUE_ENQUEUED,
    QUEUE_FAILED,
    QUEUE_RECLAIMS,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_LEASED,
    STATUS_PENDING,
    Claim,
    ItemView,
    WorkerInfo,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS items (
    seq           INTEGER PRIMARY KEY AUTOINCREMENT,
    item_id       TEXT UNIQUE NOT NULL,
    payload       BLOB NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    worker        TEXT,
    token         INTEGER NOT NULL DEFAULT 0,
    attempts      INTEGER NOT NULL DEFAULT 0,
    enqueued_at   REAL NOT NULL,
    lease_expires REAL,
    completed_at  REAL,
    result        BLOB,
    error         TEXT NOT NULL DEFAULT '',
    served_from   TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_items_status ON items (status, seq);
CREATE TABLE IF NOT EXISTS workers (
    worker_id     TEXT PRIMARY KEY,
    meta          TEXT NOT NULL DEFAULT '{}',
    registered_at REAL NOT NULL,
    heartbeat_at  REAL NOT NULL,
    jobs_done     INTEGER NOT NULL DEFAULT 0
);
"""


class SqliteBackend:
    """Cross-process :class:`~repro.distrib.backend.WorkBackend` on one file."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = time.time,
        busy_timeout: float = 30.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.path = Path(path)
        self.max_attempts = max_attempts
        self.clock = clock
        self.busy_timeout = busy_timeout
        self._local = threading.local()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn()  # create the schema eagerly so misconfiguration fails here

    # -- connection management ----------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                str(self.path), timeout=self.busy_timeout, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
            try:
                conn.executescript(_SCHEMA)
            except sqlite3.OperationalError:
                # Another process creating the schema at the same instant;
                # IF NOT EXISTS makes any one winner sufficient.
                pass
            self._local.conn = conn
        return conn

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        """One ``BEGIN IMMEDIATE`` transaction: take the write lock up
        front so read-then-update sequences are atomic across claimants."""
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    # -- queue ---------------------------------------------------------------
    def enqueue(self, item_id: str, payload: bytes) -> bool:
        with self._tx() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO items (item_id, payload, status, enqueued_at) "
                "VALUES (?, ?, ?, ?)",
                (item_id, payload, STATUS_PENDING, self.clock()),
            )
            inserted = cursor.rowcount == 1
        if inserted:
            QUEUE_ENQUEUED.inc()
        return inserted

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Claim]:
        with self._tx() as conn:
            row = conn.execute(
                "SELECT item_id, payload, token, attempts, enqueued_at FROM items "
                "WHERE status = ? ORDER BY seq LIMIT 1",
                (STATUS_PENDING,),
            ).fetchone()
            if row is None:
                return None
            item_id, payload, token, attempts, enqueued_at = row
            token += 1
            attempts += 1
            conn.execute(
                "UPDATE items SET status = ?, worker = ?, token = ?, attempts = ?, "
                "lease_expires = ? WHERE item_id = ?",
                (
                    STATUS_LEASED,
                    worker_id,
                    token,
                    attempts,
                    self.clock() + lease_seconds,
                    item_id,
                ),
            )
        QUEUE_CLAIMS.inc()
        return Claim(
            item_id=item_id,
            payload=payload,
            token=token,
            attempts=attempts,
            enqueued_at=enqueued_at,
        )

    _HELD = "item_id = ? AND status = 'leased' AND worker = ? AND token = ?"

    def extend(self, item_id: str, worker_id: str, token: int, lease_seconds: float) -> bool:
        with self._tx() as conn:
            cursor = conn.execute(
                f"UPDATE items SET lease_expires = ? WHERE {self._HELD}",
                (self.clock() + lease_seconds, item_id, worker_id, token),
            )
            return cursor.rowcount == 1

    def complete(
        self, item_id: str, worker_id: str, token: int, result: bytes, *, mode: str = "computed"
    ) -> bool:
        with self._tx() as conn:
            cursor = conn.execute(
                "UPDATE items SET status = ?, result = ?, served_from = ?, "
                f"completed_at = ?, lease_expires = NULL WHERE {self._HELD}",
                (STATUS_DONE, result, mode, self.clock(), item_id, worker_id, token),
            )
            completed = cursor.rowcount == 1
            if completed:
                conn.execute(
                    "UPDATE workers SET jobs_done = jobs_done + 1 WHERE worker_id = ?",
                    (worker_id,),
                )
        if completed:
            QUEUE_COMPLETED.inc(mode=mode)
        return completed

    def fail(
        self, item_id: str, worker_id: str, token: int, error: str, *, requeue: bool = True
    ) -> bool:
        failed_terminally = 0
        with self._tx() as conn:
            row = conn.execute(
                f"SELECT attempts FROM items WHERE {self._HELD}",
                (item_id, worker_id, token),
            ).fetchone()
            if row is None:
                return False
            if requeue and row[0] < self.max_attempts:
                conn.execute(
                    "UPDATE items SET status = ?, worker = NULL, lease_expires = NULL, "
                    "error = ? WHERE item_id = ?",
                    (STATUS_PENDING, error, item_id),
                )
            else:
                conn.execute(
                    "UPDATE items SET status = ?, lease_expires = NULL, error = ? "
                    "WHERE item_id = ?",
                    (STATUS_FAILED, error, item_id),
                )
                failed_terminally = 1
        if failed_terminally:
            QUEUE_FAILED.inc()
        return True

    def requeue_expired(self) -> list[str]:
        now = self.clock()
        reclaimed: list[str] = []
        failed = 0
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT item_id, worker, attempts FROM items "
                "WHERE status = ? AND lease_expires IS NOT NULL AND lease_expires < ? "
                "ORDER BY seq",
                (STATUS_LEASED, now),
            ).fetchall()
            for item_id, worker, attempts in rows:
                error = f"lease expired after attempt {attempts} (worker {worker})"
                if attempts < self.max_attempts:
                    conn.execute(
                        "UPDATE items SET status = ?, worker = NULL, lease_expires = NULL, "
                        "error = ? WHERE item_id = ?",
                        (STATUS_PENDING, error, item_id),
                    )
                else:
                    conn.execute(
                        "UPDATE items SET status = ?, lease_expires = NULL, error = ? "
                        "WHERE item_id = ?",
                        (STATUS_FAILED, error, item_id),
                    )
                    failed += 1
                reclaimed.append(item_id)
        if reclaimed:
            QUEUE_RECLAIMS.inc(len(reclaimed))
        if failed:
            QUEUE_FAILED.inc(failed)
        return reclaimed

    # -- introspection -------------------------------------------------------
    def counts(self) -> dict[str, int]:
        out = {status: 0 for status in ITEM_STATUSES}
        rows = self._conn().execute(
            "SELECT status, COUNT(*) FROM items GROUP BY status"
        ).fetchall()
        for status, count in rows:
            out[status] = count
        return out

    def collect(self, item_ids: Iterable[str]) -> dict[str, ItemView]:
        ids = list(item_ids)
        out: dict[str, ItemView] = {}
        conn = self._conn()
        for start in range(0, len(ids), 500):
            chunk = ids[start : start + 500]
            placeholders = ",".join("?" * len(chunk))
            rows = conn.execute(
                "SELECT item_id, status, worker, attempts, result, error, served_from "
                f"FROM items WHERE status IN (?, ?) AND item_id IN ({placeholders})",
                (STATUS_DONE, STATUS_FAILED, *chunk),
            ).fetchall()
            for item_id, status, worker, attempts, result, error, served_from in rows:
                out[item_id] = ItemView(
                    item_id=item_id,
                    status=status,
                    worker=worker,
                    attempts=attempts,
                    result=result,
                    error=error,
                    served_from=served_from,
                )
        return out

    # -- workers -------------------------------------------------------------
    def register_worker(self, worker_id: str, meta: Optional[Mapping] = None) -> None:
        now = self.clock()
        with self._tx() as conn:
            conn.execute(
                "INSERT INTO workers (worker_id, meta, registered_at, heartbeat_at) "
                "VALUES (?, ?, ?, ?) ON CONFLICT (worker_id) DO UPDATE SET "
                "meta = excluded.meta, registered_at = excluded.registered_at, "
                "heartbeat_at = excluded.heartbeat_at",
                (worker_id, json.dumps(dict(meta or {}), sort_keys=True), now, now),
            )

    def heartbeat(self, worker_id: str) -> None:
        with self._tx() as conn:
            conn.execute(
                "UPDATE workers SET heartbeat_at = ? WHERE worker_id = ?",
                (self.clock(), worker_id),
            )

    def workers(self) -> list[WorkerInfo]:
        rows = self._conn().execute(
            "SELECT worker_id, registered_at, heartbeat_at, jobs_done, meta "
            "FROM workers ORDER BY worker_id"
        ).fetchall()
        return [
            WorkerInfo(
                worker_id=worker_id,
                registered_at=registered_at,
                heartbeat_at=heartbeat_at,
                jobs_done=jobs_done,
                meta=json.loads(meta),
            )
            for worker_id, registered_at, heartbeat_at, jobs_done, meta in rows
        ]

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None


__all__ = ["SqliteBackend"]
