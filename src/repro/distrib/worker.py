"""Stateless fleet worker: claim → execute → cache → complete, forever.

A worker owns nothing but a backend URL and (optionally) a shared result
cache directory.  It registers itself, then loops: claim one litmus job
under a lease, serve it from the shared cache if the fingerprint is
already there, otherwise execute it through the exact same
:func:`~repro.harness.jobs.execute_job` path the in-process scheduler
uses (so distributed outcome sets are bit-identical by construction),
persist the fresh result, and complete the item.  A background keeper
thread heartbeats the worker row and extends the lease of whatever item
is currently running, so long jobs are never reclaimed from a live
worker — while a crashed worker simply stops extending and its item
returns to the pool.

Jobs run on the worker process's **main thread**, so per-job ``SIGALRM``
deadlines fire exactly as they do under the resident pool.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..harness.cache import ResultCache, open_cache
from ..harness.jobs import Job, JobResult
from ..harness.scheduler import execute_with_delta
from ..obs import metrics
from ..obs.logging import get_logger, log_event
from .backend import WorkBackend, open_backend

_log = get_logger("distrib.worker")

WORKER_JOBS = metrics.counter(
    "distrib_worker_jobs_total",
    "Items processed by fleet workers, by how they were served.",
    labels=("mode",),
)

#: Default claim lease.  Long enough that the keeper thread (which fires
#: every ``lease/3`` seconds) refreshes it several times before expiry.
DEFAULT_LEASE_SECONDS = 30.0

#: How a completed item was served (recorded on the backend row).
MODE_COMPUTED = "computed"
MODE_CACHE = "cache"


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


# -- payload codec -----------------------------------------------------------
# Jobs and results are already plain picklable dataclasses (the
# multiprocessing pool ships them the same way); the queue just stores the
# pickled bytes, so worker and coordinator only need a matching codebase.


def encode_work(job: Job, timeout: Optional[float] = None) -> bytes:
    return pickle.dumps({"job": job, "timeout": timeout}, protocol=pickle.HIGHEST_PROTOCOL)


def decode_work(payload: bytes) -> tuple[Job, Optional[float]]:
    data = pickle.loads(payload)
    return data["job"], data.get("timeout")


def encode_result(result: JobResult) -> bytes:
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(payload: bytes) -> JobResult:
    return pickle.loads(payload)


class _LeaseKeeper:
    """Heartbeat thread: keep the worker row fresh and the held lease live.

    The worker's main thread is busy executing the job, so lease renewal
    has to happen elsewhere; the keeper uses the backend through the same
    object (SQLite connections are per-thread, so this transparently gets
    its own handle).
    """

    def __init__(
        self,
        backend: WorkBackend,
        worker_id: str,
        lease_seconds: float,
        interval: float,
    ) -> None:
        self.backend = backend
        self.worker_id = worker_id
        self.lease_seconds = lease_seconds
        self.interval = interval
        self._current: Optional[tuple[str, int]] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-keeper-{worker_id}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def hold(self, item_id: str, token: int) -> None:
        with self._lock:
            self._current = (item_id, token)

    def release(self) -> None:
        with self._lock:
            self._current = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                current = self._current
            try:
                self.backend.heartbeat(self.worker_id)
                if current is not None:
                    self.backend.extend(
                        current[0], self.worker_id, current[1], self.lease_seconds
                    )
            except Exception:
                # A transient ledger error just means this renewal is
                # skipped; the lease ages until the next round succeeds.
                pass

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation did."""

    worker_id: str = ""
    claimed: int = 0
    computed: int = 0
    cache_hits: int = 0
    failures: int = 0
    lost_leases: int = 0


def run_worker(
    backend: Union[str, WorkBackend],
    cache: Union[None, str, Path, ResultCache] = None,
    *,
    worker_id: Optional[str] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_seconds: float = 0.1,
    max_jobs: Optional[int] = None,
    idle_exit_seconds: Optional[float] = None,
    stop_event: Optional[threading.Event] = None,
    heartbeats: bool = True,
) -> WorkerStats:
    """Drive one worker until the stop condition fires.

    ``max_jobs`` bounds how many items are claimed (tests), ``idle_exit_seconds``
    retires a worker whose queue has stayed empty that long (fleets that
    should wind down), and ``stop_event`` is a cooperative kill switch
    (in-process fleets).  With all three unset the worker serves forever —
    the standalone ``promising-arm work`` shape.
    """
    backend = open_backend(backend)
    cache = open_cache(cache)
    worker_id = worker_id or default_worker_id()
    backend.register_worker(
        worker_id, meta={"pid": os.getpid(), "host": socket.gethostname()}
    )
    keeper: Optional[_LeaseKeeper] = None
    if heartbeats:
        keeper = _LeaseKeeper(
            backend, worker_id, lease_seconds, interval=max(0.05, lease_seconds / 3)
        )
        keeper.start()
    stats = WorkerStats(worker_id=worker_id)
    log_event(_log, "worker started", worker=worker_id, lease_seconds=lease_seconds)
    idle_since = time.monotonic()
    try:
        while True:
            if stop_event is not None and stop_event.is_set():
                break
            if max_jobs is not None and stats.claimed >= max_jobs:
                break
            claim = backend.claim(worker_id, lease_seconds)
            if claim is None:
                if (
                    idle_exit_seconds is not None
                    and time.monotonic() - idle_since >= idle_exit_seconds
                ):
                    break
                time.sleep(poll_seconds)
                continue
            idle_since = time.monotonic()
            stats.claimed += 1
            if keeper is not None:
                keeper.hold(claim.item_id, claim.token)
            try:
                job, timeout = decode_work(claim.payload)
                hit = cache.get(job) if cache is not None else None
                if hit is not None:
                    mode, result = MODE_CACHE, hit
                    stats.cache_hits += 1
                else:
                    mode = MODE_COMPUTED
                    result = execute_with_delta(
                        job, timeout, queue_seconds=max(0.0, time.time() - claim.enqueued_at)
                    )
                    stats.computed += 1
                    if cache is not None:
                        cache.put(job, result)
                completed = backend.complete(
                    claim.item_id, worker_id, claim.token, encode_result(result), mode=mode
                )
                if not completed:
                    # The lease was reclaimed mid-run (e.g. a long stall);
                    # someone else owns the item now, so the ledger — not
                    # this result — is authoritative.
                    stats.lost_leases += 1
                    mode = "lost-lease"
                WORKER_JOBS.inc(mode=mode)
                log_event(
                    _log,
                    "item finished",
                    worker=worker_id,
                    item=claim.item_id[:12],
                    mode=mode,
                    status=result.status,
                    attempts=claim.attempts,
                )
            except Exception as exc:
                stats.failures += 1
                backend.fail(
                    claim.item_id, worker_id, claim.token, f"{type(exc).__name__}: {exc}"
                )
                log_event(
                    _log,
                    "item failed",
                    worker=worker_id,
                    item=claim.item_id[:12],
                    error=repr(exc),
                )
            finally:
                if keeper is not None:
                    keeper.release()
    finally:
        if keeper is not None:
            keeper.stop()
        log_event(
            _log,
            "worker stopped",
            worker=worker_id,
            claimed=stats.claimed,
            computed=stats.computed,
            cache_hits=stats.cache_hits,
            failures=stats.failures,
        )
    return stats


__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "MODE_CACHE",
    "MODE_COMPUTED",
    "WorkerStats",
    "decode_result",
    "decode_work",
    "default_worker_id",
    "encode_result",
    "encode_work",
    "run_worker",
]
