"""Unified exploration kernel with pluggable search strategies.

One :class:`SearchKernel` owns what every explorer used to hand-roll —
frontier, interned visited sets, state/wall-clock budgets, truncation
accounting, and a shared stats vocabulary — parameterised by a
transition-enumeration callback and a :class:`Strategy`:

* ``dfs`` / ``bfs`` — exhaustive enumeration (``dfs`` is the historical,
  bit-identical default);
* ``sample`` — seeded bounded random walks with restart, producing a
  sound under-approximation of the outcome set on state spaces that
  exhaustive search cannot touch.

The promising explorers (:mod:`repro.promising.exhaustive`) and the
Flat explorer (:mod:`repro.flat.explorer`) are built on this kernel;
their configs extend :class:`BaseSearchConfig`.  State representation is
delegated to a pluggable execution backend (:mod:`repro.backend`,
selected by ``config.backend`` from :data:`BACKENDS`); the kernel only
ever sees opaque packed states and the backend's ``key``.
"""

from .config import BACKENDS, BaseSearchConfig, DEFAULT_BACKEND, DEFAULT_STRATEGY
from .kernel import KernelStats, SearchKernel, SearchStats
from .strategy import (
    STRATEGIES,
    BreadthFirst,
    DepthFirst,
    RandomWalks,
    Strategy,
    is_exhaustive,
    make_strategy,
    strategy_for,
)

__all__ = [
    "BACKENDS",
    "BaseSearchConfig",
    "DEFAULT_BACKEND",
    "DEFAULT_STRATEGY",
    "KernelStats",
    "SearchKernel",
    "SearchStats",
    "STRATEGIES",
    "Strategy",
    "DepthFirst",
    "BreadthFirst",
    "RandomWalks",
    "is_exhaustive",
    "make_strategy",
    "strategy_for",
]
