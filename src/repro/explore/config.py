"""Shared configuration base of every state-space explorer.

Historically each explorer grew its own config dataclass and the common
fields (architecture, loop bound, state budget, dedup knob) drifted into
triplicates.  :class:`BaseSearchConfig` is the single home for everything
the :class:`~repro.explore.kernel.SearchKernel` consumes; the concrete
explorer configs (:class:`~repro.promising.exhaustive.ExploreConfig`,
:class:`~repro.flat.explorer.FlatConfig`) extend it with model-specific
fields only.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..lang.kinds import Arch

#: Strategy applied when a config does not name one.
DEFAULT_STRATEGY = "dfs"

#: Execution backends an explorer can run on.  ``"object"`` is the
#: reference backend (the historical dataclass-walking enumeration);
#: ``"packed"`` compiles the program once and represents machine states
#: as flat integer tuples.  The names live here (not in
#: :mod:`repro.backend`) so config/CLI/service layers can validate a
#: backend without importing the backend implementations.
BACKENDS = ("object", "packed")

#: Backend applied when a config does not name one.  Must stay
#: ``"object"`` — harness cache fingerprints omit the field at this
#: default so pre-existing on-disk caches remain valid.
DEFAULT_BACKEND = "object"


@dataclass
class BaseSearchConfig:
    """Fields every kernel-driven explorer shares."""

    #: Architecture variant (ARM or RISC-V).
    arch: Arch = Arch.ARM
    #: Loop unrolling bound applied when the program contains loops.
    loop_bound: int = 2
    #: Cap on kernel-visited states (safety valve; exploration is reported
    #: as truncated when hit).  Concrete configs override the default.
    max_states: int = 1_000_000
    #: Wall-clock budget for one exploration, in seconds (``None`` =
    #: unbounded).  Measured with ``time.monotonic`` so NTP adjustments
    #: can never fire it early or late; hitting it marks the run truncated.
    deadline_seconds: Optional[float] = None
    #: Deduplicate structurally identical states (visited sets over
    #: hash-consed state keys).  Disabling is for ablation benchmarks
    #: only; the outcome set of an exhaustive run is identical either way.
    dedup: bool = True
    #: Frontier discipline: ``"dfs"`` (default, the historical behaviour),
    #: ``"bfs"``, or ``"sample"`` — seeded bounded random walks with
    #: restart.  Exhaustive strategies produce identical outcome sets;
    #: ``sample`` produces a sound under-approximation.
    strategy: str = DEFAULT_STRATEGY
    #: Number of random walks a ``sample`` run performs.
    samples: int = 256
    #: Step bound of one random walk before it restarts.
    sample_depth: int = 4096
    #: PRNG seed of a ``sample`` run (same seed ⇒ same outcome set).
    seed: int = 0
    #: Execution backend: ``"object"`` (reference) or ``"packed"``
    #: (compiled program + integer-tuple states).  Exhaustive runs
    #: produce identical outcome sets on either.
    backend: str = DEFAULT_BACKEND

    def for_arch(self, arch: Arch):
        # ``dataclasses.replace`` rather than a field-by-field copy, so a
        # config field added later is carried over instead of silently
        # reset to its default when the harness re-targets an arch.
        return dataclasses.replace(self, arch=arch)

    @property
    def exhaustive(self) -> bool:
        """Whether this configuration enumerates the full state space."""
        from .strategy import is_exhaustive

        return is_exhaustive(self.strategy)


__all__ = ["BACKENDS", "BaseSearchConfig", "DEFAULT_BACKEND", "DEFAULT_STRATEGY"]
