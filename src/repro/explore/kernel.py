"""The unified exploration kernel.

Every state-space search in the repo — the promise-first explorer, the
naive fully-interleaved explorer, the Flat-style explorer, and the
per-thread run-to-completion enumeration inside the promise-first
strategy — used to hand-roll the same loop: a frontier, a visited set,
a state budget, truncation accounting, and stats counters.  The
:class:`SearchKernel` owns all of that once, parameterised by

* a **transition-enumeration callback** ``successors(state)`` returning
  the successor states (and recording outcomes/deadlocks as a side
  effect when the popped state is terminal), and
* a pluggable :class:`~repro.explore.strategy.Strategy` deciding the
  frontier discipline (``dfs``/``bfs`` exhaustive, ``sample`` random
  walks).

The kernel's counters land in a :class:`KernelStats`, which the concrete
explorers fold into their domain-specific stats dataclasses (both of
which extend :class:`SearchStats`, so strategy/sampling fields flow
uniformly into job results and sweep reports).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..obs import metrics
from .strategy import Strategy, is_exhaustive

# Flushed once per kernel run — the inner loop touches only KernelStats'
# plain ints, so instrumentation cost is O(1) per search, not per state.
_KERNEL_RUNS = metrics.counter(
    "kernel_runs_total", "SearchKernel runs completed.", labels=("strategy",)
)
_KERNEL_STATES = metrics.counter(
    "kernel_states_total", "States visited across all kernel runs.", labels=("strategy",)
)
_KERNEL_TRANSITIONS = metrics.counter(
    "kernel_transitions_total", "Transitions enumerated across all kernel runs.",
    labels=("strategy",),
)
_KERNEL_DEDUP_HITS = metrics.counter(
    "kernel_dedup_hits_total", "Visited-set hits across all kernel runs.",
    labels=("strategy",),
)
_KERNEL_TRUNCATIONS = metrics.counter(
    "kernel_truncations_total", "Kernel runs cut short, by cause.", labels=("cause",)
)
_KERNEL_RUN_SECONDS = metrics.histogram(
    "kernel_run_seconds", "Wall time per kernel run.", labels=("strategy",)
)
_KERNEL_STATES_PER_SECOND = metrics.gauge(
    "kernel_states_per_second", "Throughput of the most recent kernel run.",
    labels=("strategy",),
)


@dataclass
class SearchStats:
    """Strategy-and-budget fields shared by every explorer's stats.

    Concrete explorers subclass this with their domain counters
    (``promise_states``, ``restarts``, …); these base fields are what the
    harness, the report schema, and the fuzz policy consume uniformly.
    """

    truncated: bool = False
    #: Whether truncation was caused by the wall-clock deadline (as
    #: opposed to the ``max_states`` budget).
    deadline_hit: bool = False
    elapsed_seconds: float = 0.0
    #: Visited-set hits (exhaustive strategies only).
    dedup_hits: int = 0
    #: Strategy that produced this result (``dfs``/``bfs``/``sample``).
    strategy: str = "dfs"
    #: Random walks completed (``sample`` only).
    samples_run: int = 0
    #: Random-walk steps taken (``sample`` only).
    sample_steps: int = 0
    #: Walks abandoned at the per-walk depth bound (``sample`` only).
    sample_depth_hits: int = 0
    #: Distinct states touched across all walks (``sample`` only).
    unique_sample_states: int = 0
    #: ``unique_sample_states / states visited`` — the new-state rate of
    #: the walks.  Near 1.0 the walks still discover fresh states every
    #: step (the space is far from sampled out); near 0.0 they keep
    #: reconverging (the sample is saturating).  ``None`` for exhaustive
    #: runs, whose coverage is total by construction.
    coverage_estimate: Optional[float] = None

    @property
    def sampled(self) -> bool:
        """Whether this result is a statistical under-approximation."""
        return not is_exhaustive(self.strategy)

    def sampling_suffix(self) -> str:
        """The ``describe()`` tail shared by every explorer's stats."""
        if not self.sampled:
            return ""
        return (
            f" [strategy: {self.strategy}, walks: {self.samples_run}, "
            f"coverage est.: {self.coverage_estimate}]"
        )


@dataclass
class KernelStats:
    """Raw counters one :meth:`SearchKernel.run` call accumulates."""

    states: int = 0
    transitions: int = 0
    dedup_hits: int = 0
    truncated: bool = False
    deadline_hit: bool = False
    samples_run: int = 0
    sample_steps: int = 0
    sample_depth_hits: int = 0
    unique_sample_states: int = 0
    coverage_estimate: Optional[float] = None

    def merge_into(self, stats: SearchStats, strategy: Strategy) -> None:
        """Fold this run's counters into an explorer's stats object."""
        stats.truncated = stats.truncated or self.truncated
        stats.deadline_hit = stats.deadline_hit or self.deadline_hit
        stats.dedup_hits += self.dedup_hits
        stats.strategy = strategy.name
        stats.samples_run += self.samples_run
        stats.sample_steps += self.sample_steps
        stats.sample_depth_hits += self.sample_depth_hits
        stats.unique_sample_states += self.unique_sample_states
        if self.coverage_estimate is not None:
            stats.coverage_estimate = self.coverage_estimate


class SearchKernel:
    """One state-space search: frontier + visited set + budgets + stats.

    Parameters
    ----------
    successors:
        The transition-enumeration callback.  Called once per visited
        state; returns (an iterable of) successor states.  Terminal
        handling is the callback's job: a final state returns no
        successors and records its outcome as a side effect.
    strategy:
        Frontier discipline (see :mod:`repro.explore.strategy`).
    max_states:
        Visited-state budget; exceeding it marks the run truncated.
    deadline_seconds:
        Wall-clock budget measured with ``time.monotonic`` (NTP steps on
        the wall clock must never fire a deadline early or late).
    key_fn:
        Hashable-identity function for the visited set (typically a
        hash-consing ``cache_key``).  ``None`` disables dedup — the
        ablation mode, or a strategy that must re-traverse freely.
    """

    def __init__(
        self,
        successors: Callable[[object], Iterable],
        *,
        strategy: Strategy,
        max_states: int,
        deadline_seconds: Optional[float] = None,
        key_fn: Optional[Callable[[object], object]] = None,
    ) -> None:
        self.successors = successors
        self.strategy = strategy
        self.max_states = max_states
        self.deadline_seconds = deadline_seconds
        #: Sampling strategies must be free to revisit states, so only
        #: exhaustive strategies get a visited set; ``key_fn`` stays
        #: available either way (``sample`` uses it to count the unique
        #: states behind its coverage estimate).
        self.key_fn = key_fn
        self.visited: Optional[set] = set() if key_fn is not None and strategy.exhaustive else None
        self.stats = KernelStats()
        self._deadline: Optional[float] = None

    @classmethod
    def for_backend(
        cls,
        backend,
        successors: Callable[[object], Iterable],
        *,
        strategy: Strategy,
        max_states: int,
        deadline_seconds: Optional[float] = None,
        dedup: bool = True,
    ) -> "SearchKernel":
        """Kernel whose visited-set identity comes from an execution backend.

        ``backend`` is any object with the :class:`ExecutionBackend
        <repro.backend.base.ExecutionBackend>` shape (duck-typed — this
        module must not import the backend implementations); its
        ``key(packed)`` becomes the kernel's ``key_fn``.  ``dedup=False``
        drops the visited set exactly like passing ``key_fn=None``
        directly (the ablation mode).
        """
        return cls(
            successors,
            strategy=strategy,
            max_states=max_states,
            deadline_seconds=deadline_seconds,
            key_fn=backend.key if dedup else None,
        )

    def deadline_exceeded(self) -> bool:
        if self._deadline is None:
            return False
        if time.monotonic() >= self._deadline:
            self.stats.deadline_hit = True
            return True
        return False

    def run(self, roots: Sequence) -> KernelStats:
        """Search from ``roots`` until exhaustion or a budget trips."""
        start = time.perf_counter()
        if self.deadline_seconds is not None:
            self._deadline = time.monotonic() + self.deadline_seconds
        self.strategy.search(self, roots)
        self._record_metrics(time.perf_counter() - start)
        return self.stats

    def _record_metrics(self, elapsed: float) -> None:
        """Flush this run's counters to the metrics registry (once)."""
        name = self.strategy.name
        _KERNEL_RUNS.inc(strategy=name)
        _KERNEL_STATES.inc(self.stats.states, strategy=name)
        _KERNEL_TRANSITIONS.inc(self.stats.transitions, strategy=name)
        _KERNEL_DEDUP_HITS.inc(self.stats.dedup_hits, strategy=name)
        if self.stats.truncated:
            cause = "deadline" if self.stats.deadline_hit else "max_states"
            _KERNEL_TRUNCATIONS.inc(cause=cause)
        _KERNEL_RUN_SECONDS.observe(elapsed, strategy=name)
        if elapsed > 0:
            _KERNEL_STATES_PER_SECOND.set(self.stats.states / elapsed, strategy=name)

    def finish(self, stats: SearchStats) -> None:
        """Fold the kernel counters into an explorer's stats object."""
        self.stats.merge_into(stats, self.strategy)


__all__ = ["KernelStats", "SearchKernel", "SearchStats"]
