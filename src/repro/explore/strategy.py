"""Pluggable search strategies for the :class:`~repro.explore.kernel.SearchKernel`.

A strategy owns the *drive loop*: how the frontier is ordered, whether a
visited set prunes re-expansion, and when the search stops.  The kernel
supplies everything else (the transition callback, budgets, stats), so
the three concrete strategies stay tiny:

* :class:`DepthFirst` — LIFO frontier, visited-set pruning.  This is the
  historical behaviour of every explorer in the repo, bit-identical by
  construction (same push order, same pop position, same pre-insertion
  dedup check, same budget accounting).
* :class:`BreadthFirst` — FIFO frontier, otherwise identical.  Exhaustive
  strategies visit the same state set, so their outcome sets are equal.
* :class:`RandomWalks` — the ``sample`` strategy: N seeded bounded random
  walks with restart, in the spirit of litmus-style statistical running
  (vs. herd-style enumeration).  No pruning — a walk follows one random
  successor per step until it bottoms out or hits its depth bound — so
  the outcome set is a sound *under-approximation*: every outcome found
  is genuinely reachable, but absence proves nothing.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from .kernel import SearchKernel


class Strategy:
    """Base class; subclasses define ``name``/``exhaustive`` and ``search``."""

    name: str = "?"
    #: Whether the strategy visits every reachable state (budget allowing).
    exhaustive: bool = True

    def search(self, kernel: "SearchKernel", roots: Sequence) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class _Worklist(Strategy):
    """Shared drive loop of the exhaustive strategies."""

    def _pop(self, frontier: deque):
        raise NotImplementedError

    def search(self, kernel: "SearchKernel", roots: Sequence) -> None:
        stats = kernel.stats
        frontier: deque = deque()
        visited = kernel.visited
        for root in roots:
            if visited is not None:
                visited.add(kernel.key_fn(root))
            frontier.append(root)
        while frontier:
            state = self._pop(frontier)
            stats.states += 1
            if stats.states > kernel.max_states or kernel.deadline_exceeded():
                stats.truncated = True
                break
            for successor in kernel.successors(state):
                stats.transitions += 1
                if visited is not None:
                    key = kernel.key_fn(successor)
                    if key in visited:
                        stats.dedup_hits += 1
                        continue
                    visited.add(key)
                frontier.append(successor)


class DepthFirst(_Worklist):
    name = "dfs"

    def _pop(self, frontier: deque):
        return frontier.pop()


class BreadthFirst(_Worklist):
    name = "bfs"

    def _pop(self, frontier: deque):
        return frontier.popleft()


class RandomWalks(Strategy):
    """``sample``: N bounded random walks with restart, seeded."""

    name = "sample"
    exhaustive = False

    def __init__(self, samples: int = 256, depth: int = 4096, seed: int = 0) -> None:
        if samples < 1:
            raise ValueError("samples must be at least 1")
        if depth < 1:
            raise ValueError("sample depth must be at least 1")
        self.samples = samples
        self.depth = depth
        self.seed = seed

    def describe(self) -> str:
        return f"sample(n={self.samples}, depth={self.depth}, seed={self.seed})"

    def search(self, kernel: "SearchKernel", roots: Sequence) -> None:
        stats = kernel.stats
        rng = random.Random(self.seed)
        #: Unique states touched across all walks — not used for pruning
        #: (a walk must be free to re-traverse), only for the coverage
        #: estimate: a low new-state rate means the walks keep
        #: reconverging and the sample is saturating.
        seen: set = set()
        roots = list(roots)
        exhausted = False
        for _walk in range(self.samples):
            if exhausted:
                break
            state = roots[0] if len(roots) == 1 else rng.choice(roots)
            completed = False
            for _step in range(self.depth):
                stats.states += 1
                if stats.states > kernel.max_states or kernel.deadline_exceeded():
                    stats.truncated = True
                    exhausted = True
                    break
                if kernel.key_fn is not None:
                    seen.add(kernel.key_fn(state))
                successors = list(kernel.successors(state))
                stats.transitions += len(successors)
                if not successors:
                    # Terminal (or deadlocked): the transition callback has
                    # recorded whatever outcome the state carries; restart.
                    completed = True
                    break
                state = rng.choice(successors)
                stats.sample_steps += 1
            else:
                # Depth bound hit mid-walk: the walk is abandoned without
                # reaching a terminal state (and is not counted as run).
                stats.sample_depth_hits += 1
            if completed:
                stats.samples_run += 1
        if kernel.key_fn is not None:
            # Without a key function coverage simply was not measured —
            # leave the estimate None rather than reporting 0.0, which
            # would read as "fully saturated".
            stats.unique_sample_states = len(seen)
            if stats.states:
                stats.coverage_estimate = round(len(seen) / stats.states, 6)


#: Registry of strategy names accepted by configs, the CLI, and the service.
STRATEGIES = ("dfs", "bfs", "sample")

_EXHAUSTIVE = {"dfs", "bfs"}


def is_exhaustive(name: str) -> bool:
    """Whether ``name`` is an exhaustive (full-enumeration) strategy."""
    return name in _EXHAUSTIVE


def make_strategy(
    name: str, *, samples: int = 256, sample_depth: int = 4096, seed: int = 0
) -> Strategy:
    """Instantiate a strategy by name (the config-facing constructor)."""
    if name == "dfs":
        return DepthFirst()
    if name == "bfs":
        return BreadthFirst()
    if name == "sample":
        return RandomWalks(samples=samples, depth=sample_depth, seed=seed)
    raise ValueError(f"unknown search strategy {name!r}; expected one of {STRATEGIES}")


def strategy_for(config) -> Strategy:
    """The strategy a :class:`~repro.explore.config.BaseSearchConfig` names."""
    return make_strategy(
        config.strategy,
        samples=config.samples,
        sample_depth=config.sample_depth,
        seed=config.seed,
    )


__all__ = [
    "STRATEGIES",
    "Strategy",
    "DepthFirst",
    "BreadthFirst",
    "RandomWalks",
    "is_exhaustive",
    "make_strategy",
    "strategy_for",
]
