"""Flat-style abstract-microarchitectural baseline model."""

from .machine import FlatState, FlatThread, WindowEntry, initial_state
from .explorer import (
    FlatConfig,
    FlatResult,
    FlatStats,
    explore_flat,
    successors,
    thread_transitions,
)

__all__ = [
    "FlatState",
    "FlatThread",
    "WindowEntry",
    "initial_state",
    "FlatConfig",
    "FlatResult",
    "FlatStats",
    "explore_flat",
    "successors",
    "thread_transitions",
]
