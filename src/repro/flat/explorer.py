"""Transition rules and exhaustive exploration for the Flat-style model.

See :mod:`repro.flat.machine` for the state definitions and for the
relationship to the paper's Flat model.  The transitions are:

``fetch``
    Move the next instruction of the fetch frontier into the window; a
    conditional branch is fetched *speculatively*, once per direction.
``execute``
    Out-of-order execution of a window entry whose operands are available
    and whose ordering conditions (same-address, barriers, acquire,
    release, speculation) are met.  Stores propagate to the flat storage;
    store exclusives consult the reservation monitor and may always fail.
``resolve``
    A speculated branch whose condition has become available either
    confirms the speculation or triggers a restart: the window suffix is
    discarded and fetching resumes from the other continuation.

Completed window prefixes retire automatically after every transition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from ..explore import BaseSearchConfig, SearchKernel, SearchStats, strategy_for
from ..lang.ast import Assign, Fence, If, Isb, Load, Seq, Skip, Stmt, Store
from ..lang.kinds import FenceSet, VFAIL, VSUCC
from ..lang.program import Program
from ..lang.transform import unroll_program
from ..lang import has_loops
from ..outcomes import OutcomeSet
from ..promising.steps import normalise
from .machine import (
    FlatState,
    FlatThread,
    WindowEntry,
    entry_address,
    try_eval,
    unresolved_branch_before,
    window_regs,
)


@dataclass
class FlatConfig(BaseSearchConfig):
    """Configuration of the Flat-style explorer.

    The search-kernel fields (``arch``, ``loop_bound``, ``max_states``,
    ``deadline_seconds``, ``dedup``, ``strategy``, ``samples``,
    ``sample_depth``, ``seed``) come from :class:`BaseSearchConfig`.
    """

    #: Cap on explored machine states.
    max_states: int = 2_000_000
    #: Maximum number of in-flight instructions per thread.
    window_size: int = 8


@dataclass
class FlatStats(SearchStats):
    """Flat explorer diagnostics, extending the kernel's shared stats."""

    states: int = 0
    transitions: int = 0
    restarts: int = 0
    #: Backend-representation diagnostics (left 0 by the object backend).
    interned_keys: int = 0
    intern_hits: int = 0
    step_memo_hits: int = 0
    step_memo_misses: int = 0

    def describe(self) -> str:
        return (
            f"states: {self.states}, transitions: {self.transitions}, "
            f"restarts: {self.restarts}, dedup hits: {self.dedup_hits}, "
            f"truncated: {self.truncated}, time: {self.elapsed_seconds:.3f}s"
        ) + self.sampling_suffix()


@dataclass
class FlatResult:
    outcomes: OutcomeSet
    stats: FlatStats
    program: Program


# ---------------------------------------------------------------------------
# Helpers over statements
# ---------------------------------------------------------------------------


def _split_head(stmt: Stmt) -> tuple[Optional[Stmt], Stmt]:
    stmt = normalise(stmt)
    if isinstance(stmt, Skip):
        return None, stmt
    if isinstance(stmt, Seq):
        head, rest = _split_head(stmt.first)
        if head is None:
            return _split_head(stmt.second)
        tail = stmt.second if isinstance(rest, Skip) else Seq(rest, stmt.second)
        return head, tail
    return stmt, Skip()


def _entry_kind(stmt: Stmt) -> str:
    if isinstance(stmt, Load):
        return "load"
    if isinstance(stmt, Store):
        return "store"
    if isinstance(stmt, Assign):
        return "assign"
    if isinstance(stmt, Fence):
        return "fence"
    if isinstance(stmt, Isb):
        return "isb"
    if isinstance(stmt, If):
        return "branch"
    raise TypeError(f"cannot fetch statement {stmt!r}")


# ---------------------------------------------------------------------------
# Ordering conditions
# ---------------------------------------------------------------------------


def _earlier_blocks_load(thread: FlatThread, index: int, addr) -> bool:
    """May the load at ``index`` (address ``addr``) execute now?"""
    for j, earlier in enumerate(thread.window[:index]):
        if earlier.done:
            continue
        stmt = earlier.stmt
        if earlier.kind == "fence" and isinstance(stmt, Fence):
            if stmt.after.includes(FenceSet.R):
                return True
        elif earlier.kind == "isb":
            return True
        elif earlier.kind == "load" and isinstance(stmt, Load):
            if stmt.kind.is_acquire:
                return True
            if entry_address(thread, j) == addr:
                return True
        elif earlier.kind == "store" and isinstance(stmt, Store):
            if entry_address(thread, j) == addr:
                # Handled by forwarding when data is ready; block otherwise.
                if try_eval(stmt.data, window_regs(thread, j)) is None:
                    return True
    return False


def _earlier_blocks_store(thread: FlatThread, index: int, addr, release: bool) -> bool:
    """May the store at ``index`` propagate now?"""
    if unresolved_branch_before(thread, index):
        return True
    for j, earlier in enumerate(thread.window[:index]):
        stmt = earlier.stmt
        if earlier.kind in ("load", "store") and entry_address(thread, j) is None and not earlier.done:
            # Stores wait for the addresses of all po-earlier accesses.
            return True
        if earlier.done:
            continue
        if earlier.kind == "fence" and isinstance(stmt, Fence):
            if stmt.after.includes(FenceSet.W):
                return True
        elif earlier.kind == "isb":
            return True
        elif earlier.kind == "load" and isinstance(stmt, Load):
            if stmt.kind.is_acquire or release:
                return True
            if entry_address(thread, j) == addr:
                return True
        elif earlier.kind == "store" and isinstance(stmt, Store):
            if release:
                return True
            if entry_address(thread, j) == addr:
                return True
    return False


def _fence_ready(thread: FlatThread, index: int, fence: Fence) -> bool:
    for j, earlier in enumerate(thread.window[:index]):
        if earlier.done:
            continue
        if earlier.kind == "load" and fence.before.includes(FenceSet.R):
            return False
        if earlier.kind == "store" and fence.before.includes(FenceSet.W):
            return False
    return True


def _forwarded_value(thread: FlatThread, index: int, addr):
    """Value forwarded from the nearest earlier same-address store, if any."""
    for j in range(index - 1, -1, -1):
        earlier = thread.window[j]
        if earlier.kind != "store":
            continue
        stmt = earlier.stmt
        if entry_address(thread, j) != addr:
            continue
        return try_eval(stmt.data, window_regs(thread, j))
    return None


# ---------------------------------------------------------------------------
# Transitions
# ---------------------------------------------------------------------------


def _retire(thread: FlatThread) -> FlatThread:
    """Retire the completed prefix of the window into the register file."""
    regs = thread.reg_dict()
    window = list(thread.window)
    while window and window[0].done:
        entry = window.pop(0)
        stmt = entry.stmt
        if entry.kind in ("assign", "load") and isinstance(stmt, (Assign, Load)):
            regs[stmt.reg] = entry.value
        elif entry.kind == "store" and isinstance(stmt, Store):
            if stmt.exclusive and stmt.succ_reg is not None:
                regs[stmt.succ_reg] = VSUCC if entry.success else VFAIL
    return replace(thread, regs=tuple(sorted(regs.items())), window=tuple(window))


def _update_entry(thread: FlatThread, index: int, entry: WindowEntry) -> FlatThread:
    window = list(thread.window)
    window[index] = entry
    return replace(thread, window=tuple(window))


def thread_transitions(
    thread: FlatThread, state: FlatState, config: FlatConfig
) -> Iterator[tuple[str, FlatThread, Optional[tuple]]]:
    """Enabled transitions of one thread: ``(label, thread', write)``.

    Threads interact only through the flat storage, so the relation
    depends on ``state`` solely via ``storage_value``/``storage_version``
    — the packed backend exploits this by memoising per ``(thread,
    storage)`` pair.  The yielded thread has already retired its
    completed window prefix; ``write`` is the ``(address, value)``
    propagated to storage, or ``None``.
    """
    # ---- fetch -----------------------------------------------------------
    head, rest = _split_head(thread.continuation)
    if head is not None and len(thread.window) < config.window_size:
        if isinstance(head, If):
            for taken in (True, False):
                branch_stmt = head.then if taken else head.orelse
                other_stmt = head.orelse if taken else head.then
                entry = WindowEntry(
                    "branch",
                    head,
                    alt_continuation=normalise(Seq(other_stmt, rest)),
                    speculated_taken=taken,
                )
                new_thread = replace(
                    thread,
                    window=thread.window + (entry,),
                    continuation=normalise(Seq(branch_stmt, rest)),
                )
                yield "fetch-branch", _retire(new_thread), None
        else:
            entry = WindowEntry(_entry_kind(head), head)
            new_thread = replace(thread, window=thread.window + (entry,), continuation=rest)
            yield "fetch", _retire(new_thread), None

    # ---- execute / resolve -----------------------------------------------
    for index, entry in enumerate(thread.window):
        if entry.done:
            continue
        stmt = entry.stmt
        regs = window_regs(thread, index)

        if entry.kind == "assign" and isinstance(stmt, Assign):
            value = try_eval(stmt.expr, regs)
            if value is None:
                continue
            new_thread = _update_entry(thread, index, replace(entry, done=True, value=value))
            yield "execute-assign", _retire(new_thread), None

        elif entry.kind == "load" and isinstance(stmt, Load):
            addr = try_eval(stmt.addr, regs)
            if addr is None or _earlier_blocks_load(thread, index, addr):
                continue
            forwarded = _forwarded_value(thread, index, addr)
            value = forwarded if forwarded is not None else state.storage_value(addr)
            new_thread = _update_entry(thread, index, replace(entry, done=True, value=value))
            if stmt.exclusive:
                new_thread = replace(
                    new_thread, reservation=(addr, state.storage_version(addr))
                )
            yield "execute-load", _retire(new_thread), None

        elif entry.kind == "store" and isinstance(stmt, Store):
            addr = try_eval(stmt.addr, regs)
            data = try_eval(stmt.data, regs)
            if stmt.exclusive:
                # Failure is always possible once the entry is fetched.
                failed = _update_entry(thread, index, replace(entry, done=True, success=False))
                failed = replace(failed, reservation=None)
                yield "sc-fail", _retire(failed), None
            if addr is None or data is None:
                continue
            release = stmt.kind.is_release
            if _earlier_blocks_store(thread, index, addr, release):
                continue
            if stmt.exclusive:
                reservation = thread.reservation
                if (
                    reservation is None
                    or reservation[0] != addr
                    or state.storage_version(addr) != reservation[1]
                ):
                    continue
                new_thread = _update_entry(
                    thread, index, replace(entry, done=True, success=True)
                )
                new_thread = replace(new_thread, reservation=None)
                yield "sc-success", _retire(new_thread), (addr, data)
            else:
                new_thread = _update_entry(
                    thread, index, replace(entry, done=True, success=True)
                )
                yield "execute-store", _retire(new_thread), (addr, data)

        elif entry.kind == "fence" and isinstance(stmt, Fence):
            if _fence_ready(thread, index, stmt):
                new_thread = _update_entry(thread, index, replace(entry, done=True))
                yield "execute-fence", _retire(new_thread), None

        elif entry.kind == "isb":
            if not unresolved_branch_before(thread, index):
                new_thread = _update_entry(thread, index, replace(entry, done=True))
                yield "execute-isb", _retire(new_thread), None

        elif entry.kind == "branch" and isinstance(stmt, If):
            value = try_eval(stmt.cond, regs)
            if value is None:
                continue
            taken = value != 0
            if taken == entry.speculated_taken:
                new_thread = _update_entry(
                    thread, index, replace(entry, done=True, value=value)
                )
                yield "resolve-branch", _retire(new_thread), None
            else:
                # Restart: squash the mis-speculated suffix.
                resolved = replace(entry, done=True, value=value, alt_continuation=None)
                new_thread = replace(
                    thread,
                    window=thread.window[:index] + (resolved,),
                    continuation=entry.alt_continuation or Skip(),
                )
                # A squashed load-exclusive must take its monitor with
                # it: the reservation it established would otherwise
                # let a refetched store-exclusive pair with a load
                # that architecturally never happened — an SC that
                # *spuriously succeeds* (e.g. a CAS acting
                # non-atomically across another thread's write).
                # Clearing is always sound: SC may always fail.
                if any(
                    squashed.kind == "load"
                    and squashed.done
                    and isinstance(squashed.stmt, Load)
                    and squashed.stmt.exclusive
                    for squashed in thread.window[index + 1 :]
                ):
                    new_thread = replace(new_thread, reservation=None)
                yield "restart", _retire(new_thread), None


def successors(state: FlatState, config: FlatConfig) -> Iterator[tuple[str, FlatState]]:
    """All transitions enabled in ``state`` (with a restart counter tag)."""
    for tid, thread in enumerate(state.threads):
        for label, new_thread, write in thread_transitions(thread, state, config):
            threads = list(state.threads)
            threads[tid] = new_thread
            new_state = replace(state, threads=tuple(threads))
            if write is not None:
                new_state = new_state.with_write(*write)
            yield label, new_state


def explore_flat(program: Program, config: Optional[FlatConfig] = None) -> FlatResult:
    """Enumerate outcomes under the Flat-style model.

    Exhaustive under ``dfs``/``bfs``; under ``sample`` each walk is one
    random sequence of fetch/execute/resolve transitions run to a final
    state, so the outcome set is a sound under-approximation.
    """
    config = config or FlatConfig()
    start = time.perf_counter()
    stats = FlatStats()
    prepared = program
    if any(has_loops(t) for t in program.threads):
        prepared = unroll_program(program, config.loop_bound)

    # Lazy import: repro.backend imports flat.machine, so the module
    # edge must point backend -> flat only.  The labelled transition
    # relation is injected, keeping the backend package explorer-free.
    from ..backend import make_flat_backend

    backend = make_flat_backend(
        config.backend, prepared, config, stats, successors, thread_transitions
    )
    outcomes = OutcomeSet()

    def expand(packed) -> list:
        if backend.is_final(packed):
            outcomes.add(backend.outcome(packed))
            return []
        return backend.successors(packed)

    kernel = SearchKernel.for_backend(
        backend,
        expand,
        strategy=strategy_for(config),
        max_states=config.max_states,
        deadline_seconds=config.deadline_seconds,
        dedup=config.dedup,
    )
    kernel.run([backend.initial()])
    stats.states += kernel.stats.states
    stats.transitions += kernel.stats.transitions
    kernel.finish(stats)
    backend.finalise(stats, model="flat")
    stats.elapsed_seconds = time.perf_counter() - start
    return FlatResult(outcomes, stats, program)


__all__ = [
    "FlatConfig",
    "FlatStats",
    "FlatResult",
    "successors",
    "thread_transitions",
    "explore_flat",
]
