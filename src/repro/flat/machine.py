"""A Flat-style abstract-microarchitectural baseline model (state part).

The paper compares the Promising explorer against the *Flat* operational
model of Pulte, Flur et al. [39], which executes instructions in multiple
steps, out of order, with explicit branch speculation and restarts, over a
flat (multicopy-atomic) storage subsystem.  This module defines the state
of a faithful-in-spirit but simplified model with the same structure:

* each thread *fetches* instructions in program order into an instruction
  window, speculating past unresolved conditional branches;
* window entries *execute* out of order, subject to dependency, coherence
  and barrier conditions;
* writes propagate to the flat storage only when non-speculative;
* a mis-speculated branch discards the instructions fetched after it and
  resumes fetching from the other continuation (restart);
* completed window prefixes *retire* into the committed register file.

The storage associates a monotonically increasing version with every
location so that the load/store-exclusive monitor can detect intervening
writes.  The transition rules live in :mod:`repro.flat.explorer`.

Because every instruction contributes several fine-grained transitions and
speculation multiplies the fetch paths, the reachable state space is far
larger than the Promising model's — the effect Table 2 of the paper
quantifies.  The model is validated against the Promising/axiomatic
verdicts on the basic litmus shapes (``tests/test_flat.py``); it is an
approximation of Flat, not a re-implementation, as recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import Assign, Load, Skip, Stmt, Store
from ..lang.expr import Expr, Value, eval_expr, expr_registers
from ..lang.kinds import Arch, VFAIL, VSUCC
from ..lang.program import Loc, Program
from ..outcomes import Outcome
from ..promising.steps import normalise

#: Marker for "this register's value is not yet available in the window".
UNAVAILABLE = object()


@dataclass(frozen=True)
class WindowEntry:
    """One fetched instruction instance in a thread's reorder window."""

    kind: str  # 'load', 'store', 'assign', 'fence', 'isb', 'branch'
    stmt: Stmt
    #: For branches: the continuation to resume from on mis-speculation.
    alt_continuation: Optional[Stmt] = None
    #: For branches: the speculated direction (True = then-branch).
    speculated_taken: bool = False
    done: bool = False
    #: Result value (loads) / resolved branch condition value.
    value: Optional[Value] = None
    #: Whether an exclusive store succeeded (stores only).
    success: Optional[bool] = None

    def __repr__(self) -> str:
        status = "done" if self.done else "pending"
        return f"<{self.kind} {self.stmt!r} [{status}]>"


@dataclass(frozen=True)
class FlatThread:
    """A thread: committed registers, reorder window, fetch frontier."""

    regs: tuple[tuple[str, Value], ...]
    window: tuple[WindowEntry, ...]
    continuation: Stmt
    #: Exclusives monitor: (location, storage version) of the last load
    #: exclusive, cleared by any store exclusive.
    reservation: Optional[tuple[Loc, int]] = None

    def reg_dict(self) -> dict[str, Value]:
        return dict(self.regs)

    @property
    def finished(self) -> bool:
        return isinstance(normalise(self.continuation), Skip) and not self.window


@dataclass(frozen=True)
class FlatState:
    """A whole-machine state: thread pool plus versioned flat storage."""

    threads: tuple[FlatThread, ...]
    #: Sorted tuples (location, value, version); locations absent hold
    #: their initial value at version 0.
    storage: tuple[tuple[Loc, Value, int], ...]
    initial: tuple[tuple[Loc, Value], ...] = ()

    def storage_value(self, loc: Loc) -> Value:
        for location, value, _version in self.storage:
            if location == loc:
                return value
        return dict(self.initial).get(loc, 0)

    def storage_version(self, loc: Loc) -> int:
        for location, _value, version in self.storage:
            if location == loc:
                return version
        return 0

    def with_write(self, loc: Loc, value: Value) -> "FlatState":
        version = self.storage_version(loc) + 1
        rest = tuple(entry for entry in self.storage if entry[0] != loc)
        return FlatState(
            self.threads,
            tuple(sorted(rest + ((loc, value, version),))),
            self.initial,
        )

    def final_memory(self) -> dict[Loc, Value]:
        values = dict(self.initial)
        for loc, value, _version in self.storage:
            values[loc] = value
        return values

    @property
    def is_final(self) -> bool:
        return all(t.finished for t in self.threads)

    def cache_key(self) -> tuple:
        """Canonical hashable identity for the explorer's visited set.

        The ``initial`` tuple is a per-program constant, so threads plus
        the versioned storage discriminate every reachable state; keeping
        it out of the key lets symmetric interleavings share one entry.

        This is the ``object`` execution backend's visited-set key; the
        ``packed`` backend (:class:`repro.backend.packed.PackedFlatBackend`)
        interns it to a dense integer id once per distinct state, so its
        visited set probes ints instead of re-hashing this deep tuple.
        """
        return (self.threads, self.storage)

    def outcome(self) -> Outcome:
        return Outcome.make([t.reg_dict() for t in self.threads], self.final_memory())


def initial_state(program: Program, arch: Arch) -> FlatState:
    threads = tuple(
        FlatThread(regs=(), window=(), continuation=normalise(stmt))
        for stmt in program.threads
    )
    return FlatState(threads, (), tuple(sorted(program.initial.items())))


# ---------------------------------------------------------------------------
# Register availability inside the window
# ---------------------------------------------------------------------------


def window_regs(thread: FlatThread, upto: int) -> dict[str, object]:
    """Register values visible to window entry number ``upto``.

    The committed register file overlaid with the results of earlier window
    entries; registers written by earlier entries that have not executed
    yet map to :data:`UNAVAILABLE`.
    """
    regs: dict[str, object] = dict(thread.regs)
    for entry in thread.window[:upto]:
        stmt = entry.stmt
        if entry.kind == "assign" and isinstance(stmt, Assign):
            regs[stmt.reg] = entry.value if entry.done else UNAVAILABLE
        elif entry.kind == "load" and isinstance(stmt, Load):
            regs[stmt.reg] = entry.value if entry.done else UNAVAILABLE
        elif entry.kind == "store" and isinstance(stmt, Store):
            if stmt.exclusive and stmt.succ_reg is not None:
                if entry.done:
                    regs[stmt.succ_reg] = VSUCC if entry.success else VFAIL
                else:
                    regs[stmt.succ_reg] = UNAVAILABLE
    return regs


def try_eval(expr: Expr, regs: dict[str, object]) -> Optional[Value]:
    """Evaluate ``expr`` if every register it reads is available."""
    for reg in expr_registers(expr):
        if regs.get(reg, 0) is UNAVAILABLE:
            return None
    concrete = {r: v for r, v in regs.items() if v is not UNAVAILABLE}
    return eval_expr(expr, concrete)  # type: ignore[arg-type]


def unresolved_branch_before(thread: FlatThread, index: int) -> bool:
    """Is some branch before ``index`` still speculative?"""
    return any(e.kind == "branch" and not e.done for e in thread.window[:index])


def entry_address(thread: FlatThread, index: int) -> Optional[Loc]:
    """The resolved address of an access entry, if computable yet."""
    stmt = thread.window[index].stmt
    if isinstance(stmt, (Load, Store)):
        return try_eval(stmt.addr, window_regs(thread, index))
    return None


__all__ = [
    "UNAVAILABLE",
    "WindowEntry",
    "FlatThread",
    "FlatState",
    "initial_state",
    "window_regs",
    "try_eval",
    "unresolved_branch_before",
    "entry_address",
]
