"""Batch-execution engine for litmus jobs (the sweep harness).

The paper's headline experiment — validating the promising model against
the axiomatic one on thousands of generated litmus tests (§7) — is
embarrassingly parallel and repeats largely unchanged work between runs.
This subsystem turns every sweep in the codebase into a batch of
serializable :class:`Job`\\ s pushed through a scheduler with:

* a ``multiprocessing`` worker pool with per-job timeouts and a serial
  fallback (``workers=1``) producing bit-identical results;
* a persistent on-disk :class:`ResultCache` keyed by content fingerprint
  (program + condition + projection + configuration), so warm reruns skip
  all already-computed outcome sets;
* structured JSON sweep reports (per-job timing, outcome counts,
  verdicts, mismatches, cache hit rate) for ``BENCH_*.json`` artifacts.
"""

from .jobs import (
    FINGERPRINT_VERSION,
    MODELS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    Job,
    JobResult,
    JobTimeout,
    execute_job,
    result_from_json,
    result_to_json,
    timeouts_enforceable,
)
from .cache import LruResultCache, ResultCache, open_cache
from .scheduler import BatchStats, WorkerPool, default_workers, run_jobs
from .report import (
    DEDUP_COUNTERS,
    REPORT_SCHEMA_VERSION,
    build_report,
    describe_dedup,
    find_mismatches,
    outcome_set_digest,
    write_report,
)
from .sweep import DEFAULT_MODELS, SweepResult, build_jobs, run_sweep
from .fuzz import (
    CONTAINMENT_PAIRS,
    EQUALITY_PAIRS,
    FUZZ_MODELS,
    FuzzResult,
    build_fuzz_jobs,
    differential_mismatches,
    run_fuzz,
)

__all__ = [
    "FINGERPRINT_VERSION",
    "MODELS",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "Job",
    "JobResult",
    "JobTimeout",
    "execute_job",
    "result_from_json",
    "result_to_json",
    "timeouts_enforceable",
    "LruResultCache",
    "ResultCache",
    "open_cache",
    "BatchStats",
    "WorkerPool",
    "default_workers",
    "run_jobs",
    "DEDUP_COUNTERS",
    "REPORT_SCHEMA_VERSION",
    "build_report",
    "describe_dedup",
    "find_mismatches",
    "outcome_set_digest",
    "write_report",
    "DEFAULT_MODELS",
    "SweepResult",
    "build_jobs",
    "run_sweep",
    "CONTAINMENT_PAIRS",
    "EQUALITY_PAIRS",
    "FUZZ_MODELS",
    "FuzzResult",
    "build_fuzz_jobs",
    "differential_mismatches",
    "run_fuzz",
]
