"""Persistent on-disk cache of job results.

Results are keyed by the job fingerprint (see :meth:`Job.fingerprint`), so
a warm rerun of an agreement battery or a benchmark sweep skips every
already-computed outcome set: the fingerprint covers program, condition,
projection, model, architecture, and the full effective configuration.

Layout: one JSON file per entry, sharded by the first two hex digits of
the fingerprint (``<cache-dir>/ab/abcdef….json``).  Entries are written
atomically (write + rename) so a crashed sweep never leaves a truncated
entry behind; a corrupt or mismatched file is treated as a miss and
overwritten on the next store.
"""

from __future__ import annotations

import dataclasses
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from ..obs import metrics
from ..outcomes import OutcomeSet
from .jobs import Job, JobResult, STATUS_OK, result_from_json, result_to_json

# One shared vocabulary for every cache tier: the disk cache here, the
# LRU below, and the service's in-flight coalescing all label the same
# two counters (layer="disk"|"lru"|"coalesced").
CACHE_REQUESTS = metrics.counter(
    "cache_requests_total", "Cache lookups by layer and outcome.",
    labels=("layer", "outcome"),
)
CACHE_STORES = metrics.counter(
    "cache_stores_total", "Cache stores by layer and outcome.",
    labels=("layer", "outcome"),
)


class ResultCache:
    """Filesystem-backed result cache with hit/miss accounting."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Stores that could not be persisted (full/read-only volume, …).
        #: Surfaced in sweep reports so a cache that silently drops every
        #: entry is visible instead of just "0% hit rate next run".
        self.store_failures = 0

    def _entry_path(self, fingerprint: str) -> Path:
        return self.path / fingerprint[:2] / f"{fingerprint}.json"

    # -- lookup --------------------------------------------------------------
    def get(self, job: Job) -> Optional[JobResult]:
        """Recall the result of ``job``, or ``None`` on a miss."""
        fingerprint = job.fingerprint()
        entry = self._entry_path(fingerprint)
        try:
            data = json.loads(entry.read_text())
            if data.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch")
            result = result_from_json(data)
        except (OSError, KeyError, TypeError, ValueError, AttributeError):
            # Unreadable, schema-drifted, or mismatched entries are
            # misses; the next store overwrites them.
            self.misses += 1
            CACHE_REQUESTS.inc(layer="disk", outcome="miss")
            return None
        # Name and expected verdict are deliberately outside the
        # fingerprint (they don't affect the computed outcome set), so a
        # recalled result must reflect the *incoming* job's annotations —
        # not the ones stored when the entry was written.
        result.name = job.test.name
        result.expected = job.test.expected_verdict(job.arch)
        result.cached = True
        self.hits += 1
        CACHE_REQUESTS.inc(layer="disk", outcome="hit")
        return result

    # -- store ---------------------------------------------------------------
    def put(self, job: Job, result: JobResult) -> bool:
        """Persist an ``ok`` result (errors and timeouts are not cached:
        they depend on machine load and deadlines, not on the job)."""
        if result.status != STATUS_OK:
            CACHE_STORES.inc(layer="disk", outcome="rejected")
            return False
        fingerprint = result.fingerprint or job.fingerprint()
        entry = self._entry_path(fingerprint)
        payload = result_to_json(result)
        payload["fingerprint"] = fingerprint
        # Unique temp name per writer: concurrent sweeps sharing a cache
        # dir must not interleave writes into the same scratch file.
        tmp = entry.with_name(f"{entry.name}.{os.getpid()}.tmp")
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, entry)
        except OSError:
            # A full or read-only cache volume must never sink the sweep
            # that already holds its results in memory; the entry is not
            # persisted, but the failure is counted and reported.
            self.store_failures += 1
            CACHE_STORES.inc(layer="disk", outcome="failure")
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        CACHE_STORES.inc(layer="disk", outcome="stored")
        return True

    # -- maintenance ---------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry (and any orphaned scratch file left by a
        killed writer); returns how many entries were removed."""
        removed = 0
        for entry in self.path.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        for orphan in self.path.glob("*/*.tmp"):
            orphan.unlink(missing_ok=True)
        return removed

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0


class LruResultCache:
    """Process-resident LRU cache of job results, keyed by fingerprint.

    This is the hot layer the exploration service puts in front of the
    persistent :class:`ResultCache`: a bounded in-memory map whose hits
    cost a dict lookup instead of a file read + JSON parse.  Entries are
    evicted least-recently-used once ``capacity`` is exceeded (a ``get``
    refreshes recency); only ``ok`` results are admitted, mirroring the
    disk cache's policy that errors and timeouts are not reusable.

    Like :meth:`ResultCache.get`, a recalled result is rebound to the
    *incoming* job's annotations (name, expected verdict), which live
    outside the fingerprint.  The returned object is a fresh copy, so
    callers may mutate it without corrupting the cached entry.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, JobResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, job: Job) -> Optional[JobResult]:
        """Recall the result of ``job``, or ``None`` on a miss."""
        fingerprint = job.fingerprint()
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            CACHE_REQUESTS.inc(layer="lru", outcome="miss")
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        CACHE_REQUESTS.inc(layer="lru", outcome="hit")
        return dataclasses.replace(
            entry,
            name=job.test.name,
            expected=job.test.expected_verdict(job.arch),
            outcomes=None if entry.outcomes is None else OutcomeSet(entry.outcomes),
            stats=dict(entry.stats),
            cached=True,
        )

    def put(self, job: Job, result: JobResult) -> bool:
        """Admit an ``ok`` result, evicting the least-recently-used entry
        beyond capacity; returns whether the result was stored."""
        if result.status != STATUS_OK:
            CACHE_STORES.inc(layer="lru", outcome="rejected")
            return False
        fingerprint = result.fingerprint or job.fingerprint()
        # Defensive copy, including the mutable outcome set: callers
        # routinely rebind name/expected (and could grow outcomes) on the
        # objects they hold, and that must not reach the cached entry.
        self._entries[fingerprint] = dataclasses.replace(
            result,
            outcomes=None if result.outcomes is None else OutcomeSet(result.outcomes),
            stats=dict(result.stats),
        )
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            CACHE_STORES.inc(layer="lru", outcome="evicted")
        CACHE_STORES.inc(layer="lru", outcome="stored")
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0


def open_cache(cache: Union[None, str, Path, ResultCache]) -> Optional[ResultCache]:
    """Coerce a ``--cache-dir``-style argument into a :class:`ResultCache`."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


__all__ = ["CACHE_REQUESTS", "CACHE_STORES", "LruResultCache", "ResultCache", "open_cache"]
