"""Cross-model differential fuzzing over the cycle-generated corpus.

This is the scaled-up §7 experiment: pump a machine-generated litmus
corpus through every model on both architectures and treat any
disagreement as a counterexample.  The comparison policy is per model
pair, because the models make different promises:

* ``promising`` vs ``axiomatic`` — must produce **equal** projected
  outcome sets (the paper's equivalence theorem, checked experimentally);
* ``promising`` vs ``promising-naive`` — must be **equal** (the
  promise-first exploration strategy is a pure optimisation);
* ``flat`` vs ``promising`` — flat outcomes must be a **subset** of
  promising ones (Flat is the weaker operational reference; promising
  deliberately admits more relaxed behaviour, so flat-only outcomes are
  bugs while promising-only outcomes are explained differences).

Pairs involving a failed, timed-out, or truncated run are skipped (the
per-job status still lands in the report).  Runs produced by the
``sample`` strategy are sound *under-approximations* — every sampled
outcome is genuinely reachable — so a pair with exactly one sampled side
is checked for **containment** (sampled ⊆ exhaustive), never equality,
and a pair where both sides sampled proves nothing and is skipped.
Every counterexample carries the reproducing test source — the program
listing, the condition, and the originating cycle spec — so a mismatch
can be replayed in isolation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..axiomatic.model import AxiomaticConfig
from ..flat.explorer import FlatConfig
from ..lang.kinds import Arch
from ..obs.logging import get_logger, log_event
from ..obs.tracing import span
from ..promising.exhaustive import ExploreConfig

_log = get_logger("harness.fuzz")

if TYPE_CHECKING:  # litmus imports harness (runner); keep ours lazy.
    from ..distrib.coordinator import DistribConfig
    from ..litmus.test import LitmusTest
from .cache import ResultCache, open_cache
from .jobs import Job, JobResult
from .report import build_report, describe_dedup, write_report
from .scheduler import BatchStats, run_jobs

#: Default model line-up of the differential battery.
FUZZ_MODELS = ("promising", "promising-naive", "axiomatic", "flat")

#: Model pairs whose projected outcome sets must be identical.
EQUALITY_PAIRS = (("promising", "axiomatic"), ("promising", "promising-naive"))

#: (subset, superset) pairs: the first model must not invent outcomes.
CONTAINMENT_PAIRS = (("flat", "promising"),)


def _comparable(result: Optional[JobResult]) -> bool:
    return (
        result is not None
        and result.ok
        and result.outcomes is not None
        and not result.stats.get("truncated")
    )


def _test_source(job: Job) -> str:
    """The reproducing source of a counterexample's test."""
    lines = [job.test.program.describe()]
    if job.test.description:
        lines.insert(0, job.test.description)
    lines.append(f"exists {job.test.condition!r}")
    return "\n".join(lines)


@dataclass
class FuzzResult:
    """Everything one differential fuzzing run produced."""

    jobs: list[Job]
    results: list[JobResult]
    report: dict
    stats: BatchStats
    wall_seconds: float

    @property
    def counterexamples(self) -> list[dict]:
        return self.report["mismatches"]

    @property
    def explained_differences(self) -> int:
        return self.report["extra"]["fuzz"]["explained_differences"]

    @property
    def ok(self) -> bool:
        # A battery whose jobs timed out or crashed proved nothing even
        # when no counterexample surfaced; both must hold for success.
        return self.report["ok"] and not self.counterexamples

    def describe(self) -> str:
        fuzz = self.report["extra"]["fuzz"]
        statuses = ", ".join(
            f"{count} {status}"
            for status, count in sorted(self.report["status_counts"].items())
        )
        lines = [
            f"fuzzed {fuzz['corpus_size']} tests × {'+'.join(fuzz['models'])} × "
            f"{'+'.join(fuzz['archs'])}: {self.report['n_jobs']} jobs ({statuses}) "
            f"in {self.wall_seconds:.1f}s",
            f"  families: {', '.join(fuzz['families'])}",
            f"  cache hit rate {self.report['cache']['hit_rate'] * 100:.0f}%"
            + (
                f", {self.report['cache']['store_failures']} store failures"
                if self.report["cache"].get("store_failures")
                else ""
            ),
            "  " + describe_dedup(self.report),
            f"  counterexamples: {len(self.counterexamples)}"
            f" (flat-only outcomes explained away: {fuzz['explained_differences']})",
        ]
        truncated = self.report.get("truncated_jobs", 0)
        if truncated:
            lines.append(
                f"  WARNING: {truncated} truncated job(s) skipped by every "
                "comparison — their verdicts are unverified"
            )
        sampled = self.report.get("sampled_jobs", 0)
        if sampled:
            lines.append(
                f"  note: {sampled} sampled job(s) compared by containment "
                "(sampled ⊆ exhaustive), never equality"
            )
        for ce in self.counterexamples:
            lines.append(
                f"  COUNTEREXAMPLE {ce['test']} [{ce['arch']}] "
                f"{ce['models'][0]} vs {ce['models'][1]} ({ce['kind']})"
            )
            lines.extend("    " + line for line in ce["source"].splitlines())
        return "\n".join(lines)


def differential_mismatches(
    jobs: Sequence[Job], results: Sequence[JobResult]
) -> tuple[list[dict], int]:
    """Policy-aware cross-model comparison.

    Returns the counterexample entries plus the count of *explained*
    differences (flat missing relaxed outcomes that promising admits).
    Besides the model-pair policies, any model contradicting a test's
    attached expected verdict (the axiomatic oracle, see
    :func:`repro.litmus.synth.attach_expected`) is a counterexample too —
    so a single-model fuzz against a stamped corpus still fails loudly.

    Grouping is by test *content* (program + condition), not by object
    identity or name: jobs built from equal-but-distinct test objects
    still pair up (identity grouping would silently compare nothing — a
    vacuous pass), while distinct programs sharing a name are never
    cross-compared.
    """
    from ..litmus.synth import canonical_fingerprint

    by_test: dict[tuple[str, str], dict[str, tuple[Job, JobResult]]] = {}
    for job, result in zip(jobs, results):
        key = (canonical_fingerprint(job.test), job.arch.value)
        by_test.setdefault(key, {})[job.model] = (job, result)

    counterexamples: list[dict] = []
    explained = 0
    for (_test_id, arch), group in by_test.items():
        def entry(models: tuple[str, str], kind: str, only_first: int, only_second: int, job: Job) -> dict:
            return {
                "test": job.test.name,
                "arch": arch,
                "models": list(models),
                "kind": kind,
                "only_first": only_first,
                "only_second": only_second,
                "source": _test_source(job),
            }

        for pair in EQUALITY_PAIRS:
            if pair[0] not in group or pair[1] not in group:
                continue
            (job_a, a), (_job_b, b) = group[pair[0]], group[pair[1]]
            if not (_comparable(a) and _comparable(b)):
                continue
            if a.sampled and b.sampled:
                # Two under-approximations constrain each other in
                # neither direction; nothing to check.
                continue
            set_a, set_b = set(a.outcomes), set(b.outcomes)
            if a.sampled or b.sampled:
                # Sampled outcomes are genuinely reachable, so they must
                # appear in the exhaustive side's set; equality is never
                # required of a sample.
                sampled_set, full_set = (set_a, set_b) if a.sampled else (set_b, set_a)
                if not sampled_set <= full_set:
                    counterexamples.append(
                        entry(pair, "sampled-outcomes-not-contained",
                              len(set_a - set_b), len(set_b - set_a), job_a)
                    )
            elif set_a != set_b:
                counterexamples.append(
                    entry(pair, "outcome-sets-differ",
                          len(set_a - set_b), len(set_b - set_a), job_a)
                )
        for sub_name, super_name in CONTAINMENT_PAIRS:
            if sub_name not in group or super_name not in group:
                continue
            (job_sub, sub), (_job_sup, sup) = group[sub_name], group[super_name]
            if not (_comparable(sub) and _comparable(sup)):
                continue
            if sup.sampled:
                # The superset side under-approximates: containment can
                # no longer be falsified soundly.
                continue
            sub_set, super_set = set(sub.outcomes), set(sup.outcomes)
            extra = sub_set - super_set
            if extra:
                # Valid even when ``sub`` sampled: sampled flat outcomes
                # are real flat outcomes and must still be ⊆ promising.
                counterexamples.append(
                    entry((sub_name, super_name), "subset-violated",
                          len(extra), len(super_set - sub_set), job_sub)
                )
            elif super_set - sub_set and not sub.sampled:
                explained += 1
        for model, (job, result) in sorted(group.items()):
            if not (_comparable(result) and result.matches_expectation is False):
                continue
            if model == "flat" and result.verdict.value == "forbidden":
                # Flat is intentionally weaker: missing a relaxed outcome
                # the oracle allows is the explained direction.  Only a
                # flat-*allowed* against an oracle-*forbidden* (invented
                # outcome) is a bug, and that also trips subset-violated.
                continue
            counterexamples.append(
                entry((model, "expected"), "expected-verdict-mismatch", 0, 0, job)
            )
    return counterexamples, explained


def build_fuzz_jobs(
    tests: Sequence[LitmusTest],
    models: Sequence[str] = FUZZ_MODELS,
    archs: Sequence[Arch] = (Arch.ARM, Arch.RISCV),
    *,
    explore_config: Optional[ExploreConfig] = None,
    axiomatic_config: Optional[AxiomaticConfig] = None,
    flat_config: Optional[FlatConfig] = None,
) -> list[Job]:
    """One job per test × model × architecture, grouped per test."""
    return [
        Job(
            test=test,
            model=model,
            arch=arch,
            explore_config=explore_config,
            axiomatic_config=axiomatic_config,
            flat_config=flat_config,
        )
        for test in tests
        for arch in archs
        for model in models
    ]


def run_fuzz(
    tests: Optional[Sequence[LitmusTest]] = None,
    models: Sequence[str] = FUZZ_MODELS,
    archs: Sequence[Arch] = (Arch.ARM, Arch.RISCV),
    *,
    families: Optional[Sequence[str]] = None,
    max_tests: Optional[int] = None,
    workers: int = 1,
    timeout: Optional[float] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    report_path: Union[None, str, Path] = None,
    name: str = "fuzz-battery",
    explore_config: Optional[ExploreConfig] = None,
    axiomatic_config: Optional[AxiomaticConfig] = None,
    flat_config: Optional[FlatConfig] = None,
    distrib: Optional[DistribConfig] = None,
) -> FuzzResult:
    """Run the differential fuzzing battery and (optionally) write a report.

    With ``tests=None`` the corpus is the deterministic cycle-generated
    battery (optionally restricted to ``families`` and truncated to
    ``max_tests``).  All jobs — every architecture and model — go through
    the scheduler as one batch, so the worker pool stays saturated.  With
    ``distrib`` set the batch runs on a distributed work backend instead;
    outcome digests are bit-identical between the two paths.
    """
    from ..litmus.synth import generate_cycle_battery

    if tests is None:
        tests = generate_cycle_battery(families=families, max_tests=max_tests)
    tests = list(tests)

    cache = open_cache(cache)
    jobs = build_fuzz_jobs(
        tests,
        models,
        archs,
        explore_config=explore_config,
        axiomatic_config=axiomatic_config,
        flat_config=flat_config,
    )
    families_of_corpus = sorted(
        {t.description.split(":")[0].removeprefix("cycle ") for t in tests if t.description}
    )
    log_event(
        _log, "fuzz started",
        fuzz=name, corpus_size=len(tests), n_jobs=len(jobs),
        families=families_of_corpus, models=sorted(set(models)),
        archs=[arch.value for arch in archs], workers=workers,
    )
    stats = BatchStats()
    distrib_info = None
    start = time.perf_counter()
    with span("fuzz", name=name, jobs=len(jobs)):
        if distrib is not None:
            from ..distrib.coordinator import run_distributed

            run = run_distributed(jobs, config=distrib, timeout=timeout, cache=cache, stats=stats)
            results, distrib_info = run.results, run.info
        else:
            results = run_jobs(jobs, workers=workers, timeout=timeout, cache=cache, stats=stats)
    wall = time.perf_counter() - start

    counterexamples, explained = differential_mismatches(jobs, results)
    model_seconds: dict[str, float] = {}
    for result in results:
        model_seconds[result.model] = (
            model_seconds.get(result.model, 0.0) + result.elapsed_seconds
        )
    families_seen = families_of_corpus
    report = build_report(
        jobs,
        results,
        name=name,
        wall_seconds=wall,
        cache=cache,
        mismatches=counterexamples,
        extra={
            "workers": workers,
            "timeout_seconds": timeout,
            **({"distrib": distrib_info} if distrib_info is not None else {}),
            "fuzz": {
                "corpus_size": len(tests),
                "families": families_seen,
                "models": sorted(set(models)),
                "archs": [arch.value for arch in archs],
                "model_seconds": {m: round(s, 3) for m, s in sorted(model_seconds.items())},
                "explained_differences": explained,
                "counterexample_count": len(counterexamples),
            },
        },
    )
    report["ok"] = report["ok"] and not counterexamples
    if report_path is not None:
        write_report(report, report_path)
    log_event(
        _log, "fuzz finished",
        fuzz=name, n_jobs=len(jobs), seconds=round(wall, 3),
        statuses=dict(stats.statuses), counterexamples=len(counterexamples),
        explained_differences=explained,
    )
    return FuzzResult(jobs=jobs, results=results, report=report, stats=stats, wall_seconds=wall)


__all__ = [
    "FUZZ_MODELS",
    "EQUALITY_PAIRS",
    "CONTAINMENT_PAIRS",
    "FuzzResult",
    "differential_mismatches",
    "build_fuzz_jobs",
    "run_fuzz",
]
