"""Serializable litmus jobs and their results.

A :class:`Job` is one unit of sweep work: a litmus test to run under one
model (promising, promising-naive, axiomatic, or flat) on one architecture
with an explicit configuration.  Jobs are plain picklable dataclasses so
the scheduler can ship them to worker processes, and they carry a stable
content *fingerprint* (program + condition + projection + effective
configuration) that keys the persistent result cache.

:func:`execute_job` is the single execution path: every sweep in the
codebase — ``check_agreement``, ``compare_models``, the CLI, the
benchmarks — ultimately runs jobs through it, so serial and parallel runs
are bit-identical by construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from ..axiomatic.model import AxiomaticConfig, enumerate_axiomatic_outcomes
from ..flat.explorer import FlatConfig, explore_flat
from ..lang.kinds import Arch
from ..lang.program import Loc, Program, TId
from ..obs import metrics
from ..obs.logging import bind
from ..outcomes import Outcome, OutcomeSet
from ..promising.exhaustive import ExploreConfig, explore, explore_naive

_JOBS_EXECUTED = metrics.counter(
    "jobs_executed_total", "Jobs run through execute_job, by model and status.",
    labels=("model", "status"),
)
_JOB_SECONDS = metrics.histogram(
    "job_execute_seconds", "Wall time per executed job.", labels=("model",)
)

if TYPE_CHECKING:  # litmus imports harness (runner); keep ours lazy.
    from ..litmus.test import LitmusTest, Verdict

#: Bumped whenever the result format or the model semantics change in a way
#: that invalidates previously cached results.
#: v2: explorer configs carry search-strategy fields (``strategy``,
#: ``samples``, ``sample_depth``, ``seed``, ``deadline_seconds``), so a
#: sampled (or otherwise bounded) run keys a *different* cache entry and
#: can never shadow an exhaustive result.
FINGERPRINT_VERSION = 2

#: Models a job can request.
MODELS = ("promising", "promising-naive", "axiomatic", "flat")

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


class JobTimeout(Exception):
    """Raised inside a job when its per-job deadline expires."""


def timeouts_enforceable() -> bool:
    """Whether per-job deadlines can actually fire on this platform.

    Deadlines use ``SIGALRM``, which only exists on POSIX and only fires
    on a main thread; callers should warn rather than silently run
    unbounded when this is false.
    """
    return hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread()


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Bound the wrapped block to ``seconds`` of wall time (best effort).

    Uses ``SIGALRM``, so it only engages on the main thread of a process —
    which is where both the serial runner and the pool workers execute
    jobs.  Elsewhere (or with no timeout) it is a no-op.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class Job:
    """One litmus test × model × architecture × configuration."""

    test: LitmusTest
    model: str
    arch: Arch = Arch.ARM
    explore_config: Optional[ExploreConfig] = None
    axiomatic_config: Optional[AxiomaticConfig] = None
    flat_config: Optional[FlatConfig] = None
    #: Projection override: ``((tid, (reg, ...)), ...)`` and ``(loc, ...)``.
    #: When ``None`` the observables are derived from the test condition,
    #: exactly as the litmus runner does.
    project_registers: Optional[tuple[tuple[TId, tuple[str, ...]], ...]] = None
    project_locations: Optional[tuple[Loc, ...]] = None

    def __post_init__(self) -> None:
        if self.model not in MODELS:
            raise ValueError(f"unknown model {self.model!r}; expected one of {MODELS}")

    # -- construction helpers ------------------------------------------------
    @classmethod
    def for_program(
        cls,
        program: Program,
        model: str,
        arch: Arch = Arch.ARM,
        *,
        explore_config: Optional[ExploreConfig] = None,
        axiomatic_config: Optional[AxiomaticConfig] = None,
        flat_config: Optional[FlatConfig] = None,
        name: Optional[str] = None,
    ) -> "Job":
        """Wrap a bare program (a workload, say) as a job.

        The projection covers the program's own registers and named
        locations — the same observables :func:`repro.tools.observables`
        computes — so workload safety checkers see every register and
        memory cell they inspect.
        """
        from ..litmus.conditions import TrueCond
        from ..litmus.test import LitmusTest
        from ..tools.compare import observables

        test = LitmusTest(name or program.name or "<anonymous>", program, TrueCond())
        reg_map, loc_list = observables(program)
        regs = tuple((tid, tuple(reg_map[tid])) for tid in program.thread_ids)
        locs = tuple(loc_list)
        return cls(
            test=test,
            model=model,
            arch=arch,
            explore_config=explore_config,
            axiomatic_config=axiomatic_config,
            flat_config=flat_config,
            project_registers=regs,
            project_locations=locs,
        )

    # -- observables ---------------------------------------------------------
    def observables(self) -> tuple[dict[TId, list[str]], list[Loc]]:
        """The registers/locations the outcome sets are projected onto.

        Each override is independent: leaving one ``None`` derives that
        side from the test condition while the other stays explicit.
        """
        if self.project_registers is not None:
            regs = {tid: sorted(names) for tid, names in self.project_registers}
        else:
            regs = {
                tid: sorted(names)
                for tid, names in self.test.observable_registers().items()
            }
        if self.project_locations is not None:
            locs = sorted(self.project_locations)
        else:
            locs = sorted(self.test.observable_locations())
        return regs, locs

    # -- effective configurations -------------------------------------------
    # ``dataclasses.replace`` (rather than field-by-field copies) so a
    # config gaining a new field is automatically carried into execution
    # and the cache fingerprint.
    def effective_explore_config(self) -> ExploreConfig:
        base = self.explore_config or ExploreConfig()
        _, locs = self.observables()
        return dataclasses.replace(
            base,
            arch=self.arch,
            shared_locations=tuple(sorted(set(base.shared_locations) | set(locs))),
        )

    def effective_axiomatic_config(self) -> AxiomaticConfig:
        base = self.axiomatic_config or AxiomaticConfig()
        return dataclasses.replace(base, arch=self.arch)

    def effective_flat_config(self) -> FlatConfig:
        base = self.flat_config or FlatConfig()
        return dataclasses.replace(base, arch=self.arch)

    # -- fingerprint ---------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash identifying this job's semantics.

        Covers the program text (threads + initial memory), the condition,
        the projection, the model/arch, and every field of the effective
        configuration — so any change that could change the outcome set
        (or its projection) yields a fresh key.  Memoized: the scheduler,
        the cache, and the executor each consult it.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        if self.model in ("promising", "promising-naive"):
            cfg: object = self.effective_explore_config()
        elif self.model == "axiomatic":
            cfg = self.effective_axiomatic_config()
        else:
            cfg = self.effective_flat_config()
        # The execution backend changes the state representation, never the
        # outcome set (conformance-tested), and defaulted to "object" before
        # the field existed — omit it at the default so fingerprints (and
        # thus the result cache) are unchanged for every pre-seam job, while
        # a non-default backend still keys its own cache entries.
        cfg_items = sorted(
            (f.name, repr(getattr(cfg, f.name)))
            for f in dataclasses.fields(cfg)
            if not (f.name == "backend" and getattr(cfg, f.name) == "object")
        )
        regs, locs = self.observables()
        parts = [
            f"v{FINGERPRINT_VERSION}",
            self.model,
            self.arch.value,
            repr(self.test.program.threads),
            repr(sorted(self.test.program.initial.items())),
            self.test.condition.canonical(),
            repr(sorted(regs.items())),
            repr(locs),
            repr(cfg_items),
        ]
        digest = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest


@dataclass
class JobResult:
    """Outcome of executing (or recalling) one :class:`Job`."""

    name: str
    model: str
    arch: Arch
    status: str
    outcomes: Optional[OutcomeSet]
    verdict: Optional[Verdict]
    expected: Optional[Verdict]
    elapsed_seconds: float
    stats: dict = field(default_factory=dict)
    error: str = ""
    fingerprint: str = ""
    cached: bool = False
    # Transport-only observability fields.  Deliberately excluded from
    # result_to_json (cache entries and reports stay deterministic and
    # replay-free): a recalled result must never re-merge old metrics.
    #: Seconds this job waited between scheduling and execution start
    #: (set by the pool path; ``None`` when not measured).
    queue_seconds: Optional[float] = None
    #: Metrics-registry delta accumulated while executing this job in a
    #: worker process; the parent merges it and clears the field.
    metrics_delta: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def truncated(self) -> bool:
        """Whether the exploration hit a state/fuel/deadline budget.

        A truncated run's outcome set is a (sound) under-approximation,
        so its verdict is *not verified* — reports and comparisons must
        treat it as a warning, never as a clean result.
        """
        return bool(self.stats.get("truncated"))

    @property
    def strategy(self) -> Optional[str]:
        """The search strategy that produced this result (``None`` for
        models without one, e.g. axiomatic enumeration)."""
        return self.stats.get("strategy")

    @property
    def sampled(self) -> bool:
        """Whether the run used a non-exhaustive (sampling) strategy.

        Sampled outcome sets are sound under-approximations: every
        outcome found is genuinely reachable, but absence proves
        nothing.  Comparisons must therefore use containment, never
        equality, and a ``forbidden`` verdict is unverified.
        """
        from ..explore import is_exhaustive

        strategy = self.stats.get("strategy")
        return strategy is not None and not is_exhaustive(strategy)

    @property
    def warning(self) -> Optional[str]:
        if self.truncated:
            return (
                "exploration truncated (max_states/cert_fuel/deadline budget "
                "hit): outcome set may be incomplete, verdict unverified"
            )
        if self.sampled:
            return (
                f"sampled exploration (strategy={self.strategy}): outcome set "
                "is a statistical under-approximation; 'forbidden' verdicts "
                "are unverified"
            )
        return None

    @property
    def matches_expectation(self) -> Optional[bool]:
        # A truncated exploration may simply not have reached the outcome
        # that decides the verdict; refuse to confirm or deny.
        if self.expected is None or self.verdict is None or self.truncated:
            return None
        if self.sampled:
            # One-sided check: a sampled 'allowed' rests on a concrete
            # witness, so it can confirm an expected 'allowed' or expose
            # an outcome the oracle forbids; a sampled 'forbidden' may
            # just mean the walks missed the witness — abstain.
            from ..litmus.test import Verdict

            if self.verdict is Verdict.ALLOWED:
                return self.verdict is self.expected
            return None
        return self.verdict is self.expected

    def describe(self) -> str:
        tail = self.status if not self.ok else (self.verdict.value if self.verdict else "-")
        if self.ok and self.truncated:
            tail += "!"
        return (
            f"{self.name:28s} {self.model:16s} {self.arch.value:7s} "
            f"{tail:9s} {self.elapsed_seconds:.3f}s{' (cached)' if self.cached else ''}"
            f"{' [TRUNCATED]' if self.truncated else ''}"
            f"{' [SAMPLED]' if self.sampled else ''}"
        )


def _stats_dict(stats: object) -> dict:
    """Explorer diagnostics as a JSON-friendly dict.

    Wall time is dropped (``JobResult.elapsed_seconds`` records it): the
    remaining counters are deterministic, so results compare bit-identical
    between serial, parallel, and cached runs.
    """
    out = {}
    for f in dataclasses.fields(stats):
        if f.name == "elapsed_seconds":
            continue
        value = getattr(stats, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def execute_job(
    job: Job,
    timeout: Optional[float] = None,
    *,
    capture_errors: bool = True,
) -> JobResult:
    """Run one job to completion, capturing timeouts and errors.

    With ``capture_errors`` (the scheduler's mode) a failing or timed-out
    job yields a ``JobResult`` with the corresponding status instead of
    raising, so one bad job never poisons a batch.

    Every log record emitted while the job runs carries the job's
    fingerprint prefix and model (contextvars correlation), and the
    job-level counters/histograms are recorded here — once per job.
    """
    with bind(job=job.fingerprint()[:12], model=job.model, test=job.test.name):
        result = _execute_job_inner(job, timeout, capture_errors=capture_errors)
    _JOBS_EXECUTED.inc(model=job.model, status=result.status)
    _JOB_SECONDS.observe(result.elapsed_seconds, model=job.model)
    return result


def _execute_job_inner(
    job: Job,
    timeout: Optional[float],
    *,
    capture_errors: bool,
) -> JobResult:
    regs, locs = job.observables()
    start = time.perf_counter()
    try:
        with _deadline(timeout):
            if job.model in ("promising", "promising-naive"):
                cfg = job.effective_explore_config()
                runner = explore_naive if job.model == "promising-naive" else explore
                result = runner(job.test.program, cfg)
            elif job.model == "axiomatic":
                result = enumerate_axiomatic_outcomes(
                    job.test.program, job.effective_axiomatic_config()
                )
            else:
                result = explore_flat(job.test.program, job.effective_flat_config())
    except JobTimeout as exc:
        return JobResult(
            name=job.test.name,
            model=job.model,
            arch=job.arch,
            status=STATUS_TIMEOUT,
            outcomes=None,
            verdict=None,
            expected=job.test.expected_verdict(job.arch),
            elapsed_seconds=time.perf_counter() - start,
            error=str(exc),
            fingerprint=job.fingerprint(),
        )
    except Exception as exc:
        if not capture_errors:
            raise
        return JobResult(
            name=job.test.name,
            model=job.model,
            arch=job.arch,
            status=STATUS_ERROR,
            outcomes=None,
            verdict=None,
            expected=job.test.expected_verdict(job.arch),
            elapsed_seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=4)}",
            fingerprint=job.fingerprint(),
        )
    elapsed = time.perf_counter() - start
    outcomes = result.outcomes.project(regs, locs)
    return JobResult(
        name=job.test.name,
        model=job.model,
        arch=job.arch,
        status=STATUS_OK,
        outcomes=outcomes,
        verdict=job.test.evaluate(outcomes),
        expected=job.test.expected_verdict(job.arch),
        elapsed_seconds=elapsed,
        stats=_stats_dict(result.stats),
        fingerprint=job.fingerprint(),
    )


# ---------------------------------------------------------------------------
# JSON (de)serialization — shared by the cache and the report writer.
# ---------------------------------------------------------------------------


def outcome_to_json(outcome: Outcome) -> dict:
    return {
        "registers": [[[reg, value] for reg, value in regs] for regs in outcome.registers],
        "memory": [[loc, value] for loc, value in outcome.memory],
    }


def outcome_from_json(data: Mapping) -> Outcome:
    return Outcome(
        registers=tuple(
            tuple((reg, value) for reg, value in regs) for regs in data["registers"]
        ),
        memory=tuple((loc, value) for loc, value in data["memory"]),
    )


def result_to_json(result: JobResult) -> dict:
    return {
        "name": result.name,
        "model": result.model,
        "arch": result.arch.value,
        "status": result.status,
        "verdict": result.verdict.value if result.verdict else None,
        "expected": result.expected.value if result.expected else None,
        "elapsed_seconds": result.elapsed_seconds,
        "stats": result.stats,
        "error": result.error,
        "fingerprint": result.fingerprint,
        "outcomes": (
            None
            if result.outcomes is None
            else sorted(
                (outcome_to_json(o) for o in result.outcomes),
                key=lambda d: (d["registers"], d["memory"]),
            )
        ),
    }


def result_from_json(data: Mapping) -> JobResult:
    from ..litmus.test import Verdict

    return JobResult(
        name=data["name"],
        model=data["model"],
        arch=Arch(data["arch"]),
        status=data["status"],
        outcomes=(
            None
            if data["outcomes"] is None
            else OutcomeSet(outcome_from_json(o) for o in data["outcomes"])
        ),
        verdict=Verdict(data["verdict"]) if data["verdict"] else None,
        expected=Verdict(data["expected"]) if data["expected"] else None,
        elapsed_seconds=data["elapsed_seconds"],
        stats=dict(data.get("stats") or {}),
        error=data.get("error", ""),
        fingerprint=data.get("fingerprint", ""),
    )


__all__ = [
    "FINGERPRINT_VERSION",
    "MODELS",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "STATUS_ERROR",
    "Job",
    "JobResult",
    "JobTimeout",
    "execute_job",
    "timeouts_enforceable",
    "outcome_to_json",
    "outcome_from_json",
    "result_to_json",
    "result_from_json",
]
