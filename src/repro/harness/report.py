"""Structured JSON sweep reports (``BENCH_*.json``-style artifacts).

A report records everything needed to track the reproduction's perf
trajectory across PRs: per-job timings and statuses, outcome counts,
verdicts, cross-model mismatches, and the cache hit rate of the run.
The schema is versioned and covered by the test suite so downstream
tooling can rely on it.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from .jobs import Job, JobResult, STATUS_OK, outcome_to_json

#: Bump on any backwards-incompatible change to the report layout.
#: v2: per-job ``truncated``/``warning``/``outcome_digest`` fields, plus
#: the top-level ``truncated_jobs`` count and ``dedup`` counter block.
#: v3: per-job search-strategy fields (``strategy``, ``sampled``,
#: ``samples``, ``coverage_estimate``) and the top-level ``strategies``
#: list + ``sampled_jobs`` count.
REPORT_SCHEMA_VERSION = 3

#: Explorer stats counters aggregated into the report's ``dedup`` block.
DEDUP_COUNTERS = (
    "dedup_hits",
    "thread_dedup_hits",
    "completion_memo_hits",
    "cert_calls",
    "cert_memo_hits",
    "interned_keys",
    "intern_hits",
)


def outcome_set_digest(outcomes) -> Optional[str]:
    """Stable content hash of a projected outcome set.

    Lets report consumers (``scripts/check_bench_regression.py``) detect a
    semantic change without shipping the full outcome payload in every
    report row.
    """
    if outcomes is None:
        return None
    payload = sorted(
        json.dumps(outcome_to_json(o), sort_keys=True) for o in outcomes
    )
    return hashlib.sha256("\x1e".join(payload).encode()).hexdigest()[:16]


def describe_dedup(report: Mapping) -> str:
    """One-line rendering of the report's aggregated ``dedup`` block."""
    d = report.get("dedup") or {}
    return (
        f"dedup: {d.get('dedup_hits', 0)} state hits "
        f"(+{d.get('thread_dedup_hits', 0)} per-thread, "
        f"+{d.get('completion_memo_hits', 0)} completion), "
        f"cert memo: {d.get('cert_memo_hits', 0)}/{d.get('cert_calls', 0)} hits, "
        f"interning: {d.get('intern_hits', 0)} hits / {d.get('interned_keys', 0)} keys"
    )


def job_entry(result: JobResult) -> dict:
    """The per-job row of a sweep report (no outcome payload: summaries)."""
    return {
        "name": result.name,
        "model": result.model,
        "arch": result.arch.value,
        "status": result.status,
        "verdict": result.verdict.value if result.verdict else None,
        "expected": result.expected.value if result.expected else None,
        "matches_expectation": result.matches_expectation,
        "n_outcomes": None if result.outcomes is None else len(result.outcomes),
        "outcome_digest": outcome_set_digest(result.outcomes),
        "elapsed_seconds": result.elapsed_seconds,
        "cached": result.cached,
        "truncated": result.truncated,
        # Search-strategy provenance: ``strategy`` is None for models
        # without a kernel (axiomatic); ``samples``/``coverage_estimate``
        # are None for exhaustive runs.
        "strategy": result.strategy,
        "sampled": result.sampled,
        "samples": result.stats.get("samples_run") if result.sampled else None,
        "coverage_estimate": result.stats.get("coverage_estimate"),
        "warning": result.warning,
        "error": result.error,
        "fingerprint": result.fingerprint,
        "stats": result.stats,
    }


def find_mismatches(jobs: Sequence[Job], results: Sequence[JobResult]) -> list[dict]:
    """Cross-model outcome-set differences, per test.

    For every test appearing under several models (on the same arch), each
    model pair with both runs ``ok`` but different projected outcome sets
    yields one mismatch entry.  This is the §7 agreement check in report
    form — an empty list is the expected result.

    Grouping is by test *identity*, not name: a battery may contain
    distinct tests sharing a name (e.g. a generated ``LB+data+po`` next
    to the hand-written catalogue one), and comparing those across models
    would fabricate mismatches between different programs.

    Truncated explorations (a state/candidate budget was hit) have
    incomplete outcome sets, so pairs involving one are skipped rather
    than reported as disagreements; the per-job ``stats`` still show the
    truncation.  Sampled runs are sound under-approximations, so a pair
    with exactly one sampled side is checked for *containment* (the
    sampled outcomes must appear in the exhaustive set) instead of
    equality, and a pair where both sides sampled proves nothing and is
    skipped.
    """
    by_test: dict[tuple[int, str], list[JobResult]] = {}
    names: dict[tuple[int, str], str] = {}
    for job, result in zip(jobs, results):
        key = (id(job.test), job.arch.value)
        by_test.setdefault(key, []).append(result)
        names[key] = job.test.name
    mismatches = []
    for (test_key, arch), group in by_test.items():
        name = names[(test_key, arch)]
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                a, b = group[i], group[j]
                if a.model == b.model or not (a.ok and b.ok):
                    continue
                if a.stats.get("truncated") or b.stats.get("truncated"):
                    continue
                if a.sampled and b.sampled:
                    continue
                set_a, set_b = set(a.outcomes), set(b.outcomes)
                if a.sampled:
                    differ = not set_a <= set_b
                elif b.sampled:
                    differ = not set_b <= set_a
                else:
                    differ = set_a != set_b
                if differ:
                    mismatches.append(
                        {
                            "test": name,
                            "arch": arch,
                            "models": [a.model, b.model],
                            "only_first": len(set_a - set_b),
                            "only_second": len(set_b - set_a),
                        }
                    )
    return mismatches


def build_report(
    jobs: Sequence[Job],
    results: Sequence[JobResult],
    *,
    name: str = "sweep",
    wall_seconds: Optional[float] = None,
    extra: Optional[Mapping] = None,
    cache=None,
    mismatches: Optional[Sequence[dict]] = None,
) -> dict:
    """Assemble the JSON-ready report for one sweep.

    ``cache`` (a :class:`~repro.harness.cache.ResultCache`, optional) adds
    persistence accounting — in particular ``store_failures``, so a sweep
    whose results could not be written back (read-only or full cache
    volume) is visible next to the hit rate instead of silently producing
    a cold rerun.

    ``mismatches`` overrides the generic pairwise :func:`find_mismatches`
    pass — callers with their own comparison policy (the differential
    fuzzer) supply the already-computed list instead of paying for a
    pairwise sweep whose result would be discarded.
    """
    statuses: dict[str, int] = {}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    cache_hits = sum(1 for r in results if r.cached)
    compute_seconds = sum(r.elapsed_seconds for r in results if not r.cached)
    saved_seconds = sum(r.elapsed_seconds for r in results if r.cached)
    dedup = {
        counter: sum(int(r.stats.get(counter) or 0) for r in results)
        for counter in DEDUP_COUNTERS
    }
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "name": name,
        "generated_unix": time.time(),
        "n_jobs": len(results),
        "models": sorted({r.model for r in results}),
        "archs": sorted({r.arch.value for r in results}),
        "status_counts": statuses,
        "truncated_jobs": sum(1 for r in results if r.truncated),
        "sampled_jobs": sum(1 for r in results if r.sampled),
        "strategies": sorted({r.strategy for r in results if r.strategy}),
        "dedup": dedup,
        "ok": statuses.get(STATUS_OK, 0) == len(results),
        "cache": {
            "hits": cache_hits,
            "misses": len(results) - cache_hits,
            "hit_rate": cache_hits / len(results) if results else 0.0,
            "saved_seconds": saved_seconds,
            "store_failures": getattr(cache, "store_failures", 0),
        },
        "compute_seconds": compute_seconds,
        "wall_seconds": wall_seconds,
        "mismatches": (
            list(mismatches) if mismatches is not None else find_mismatches(jobs, results)
        ),
        "jobs": [job_entry(r) for r in results],
    }
    if extra:
        report["extra"] = dict(extra)
    return report


def write_report(report: Mapping, path: Union[str, Path]) -> Path:
    """Write a report as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "DEDUP_COUNTERS",
    "REPORT_SCHEMA_VERSION",
    "build_report",
    "describe_dedup",
    "find_mismatches",
    "job_entry",
    "outcome_set_digest",
    "write_report",
]
