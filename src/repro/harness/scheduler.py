"""Batch execution of litmus jobs: worker pool, timeouts, cache reuse.

:func:`run_jobs` is the sweep engine.  It resolves cache hits first, runs
the remaining jobs either in-process (``workers=1``, the serial fallback)
or on a ``multiprocessing`` pool, and returns results in job order
regardless of completion order — so a parallel run is indistinguishable
from a serial one apart from wall time.  Per-job deadlines and error
capture happen inside :func:`~repro.harness.jobs.execute_job`, hence a
crashing or timed-out job surfaces as a result with the matching status
instead of tearing down the batch.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import sys
import time
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from ..obs import metrics
from ..obs.logging import bind_global, get_logger, log_event
from ..obs.metrics import diff_snapshots
from .cache import ResultCache, open_cache
from .jobs import Job, JobResult, execute_job, timeouts_enforceable

_log = get_logger("harness.scheduler")

_POOL_JOBS = metrics.counter("pool_jobs_total", "Jobs executed on a WorkerPool.")
_POOL_BATCHES = metrics.counter("pool_batches_total", "Batches dispatched to a WorkerPool.")
_POOL_QUEUE_SECONDS = metrics.histogram(
    "pool_queue_seconds", "Per-job wait between batch submission and execution start."
)
_POOL_COMPUTE_SECONDS = metrics.histogram(
    "pool_compute_seconds", "Per-job execution wall time on a worker."
)
_POOL_BATCH_SIZE = metrics.histogram(
    "pool_batch_size", "Jobs per WorkerPool batch.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
)
_POOL_WORKERS = metrics.gauge("pool_workers", "Workers in the most recently created pool.")
_POOL_UTILIZATION = metrics.gauge(
    "pool_batch_utilization",
    "compute-time / (wall-time x workers) of the most recent batch.",
)


def default_workers() -> int:
    """A sensible worker count for ``--workers 0`` style requests."""
    return max(1, os.cpu_count() or 1)


class _Heartbeat:
    """Throttled structured progress log for a batch of jobs.

    Replaces ad-hoc print() progress lines: at most one ``batch progress``
    record every ``interval`` seconds, machine-parseable under
    ``--log-format json``, silent for batches that finish quickly.
    """

    def __init__(self, total: int, interval: float = 2.0) -> None:
        self.total = total
        self.done = 0
        self.interval = interval
        self._next = time.monotonic() + interval

    def tick(self, result: JobResult) -> None:
        self.done += 1
        now = time.monotonic()
        if now >= self._next or self.done == self.total:
            self._next = now + self.interval
            log_event(
                _log, "batch progress",
                done=self.done, total=self.total,
                last_test=result.name, last_status=result.status,
            )


@dataclass
class BatchStats:
    """Accounting for one :func:`run_jobs` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    statuses: dict = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


def _invoke(payload: tuple[Job, Optional[float]]) -> JobResult:
    job, timeout = payload
    return execute_job(job, timeout=timeout)


def execute_with_delta(
    job: Job,
    timeout: Optional[float] = None,
    *,
    queue_seconds: Optional[float] = None,
) -> JobResult:
    """Run one job and attach its observability delta to the result.

    This is the single worker-side execution wrapper, shared by the
    resident pool and the distributed fleet workers: the metrics-registry
    delta accumulated while the job ran travels back on the result, where
    the coordinating process folds it into its own registry (and clears
    the field so a result can never replay its metrics).
    """
    registry = metrics.get_registry()
    before = registry.snapshot()
    result = execute_job(job, timeout=timeout)
    result.queue_seconds = queue_seconds
    result.metrics_delta = diff_snapshots(before, registry.snapshot()) or None
    return result


def _invoke_indexed(
    payload: tuple[int, Job, Optional[float], float],
) -> tuple[int, JobResult]:
    """Pool-worker wrapper around :func:`execute_with_delta`.

    ``enqueued`` is the parent's ``time.monotonic()`` at submission; both
    processes share the same clock (same boot), so ``start - enqueued``
    is the job's queue wait.
    """
    index, job, timeout, enqueued = payload
    queue_seconds = max(0.0, time.monotonic() - enqueued)
    return index, execute_with_delta(job, timeout, queue_seconds=queue_seconds)


def _worker_init() -> None:
    """Pool-worker bootstrap: bind the worker id for log correlation."""
    bind_global(worker=f"w{os.getpid()}")


def _pool_context() -> multiprocessing.context.BaseContext:
    # ``fork`` keeps job dispatch cheap, but only Linux treats it as safe;
    # elsewhere (macOS objc fork-safety, Windows) use the platform default
    # (jobs are fully picklable for spawn).
    use_fork = sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if use_fork else None)


class WorkerPool:
    """A resident multiprocessing pool that stays warm across batches.

    ``run_jobs`` spins a pool up and down per call, which is the right
    trade for one big sweep but pays process start-up, imports, and cold
    interner pools on every invocation.  A :class:`WorkerPool` is created
    once (by the exploration service, or by any long-lived driver) and
    fed micro-batches: workers persist between :meth:`run` calls, so all
    of that warm-up amortises across the whole lifetime of the pool.

    Per-job deadlines fire on each worker's main thread via ``SIGALRM``
    exactly as in the one-shot scheduler path.
    """

    def __init__(self, workers: int = 0) -> None:
        self.workers = workers if workers > 0 else default_workers()
        self._pool = _pool_context().Pool(processes=self.workers, initializer=_worker_init)
        _POOL_WORKERS.set(self.workers)
        self._closed = False
        #: Batches dispatched and jobs executed over the pool's lifetime.
        self.batches = 0
        self.jobs_executed = 0

    def run(
        self,
        jobs: Sequence[Job],
        timeout: Union[None, float, Sequence[Optional[float]]] = None,
        *,
        on_result=None,
    ) -> list[JobResult]:
        """Execute one batch, returning results in submission order.

        ``timeout`` is either one deadline for every job or a per-job
        sequence.  ``on_result(index, result)`` (optional) is called the
        moment each job finishes — out of submission order — so callers
        can persist results while slower jobs are still running.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if not jobs:
            return []
        if timeout is None or isinstance(timeout, (int, float)):
            timeouts: list[Optional[float]] = [timeout] * len(jobs)
        else:
            if len(timeout) != len(jobs):
                raise ValueError("per-job timeout sequence must match the job count")
            timeouts = list(timeout)
        if any(t is not None for t in timeouts) and not hasattr(signal, "SIGALRM"):
            warnings.warn(
                "per-job timeouts need SIGALRM, which this platform lacks; "
                "jobs will run unbounded",
                RuntimeWarning,
                stacklevel=2,
            )
        results: list[Optional[JobResult]] = [None] * len(jobs)
        enqueued = time.monotonic()
        payloads = [
            (index, job, timeouts[index], enqueued) for index, job in enumerate(jobs)
        ]
        registry = metrics.get_registry()
        batch_start = time.perf_counter()
        compute_total = 0.0
        for index, result in self._pool.imap_unordered(_invoke_indexed, payloads):
            # Fold the worker's metrics delta into this process's registry
            # (and strip it: a result must never replay its metrics).
            if result.metrics_delta:
                registry.merge(result.metrics_delta)
            result.metrics_delta = None
            if result.queue_seconds is not None:
                _POOL_QUEUE_SECONDS.observe(result.queue_seconds)
            _POOL_COMPUTE_SECONDS.observe(result.elapsed_seconds)
            compute_total += result.elapsed_seconds
            results[index] = result
            if on_result is not None:
                on_result(index, result)
        batch_wall = time.perf_counter() - batch_start
        _POOL_JOBS.inc(len(jobs))
        _POOL_BATCHES.inc()
        _POOL_BATCH_SIZE.observe(len(jobs))
        if batch_wall > 0:
            _POOL_UTILIZATION.set(min(1.0, compute_total / (batch_wall * self.workers)))
        self.batches += 1
        self.jobs_executed += len(jobs)
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Graceful shutdown: wait for submitted work, then reap workers
        (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.close()
            self._pool.join()

    def terminate(self) -> None:
        """Immediate shutdown: kill workers without draining queued work
        (idempotent).  This is what an interrupted sweep wants — matching
        ``multiprocessing.Pool``'s own context-manager semantics."""
        if not self._closed:
            self._closed = True
            self._pool.terminate()
            self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        # Mirror ``with ctx.Pool(...)``: terminate, don't drain — a
        # KeyboardInterrupt mid-sweep must stop the workers now, not
        # after every queued job has run to completion.
        self.terminate()

    def __del__(self) -> None:
        # Last-resort reaping for pools dropped without close/terminate —
        # a leaked pool must not strand worker processes past its owner.
        try:
            self.terminate()
        except Exception:
            pass  # interpreter teardown: the pool may already be gone


def plan_batch(
    jobs: Sequence[Job], cache: Optional[ResultCache]
) -> tuple[list[Optional[JobResult]], list[int], dict[int, int]]:
    """Resolve cache hits and in-batch duplicates for one batch.

    Returns ``(results, pending, duplicate_of)``: ``results`` holds the
    recalled cache hits (``None`` elsewhere), ``pending`` the indices that
    genuinely need execution, and ``duplicate_of`` maps each
    content-identical duplicate index to the pending index that will
    compute its outcome.  Shared by :func:`run_jobs` and the distributed
    coordinator so both paths dedup and recall identically.
    """
    results: list[Optional[JobResult]] = [None] * len(jobs)
    pending: list[int] = []
    # In-batch dedup: content-identical jobs (e.g. a generated test that
    # also appears in the catalogue) are executed once and fanned back
    # out, with per-job annotations rebound like a cache hit.
    first_with: dict[str, int] = {}
    duplicate_of: dict[int, int] = {}
    for index, job in enumerate(jobs):
        hit = cache.get(job) if cache is not None else None
        if hit is not None:
            results[index] = hit
            continue
        fingerprint = job.fingerprint()
        if fingerprint in first_with:
            duplicate_of[index] = first_with[fingerprint]
        else:
            first_with[fingerprint] = index
            pending.append(index)
    return results, pending, duplicate_of


def rebind_duplicates(
    jobs: Sequence[Job],
    results: list[Optional[JobResult]],
    duplicate_of: Mapping[int, int],
) -> None:
    """Fan computed results back out to their in-batch duplicates."""
    for index, source in duplicate_of.items():
        # Same fingerprint → same computed outcome; only the per-job
        # annotations (name, expected verdict) differ.
        results[index] = dataclasses.replace(
            results[source],
            name=jobs[index].test.name,
            expected=jobs[index].test.expected_verdict(jobs[index].arch),
        )


def run_jobs(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    timeout: Optional[float] = None,
    cache: Union[None, str, ResultCache] = None,
    stats: Optional[BatchStats] = None,
) -> list[JobResult]:
    """Execute ``jobs`` and return their results in submission order.

    Parameters
    ----------
    workers:
        ``1`` (default) runs in-process; ``>1`` uses a process pool of that
        size; ``0`` means one worker per CPU.  Results are deterministic
        and identical for every setting.
    timeout:
        Per-job wall-clock deadline in seconds (``None`` = unbounded).
    cache:
        A :class:`ResultCache` (or a directory path for one).  Hits skip
        execution entirely; fresh ``ok`` results are stored back.
    stats:
        Optional accumulator filled with batch accounting.
    """
    cache = open_cache(cache)
    if workers == 0:
        workers = default_workers()

    results, pending, duplicate_of = plan_batch(jobs, cache)

    if pending:
        heartbeat = _Heartbeat(len(pending))
        # A single pending job skips pool setup — but only when that
        # doesn't downgrade a requested deadline (in-process enforcement
        # needs SIGALRM on the calling thread; pool workers always
        # enforce on their own main threads).
        serial_ok = timeout is None or timeouts_enforceable()
        if workers <= 1 or (len(pending) == 1 and serial_ok):
            # In-process execution: the deadline fires in *this* thread.
            if timeout is not None and not timeouts_enforceable():
                warnings.warn(
                    "per-job timeouts need SIGALRM on a main thread; "
                    "jobs will run unbounded here",
                    RuntimeWarning,
                    stacklevel=2,
                )
            for index in pending:
                results[index] = _invoke((jobs[index], timeout))
                heartbeat.tick(results[index])
                if cache is not None:
                    cache.put(jobs[index], results[index])
        else:
            # Pool execution: deadlines fire on each worker's main thread
            # (WorkerPool warns if SIGALRM is missing platform-wide).
            pending_jobs = [jobs[index] for index in pending]

            # Unordered streaming: each result is persisted the moment its
            # worker finishes, so an interrupted sweep keeps everything
            # already computed even while an early slow job is still
            # running; `results[index]` restores job order.
            def _store(batch_index: int, result: JobResult) -> None:
                index = pending[batch_index]
                results[index] = result
                heartbeat.tick(result)
                if cache is not None:
                    cache.put(jobs[index], result)

            with WorkerPool(min(workers, len(pending))) as pool:
                pool.run(pending_jobs, timeout, on_result=_store)

    rebind_duplicates(jobs, results, duplicate_of)

    if stats is not None:
        stats.total += len(jobs)
        stats.executed += len(pending)
        stats.cache_hits += len(jobs) - len(pending) - len(duplicate_of)
        for result in results:
            stats.statuses[result.status] = stats.statuses.get(result.status, 0) + 1

    return results  # type: ignore[return-value]


__all__ = [
    "BatchStats",
    "WorkerPool",
    "default_workers",
    "execute_with_delta",
    "plan_batch",
    "rebind_duplicates",
    "run_jobs",
]
