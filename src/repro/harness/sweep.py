"""High-level sweep orchestration: tests × models → scheduler → report.

This is what the ``promising-arm sweep`` subcommand and the benchmark
batteries call: expand a battery of litmus tests across the requested
models, push the whole job list through the scheduler (parallel and
cached as configured), and produce the structured report artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..axiomatic.model import AxiomaticConfig
from ..flat.explorer import FlatConfig
from ..lang.kinds import Arch
from ..obs.logging import get_logger, log_event
from ..obs.tracing import span
from ..promising.exhaustive import ExploreConfig

_log = get_logger("harness.sweep")

if TYPE_CHECKING:  # litmus imports harness (runner); keep ours lazy.
    from ..distrib.coordinator import DistribConfig
    from ..litmus.test import LitmusTest
from .cache import ResultCache, open_cache
from .jobs import Job, JobResult
from .report import build_report, describe_dedup, write_report
from .scheduler import BatchStats, run_jobs

DEFAULT_MODELS = ("promising", "axiomatic")


@dataclass
class SweepResult:
    """Everything a sweep produced."""

    jobs: list[Job]
    results: list[JobResult]
    report: dict
    stats: BatchStats
    wall_seconds: float

    @property
    def mismatches(self) -> list[dict]:
        return self.report["mismatches"]

    @property
    def ok(self) -> bool:
        return self.report["ok"] and not self.mismatches

    def describe(self) -> str:
        statuses = ", ".join(
            f"{count} {status}" for status, count in sorted(self.report["status_counts"].items())
        )
        store_failures = self.report["cache"].get("store_failures", 0)
        lines = [
            f"{self.report['n_jobs']} jobs ({statuses}) over "
            f"{'+'.join(self.report['models'])} in {self.wall_seconds:.1f}s "
            f"(cache hit rate {self.report['cache']['hit_rate'] * 100:.0f}%"
            + (f", {store_failures} store failures" if store_failures else "")
            + ")"
        ]
        lines.append("  " + describe_dedup(self.report))
        truncated = self.report.get("truncated_jobs", 0)
        if truncated:
            lines.append(
                f"  WARNING: {truncated} truncated job(s) — outcome sets "
                "incomplete, verdicts unverified (see per-job 'warning')"
            )
        sampled = self.report.get("sampled_jobs", 0)
        if sampled:
            from ..explore import is_exhaustive

            sampling = [s for s in self.report.get("strategies", []) if not is_exhaustive(s)]
            lines.append(
                f"  note: {sampled} sampled job(s) ({'+'.join(sampling)}) — "
                "outcome sets are statistical under-approximations"
            )
        for mismatch in self.mismatches:
            lines.append(
                f"  mismatch: {mismatch['test']} [{mismatch['arch']}] "
                f"{mismatch['models'][0]} vs {mismatch['models'][1]}"
            )
        return "\n".join(lines)


def build_jobs(
    tests: Sequence[LitmusTest],
    models: Sequence[str] = DEFAULT_MODELS,
    arch: Arch = Arch.ARM,
    *,
    explore_config: Optional[ExploreConfig] = None,
    axiomatic_config: Optional[AxiomaticConfig] = None,
    flat_config: Optional[FlatConfig] = None,
) -> list[Job]:
    """One job per test × model, grouped by test (models adjacent)."""
    return [
        Job(
            test=test,
            model=model,
            arch=arch,
            explore_config=explore_config,
            axiomatic_config=axiomatic_config,
            flat_config=flat_config,
        )
        for test in tests
        for model in models
    ]


def run_sweep(
    tests: Sequence[LitmusTest],
    models: Sequence[str] = DEFAULT_MODELS,
    arch: Arch = Arch.ARM,
    *,
    workers: int = 1,
    timeout: Optional[float] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    report_path: Union[None, str, Path] = None,
    name: str = "litmus-sweep",
    explore_config: Optional[ExploreConfig] = None,
    axiomatic_config: Optional[AxiomaticConfig] = None,
    flat_config: Optional[FlatConfig] = None,
    distrib: Optional[DistribConfig] = None,
) -> SweepResult:
    """Run a litmus battery across models and (optionally) write a report.

    With ``distrib`` set, the batch runs on a distributed work backend
    (fleet workers) instead of the in-process scheduler; results and
    report digests are bit-identical between the two paths.
    """
    cache = open_cache(cache)
    jobs = build_jobs(
        tests,
        models,
        arch,
        explore_config=explore_config,
        axiomatic_config=axiomatic_config,
        flat_config=flat_config,
    )
    log_event(
        _log,
        "sweep started",
        sweep=name,
        n_tests=len(tests),
        n_jobs=len(jobs),
        models=list(models),
        arch=arch.value,
        workers=workers,
    )
    stats = BatchStats()
    distrib_info = None
    start = time.perf_counter()
    with span("sweep", name=name, jobs=len(jobs)):
        if distrib is not None:
            from ..distrib.coordinator import run_distributed

            run = run_distributed(jobs, config=distrib, timeout=timeout, cache=cache, stats=stats)
            results, distrib_info = run.results, run.info
        else:
            results = run_jobs(jobs, workers=workers, timeout=timeout, cache=cache, stats=stats)
    wall = time.perf_counter() - start
    extra = {
        "workers": workers,
        "timeout_seconds": timeout,
        "arch": arch.value,
        "n_tests": len(tests),
    }
    if distrib_info is not None:
        extra["distrib"] = distrib_info
    report = build_report(
        jobs,
        results,
        name=name,
        wall_seconds=wall,
        cache=cache,
        extra=extra,
    )
    if report_path is not None:
        write_report(report, report_path)
    log_event(
        _log,
        "sweep finished",
        sweep=name,
        n_jobs=len(jobs),
        seconds=round(wall, 3),
        statuses=dict(stats.statuses),
        cache_hits=stats.cache_hits,
        mismatches=len(report["mismatches"]),
    )
    return SweepResult(jobs=jobs, results=results, report=report, stats=stats, wall_seconds=wall)


__all__ = ["DEFAULT_MODELS", "SweepResult", "build_jobs", "run_sweep"]
