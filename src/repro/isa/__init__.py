"""ARMv8 and RISC-V assembly front ends (the Sail-ISA-model substitute)."""

from .ir import (
    Branch,
    IrInstr,
    StraightLine,
    StructurisationError,
    ThreadIr,
    straight_line_program,
    structurise,
)
from .armv8 import Armv8ParseError
from .riscv import RiscvParseError
from .assembler import (
    ThreadSource,
    assemble_program,
    assemble_thread,
    assembly_line_count,
    normalise_register,
    parse_thread,
)

__all__ = [
    "Branch",
    "IrInstr",
    "StraightLine",
    "StructurisationError",
    "ThreadIr",
    "straight_line_program",
    "structurise",
    "Armv8ParseError",
    "RiscvParseError",
    "ThreadSource",
    "assemble_program",
    "assemble_thread",
    "assembly_line_count",
    "normalise_register",
    "parse_thread",
]
