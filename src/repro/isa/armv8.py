"""ARMv8 (AArch64) user-mode assembly front end.

This module stands in for the Sail ARMv8 ISA model used by the paper's
tool: it covers the user-mode instructions that matter for concurrency —
loads and stores of every ordering flavour, exclusives, barriers, moves,
the ALU operations used to build dependencies, compare and branch — and
lowers them to the calculus of :mod:`repro.lang` while preserving register
dataflow (hence address/data/control dependencies).

Supported syntax (case-insensitive, one instruction per line or separated
by ``;``):

====================  =====================================================
``MOV Xd, #imm``      register move / immediate
``MOV Xd, Xn``
``ADD/SUB/AND/ORR/EOR Xd, Xn, Xm|#imm``
``LDR Xd, [Xn]``      plain load (optionally ``[Xn, #imm]`` / ``[Xn, Xm]``)
``LDAR Xd, [Xn]``     load acquire
``LDAPR Xd, [Xn]``    load acquire-pc (weak acquire)
``LDXR Xd, [Xn]``     load exclusive
``LDAXR Xd, [Xn]``    load acquire exclusive
``STR Xs, [Xn]``      plain store
``STLR Xs, [Xn]``     store release
``STXR Ws, Xt, [Xn]`` store exclusive (status register ``Ws``)
``STLXR Ws, Xt, [Xn]`` store release exclusive
``DMB SY|LD|ST``      barriers (``DMB ISH*`` variants accepted too)
``ISB``
``CMP Xn, Xm|#imm``   compare (sets the pseudo flags register)
``B label``           unconditional branch
``B.EQ/NE/GE/GT/LE/LT label``
``CBZ/CBNZ Xn, label``
``NOP``
``label:``
====================  =====================================================

``W`` registers are treated as their ``X`` counterparts (the models are
value-size agnostic, like the paper which excludes mixed-size accesses),
and ``XZR``/``WZR`` reads as constant zero.
"""

from __future__ import annotations

import re
from typing import Optional

from ..lang.ast import Assign, Fence, Isb, Load, Skip, Stmt, Store
from ..lang.expr import BinOp, Const, Expr, RegE
from ..lang.kinds import FenceSet, ReadKind, WriteKind
from .ir import Branch, StraightLine, ThreadIr

class Armv8ParseError(Exception):
    """Raised on unsupported or malformed AArch64 assembly."""


#: Pseudo register holding the result of the last CMP/SUBS (flags model).
FLAGS_REG = "_nzcv"
#: Destination used for writes to the zero register (architecturally discarded).
DISCARD_REG = "_discard"

_LABEL_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*):\s*(.*)$")
_MEM_RE = re.compile(
    r"^\[\s*([XWxw][0-9]+|SP|sp)\s*(?:,\s*(#?-?[0-9a-fA-Fx]+|[XWxw][0-9]+))?\s*\]$"
)

_ALU_OPS = {"ADD": "+", "SUB": "-", "AND": "&", "ORR": "|", "EOR": "^", "MUL": "*"}
_CONDITIONS = {
    "EQ": "==",
    "NE": "!=",
    "GE": ">=",
    "GT": ">",
    "LE": "<=",
    "LT": "<",
}
_LOAD_KINDS = {
    "LDR": (ReadKind.PLN, False),
    "LDRB": (ReadKind.PLN, False),
    "LDRH": (ReadKind.PLN, False),
    "LDAR": (ReadKind.ACQ, False),
    "LDAPR": (ReadKind.WACQ, False),
    "LDXR": (ReadKind.PLN, True),
    "LDAXR": (ReadKind.ACQ, True),
}
_STORE_KINDS = {
    "STR": (WriteKind.PLN, False),
    "STRB": (WriteKind.PLN, False),
    "STRH": (WriteKind.PLN, False),
    "STLR": (WriteKind.REL, False),
    "STXR": (WriteKind.PLN, True),
    "STLXR": (WriteKind.REL, True),
}
_DMB_KINDS = {
    "SY": (FenceSet.RW, FenceSet.RW),
    "ISH": (FenceSet.RW, FenceSet.RW),
    "LD": (FenceSet.R, FenceSet.RW),
    "ISHLD": (FenceSet.R, FenceSet.RW),
    "ST": (FenceSet.W, FenceSet.W),
    "ISHST": (FenceSet.W, FenceSet.W),
}


def normalise_register(name: str) -> str:
    """Canonical register name: ``W5``→``X5``, ``XZR``/``WZR``→``XZR``."""
    upper = name.upper()
    if upper in ("XZR", "WZR"):
        return "XZR"
    if upper in ("SP", "WSP"):
        raise Armv8ParseError("the stack pointer is not supported")
    if upper[0] in ("X", "W") and upper[1:].isdigit():
        number = int(upper[1:])
        if not 0 <= number <= 30:
            raise Armv8ParseError(f"register number out of range: {name}")
        return f"X{number}"
    raise Armv8ParseError(f"unknown register {name!r}")


def _read_operand(text: str) -> Expr:
    """An operand that is read: immediate ``#n`` or a register."""
    text = text.strip()
    if text.startswith("#"):
        return Const(int(text[1:], 0))
    if re.fullmatch(r"-?[0-9]+", text):
        return Const(int(text, 0))
    reg = normalise_register(text)
    if reg == "XZR":
        return Const(0)
    return RegE(reg)


def _dest_register(text: str) -> str:
    reg = normalise_register(text.strip())
    return DISCARD_REG if reg == "XZR" else reg


def _address_expr(text: str) -> Expr:
    match = _MEM_RE.match(text.strip())
    if not match:
        raise Armv8ParseError(f"unsupported addressing mode {text!r}")
    base = normalise_register(match.group(1))
    base_expr: Expr = Const(0) if base == "XZR" else RegE(base)
    offset = match.group(2)
    if offset is None:
        return base_expr
    return BinOp("+", base_expr, _read_operand(offset))


def _split_operands(text: str) -> list[str]:
    """Split operands on commas that are not inside brackets."""
    parts: list[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def parse_instruction(line: str) -> Optional[StraightLine | Branch]:
    """Parse a single AArch64 instruction (already stripped of labels)."""
    line = line.strip()
    if not line:
        return None
    mnemonic, _sep, rest = line.partition(" ")
    mnemonic = mnemonic.upper()
    operands = _split_operands(rest) if rest.strip() else []

    if mnemonic == "NOP":
        return StraightLine(Skip(), line)

    if mnemonic == "MOV":
        if len(operands) != 2:
            raise Armv8ParseError(f"MOV expects two operands: {line!r}")
        return StraightLine(Assign(_dest_register(operands[0]), _read_operand(operands[1])), line)

    if mnemonic in _ALU_OPS:
        if len(operands) != 3:
            raise Armv8ParseError(f"{mnemonic} expects three operands: {line!r}")
        expr = BinOp(_ALU_OPS[mnemonic], _read_operand(operands[1]), _read_operand(operands[2]))
        return StraightLine(Assign(_dest_register(operands[0]), expr), line)

    if mnemonic in ("CMP", "SUBS"):
        if mnemonic == "CMP":
            if len(operands) != 2:
                raise Armv8ParseError(f"CMP expects two operands: {line!r}")
            expr = BinOp("-", _read_operand(operands[0]), _read_operand(operands[1]))
            return StraightLine(Assign(FLAGS_REG, expr), line)
        if len(operands) != 3:
            raise Armv8ParseError(f"SUBS expects three operands: {line!r}")
        expr = BinOp("-", _read_operand(operands[1]), _read_operand(operands[2]))
        # SUBS writes both the destination and the flags.
        return StraightLine(
            _seq2(Assign(_dest_register(operands[0]), expr), Assign(FLAGS_REG, expr)),
            line,
        )

    if mnemonic in _LOAD_KINDS:
        kind, exclusive = _LOAD_KINDS[mnemonic]
        if len(operands) != 2:
            raise Armv8ParseError(f"{mnemonic} expects two operands: {line!r}")
        return StraightLine(
            Load(_dest_register(operands[0]), _address_expr(operands[1]), kind, exclusive),
            line,
        )

    if mnemonic in _STORE_KINDS:
        kind, exclusive = _STORE_KINDS[mnemonic]
        if exclusive:
            if len(operands) != 3:
                raise Armv8ParseError(f"{mnemonic} expects three operands: {line!r}")
            return StraightLine(
                Store(
                    _address_expr(operands[2]),
                    _read_operand(operands[1]),
                    kind,
                    True,
                    _dest_register(operands[0]),
                ),
                line,
            )
        if len(operands) != 2:
            raise Armv8ParseError(f"{mnemonic} expects two operands: {line!r}")
        return StraightLine(
            Store(_address_expr(operands[1]), _read_operand(operands[0]), kind, False, None),
            line,
        )

    if mnemonic == "DMB":
        domain = (operands[0].upper() if operands else "SY")
        if domain not in _DMB_KINDS:
            raise Armv8ParseError(f"unsupported DMB domain {domain!r}")
        before, after = _DMB_KINDS[domain]
        return StraightLine(Fence(before, after), line)

    if mnemonic == "ISB":
        return StraightLine(Isb(), line)

    if mnemonic == "B":
        if len(operands) != 1:
            raise Armv8ParseError(f"B expects a label: {line!r}")
        return Branch(operands[0], None, line)

    if mnemonic.startswith("B.") and mnemonic[2:] in _CONDITIONS:
        if len(operands) != 1:
            raise Armv8ParseError(f"{mnemonic} expects a label: {line!r}")
        cond = BinOp(_CONDITIONS[mnemonic[2:]], RegE(FLAGS_REG), Const(0))
        return Branch(operands[0], cond, line)

    if mnemonic in ("CBZ", "CBNZ"):
        if len(operands) != 2:
            raise Armv8ParseError(f"{mnemonic} expects two operands: {line!r}")
        op = "==" if mnemonic == "CBZ" else "!="
        cond = BinOp(op, _read_operand(operands[0]), Const(0))
        return Branch(operands[1], cond, line)

    raise Armv8ParseError(f"unsupported AArch64 instruction {line!r}")


def _seq2(first: Stmt, second: Stmt) -> Stmt:
    from ..lang.ast import Seq

    return Seq(first, second)


def parse_thread(text: str) -> ThreadIr:
    """Parse an AArch64 assembly fragment into thread IR."""
    instructions: list[StraightLine | Branch] = []
    labels: dict[str, int] = {}
    for raw_line in re.split(r"[\n;]", text):
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            labels[match.group(1)] = len(instructions)
            line = match.group(2).strip()
        if not line:
            continue
        instr = parse_instruction(line)
        if instr is not None:
            instructions.append(instr)
    return ThreadIr(tuple(instructions), labels, text)


__all__ = [
    "Armv8ParseError",
    "FLAGS_REG",
    "DISCARD_REG",
    "normalise_register",
    "parse_instruction",
    "parse_thread",
]
