"""Assembling multi-threaded assembly programs into calculus programs.

This is the top of the ISA front end: it takes one assembly fragment per
thread (ARMv8 or RISC-V), optional per-thread register initialisations
(litmus files use these to pass the addresses of the shared variables),
parses each fragment, structurises its control flow, and produces a
:class:`repro.lang.Program` ready for any of the models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..lang.ast import Assign, Stmt, seq
from ..lang.expr import Const
from ..lang.kinds import Arch
from ..lang.program import LocationEnv, Program, make_program
from . import armv8, riscv
from .ir import ThreadIr, structurise


@dataclass
class ThreadSource:
    """One thread's assembly text plus its initial register values."""

    text: str
    reg_init: Mapping[str, int] = field(default_factory=dict)


def parse_thread(text: str, arch: Arch) -> ThreadIr:
    """Parse one thread's assembly for the given architecture."""
    if arch is Arch.ARM:
        return armv8.parse_thread(text)
    return riscv.parse_thread(text)


def normalise_register(name: str, arch: Arch) -> str:
    """Architecture-aware register-name normalisation."""
    if arch is Arch.ARM:
        return armv8.normalise_register(name)
    return riscv.normalise_register(name)


def assemble_thread(
    source: ThreadSource | str,
    arch: Arch,
    unroll_bound: int = 2,
) -> Stmt:
    """Assemble one thread into a calculus statement."""
    if isinstance(source, str):
        source = ThreadSource(source)
    thread_ir = parse_thread(source.text, arch)
    body = structurise(thread_ir, unroll_bound)
    inits = [
        Assign(normalise_register(reg, arch), Const(value))
        for reg, value in sorted(source.reg_init.items())
    ]
    return seq(*inits, body)


def assemble_program(
    threads: Sequence[ThreadSource | str],
    arch: Arch,
    *,
    initial: Optional[Mapping[int, int]] = None,
    env: Optional[LocationEnv] = None,
    name: str = "",
    unroll_bound: int = 2,
) -> Program:
    """Assemble a whole multi-threaded assembly program."""
    stmts = [assemble_thread(thread, arch, unroll_bound) for thread in threads]
    return make_program(stmts, initial=initial or {}, env=env, name=name)


def assembly_line_count(threads: Sequence[ThreadSource | str]) -> int:
    """Number of (non-empty, non-label-only) assembly lines across threads.

    Used by the Table 1 reproduction, which reports the assembly size of
    each workload.
    """
    total = 0
    for thread in threads:
        text = thread.text if isinstance(thread, ThreadSource) else thread
        for raw in text.replace(";", "\n").splitlines():
            line = raw.split("//")[0].split("#")[0].strip()
            if not line:
                continue
            if line.endswith(":"):
                continue
            total += 1
    return total


__all__ = [
    "ThreadSource",
    "parse_thread",
    "normalise_register",
    "assemble_thread",
    "assemble_program",
    "assembly_line_count",
]
