"""Ahead-of-time program compilation for the packed execution backend.

The operational models treat a statement as the thread's program counter:
every step rewrites the statement into a continuation.  Those
continuations are not arbitrary — they are exactly the statements the
head-decomposition (:func:`~repro.promising.steps.split_head`) and the
branch rule can produce — so the full set reachable from a program can be
enumerated *statically, once*, before exploration starts.

:class:`CompiledProgram` performs that closure and assigns every
reachable statement a dense integer id, together with a static record
(:class:`CompiledStmt`) of its head kind, register dependencies, and
successor statement ids.  The packed backend then represents a thread's
program counter as one int, and a machine state as a flat tuple of ints,
instead of re-deriving structure from the AST on every visit.

The compiled tables are *descriptive*, not a second semantics: dynamic
behaviour (which timestamps a load may read, which writes certify) is
still produced by the reference step functions in
:mod:`repro.promising.steps`.  Compilation only precomputes what is
invariant across all visits of a statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import (
    Assign,
    Fence,
    If,
    Isb,
    Load,
    Seq,
    Skip,
    Stmt,
    Store,
)
from ..lang.expr import Reg, expr_registers
from ..lang.kinds import Arch
from ..lang.program import Program, TId
from ..promising.state import Memory, TState
from ..promising.steps import (
    ThreadStep,
    assign_step,
    branch_step,
    exclusive_fail_step,
    fence_step,
    fulfil_steps,
    is_terminated,
    isb_step,
    normalise,
    read_steps,
    split_head,
    write_steps,
)


def _head_kind(head: Stmt) -> str:
    if isinstance(head, Skip):
        return "skip"
    if isinstance(head, Load):
        return "load"
    if isinstance(head, Store):
        return "store"
    if isinstance(head, Fence):
        return "fence"
    if isinstance(head, Isb):
        return "isb"
    if isinstance(head, Assign):
        return "assign"
    if isinstance(head, If):
        return "branch"
    raise TypeError(f"cannot compile statement head {head!r}")


def _head_registers(head: Stmt) -> tuple[tuple[Reg, ...], tuple[Reg, ...]]:
    """Static (reads, writes) register dependencies of a statement head."""
    if isinstance(head, Load):
        return tuple(sorted(expr_registers(head.addr))), (head.reg,)
    if isinstance(head, Store):
        reads = sorted(expr_registers(head.addr) | expr_registers(head.data))
        writes = (head.succ_reg,) if head.succ_reg is not None else ()
        return tuple(reads), writes
    if isinstance(head, Assign):
        return tuple(sorted(expr_registers(head.expr))), (head.reg,)
    if isinstance(head, If):
        return tuple(sorted(expr_registers(head.cond))), ()
    return (), ()


def _static_successors(head: Stmt, rest: Optional[Stmt]) -> tuple[Stmt, ...]:
    """The continuation statements a step from this head can produce.

    Mirrors the step rules exactly: a branch yields the two
    branch-rule continuations; every other head finishes and yields the
    normalised remainder (``skip`` at the end of the thread); a
    terminated thread has no continuation.
    """
    if isinstance(head, If):
        succs = []
        for taken in (head.then, head.orelse):
            succ = taken if rest is None else Seq(taken, rest)
            succs.append(normalise(succ))
        return tuple(succs)
    if isinstance(head, Skip):
        return ()
    return (normalise(rest) if rest is not None else Skip(),)


@dataclass(frozen=True)
class CompiledStmt:
    """Static per-statement record of the compiled program.

    ``succ_ids`` are the statically known continuation statement ids (a
    branch lists both arms in (then, else) order; a terminated statement
    lists none).  ``reads`` and ``writes`` are the head's register
    dependencies.  ``head`` is the decomposed head statement, stored so
    candidate enumeration never re-walks the ``Seq`` spine at run time.
    """

    sid: int
    stmt: Stmt
    kind: str
    terminated: bool
    reads: tuple[Reg, ...]
    writes: tuple[Reg, ...]
    succ_ids: tuple[int, ...]
    head: Optional[Stmt] = None


class CompiledProgram:
    """Statement-closure tables of one litmus program.

    Built once per exploration job.  ``registers`` is the sorted global
    register universe used by :meth:`TState.pack
    <repro.promising.state.TState.pack>` for dense register encoding;
    ``stmt_id`` maps any reachable statement to its dense id.
    """

    __slots__ = ("program", "registers", "reg_index", "_ids", "stmts")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.registers: tuple[Reg, ...] = tuple(sorted(program.registers()))
        self.reg_index: dict[Reg, int] = {
            r: i for i, r in enumerate(self.registers)
        }
        self._ids: dict[Stmt, int] = {}
        self.stmts: list[CompiledStmt] = []
        for stmt in program.threads:
            self._close(normalise(stmt))

    # -- construction -----------------------------------------------------
    def _close(self, root: Stmt) -> int:
        """Discover the statement closure of ``root``, assigning ids."""
        root_id = self._add(root)
        worklist = [root_id]
        while worklist:
            record = self.stmts[worklist.pop()]
            head, rest = split_head(record.stmt)
            succ_ids = []
            for succ in _static_successors(head, rest):
                before = len(self._ids)
                sid = self._add(succ)
                succ_ids.append(sid)
                if len(self._ids) != before:
                    worklist.append(sid)
            # Fill in the successor ids now that the children exist
            # (records are frozen, so replace the list slot).
            self.stmts[record.sid] = CompiledStmt(
                sid=record.sid,
                stmt=record.stmt,
                kind=record.kind,
                terminated=record.terminated,
                reads=record.reads,
                writes=record.writes,
                succ_ids=tuple(succ_ids),
                head=record.head,
            )
        return root_id

    def _add(self, stmt: Stmt) -> int:
        sid = self._ids.get(stmt)
        if sid is not None:
            return sid
        sid = len(self.stmts)
        self._ids[stmt] = sid
        head, _rest = split_head(stmt)
        reads, writes = _head_registers(head)
        self.stmts.append(
            CompiledStmt(
                sid=sid,
                stmt=stmt,
                kind=_head_kind(head),
                terminated=is_terminated(stmt),
                reads=reads,
                writes=writes,
                succ_ids=(),
                head=head,
            )
        )
        return sid

    # -- queries ----------------------------------------------------------
    def stmt_id(self, stmt: Stmt) -> int:
        """Dense id of a (normalised) statement.

        Statements produced by the step functions are always in the
        static closure; unseen statements are interned on the fly anyway
        so the encoding stays total even for hand-built configurations.
        """
        sid = self._ids.get(stmt)
        if sid is not None:
            return sid
        return self._close(normalise(stmt))

    def record(self, sid: int) -> CompiledStmt:
        return self.stmts[sid]

    def candidate_steps(
        self,
        sid: int,
        ts: TState,
        memory: Memory,
        arch: Arch,
        tid: TId,
        include_writes: bool = True,
    ) -> list[tuple[int, ThreadStep]]:
        """Candidate steps of statement ``sid``, with successor ids.

        Returns ``(successor statement id, step)`` pairs in exactly the
        order of :func:`~repro.promising.machine.thread_candidate_steps`
        (thread-local steps, then normal writes); with
        ``include_writes=False`` it is the
        :func:`~repro.promising.steps.non_promise_steps` relation
        instead.  Dynamic behaviour comes from the same reference rule
        bodies in :mod:`repro.promising.steps`; what the table removes is
        the per-visit head decomposition, continuation normalisation and
        statement hashing — the head, continuation, and successor ids are
        all static per-statement facts.
        """
        record = self.stmts[sid]
        kind = record.kind
        out: list[tuple[int, ThreadStep]] = []
        if kind == "skip":
            return out
        if kind == "branch":
            then_id, else_id = record.succ_ids
            step = branch_step(
                record.head,
                self.stmts[then_id].stmt,
                self.stmts[else_id].stmt,
                ts,
                memory,
                tid,
            )
            out.append((then_id if step.value != 0 else else_id, step))
            return out
        cont_id = record.succ_ids[0]
        cont = self.stmts[cont_id].stmt
        head = record.head
        if kind == "load":
            for step in read_steps(head, cont, ts, memory, arch, tid):
                out.append((cont_id, step))
        elif kind == "store":
            for step in fulfil_steps(head, cont, ts, memory, arch, tid):
                out.append((cont_id, step))
            if head.exclusive:
                out.append((cont_id, exclusive_fail_step(head, cont, ts, memory, tid)))
            if include_writes:
                for step in write_steps(head, cont, ts, memory, arch, tid):
                    out.append((cont_id, step))
        elif kind == "fence":
            out.append((cont_id, fence_step(head, cont, ts, memory, tid)))
        elif kind == "isb":
            out.append((cont_id, isb_step(cont, ts, memory, tid)))
        elif kind == "assign":
            out.append((cont_id, assign_step(head, cont, ts, memory, tid)))
        else:  # pragma: no cover - closed by _head_kind
            raise TypeError(f"cannot step compiled head kind {kind!r}")
        return out

    def statement(self, sid: int) -> Stmt:
        return self.stmts[sid].stmt

    @property
    def n_statements(self) -> int:
        return len(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)


def compile_program(program: Program) -> CompiledProgram:
    """Compile ``program`` (run once per job, before exploration)."""
    return CompiledProgram(program)


__all__ = ["CompiledProgram", "CompiledStmt", "compile_program"]
