"""Intermediate representation shared by the assembly front ends.

The ARMv8 and RISC-V parsers both lower assembly text to a flat list of
:class:`IrInstr` — either a straight-line calculus statement or a
(conditional) branch to a label — plus a label table.  The bounded
structurisation pass (:func:`structurise`) then turns this control-flow
graph into the structured statements of the calculus, which is what the
concurrency models execute.

The structurisation is the *bounded unfolding* used by litmus-style
exploration: each program point may be revisited at most ``unroll_bound``
times along any path (loops beyond the bound are cut to ``skip``), and
every instruction after a conditional branch ends up inside the branch's
``if``, which matches the architecture's notion that all program-order
later instructions are control-dependent on it (§3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..lang.ast import If, Skip, Stmt, seq
from ..lang.expr import Expr


@dataclass(frozen=True)
class StraightLine:
    """A non-branch instruction, already lowered to a calculus statement."""

    stmt: Stmt
    source: str = ""


@dataclass(frozen=True)
class Branch:
    """A branch to ``target``; unconditional when ``cond`` is ``None``.

    ``cond`` is the branch-taken condition as a calculus expression over
    the thread's registers (nonzero means taken).
    """

    target: str
    cond: Optional[Expr] = None
    source: str = ""


IrInstr = StraightLine | Branch


@dataclass(frozen=True)
class ThreadIr:
    """The lowered form of one thread: instructions plus label table."""

    instructions: tuple[IrInstr, ...]
    labels: Mapping[str, int]
    source: str = ""

    def label_index(self, name: str) -> int:
        if name not in self.labels:
            raise KeyError(f"undefined label {name!r}")
        return self.labels[name]


class StructurisationError(Exception):
    """Raised for malformed control flow (e.g. a branch to a missing label)."""


def structurise(thread: ThreadIr, unroll_bound: int = 2) -> Stmt:
    """Turn a thread's instruction list into a structured statement.

    The expansion starts at instruction 0 and follows fall-through and
    branch edges; a conditional branch becomes ``if (cond) <target...>
    <fall-through...>``.  A program point visited more than
    ``unroll_bound`` times on the current path is cut to ``skip``, which
    bounds loops exactly like the executable model of the paper bounds
    them.
    """
    if unroll_bound < 1:
        raise ValueError("unroll bound must be at least 1")
    instrs = thread.instructions

    def expand(pc: int, visits: dict[int, int]) -> Stmt:
        if pc >= len(instrs):
            return Skip()
        count = visits.get(pc, 0)
        if count >= unroll_bound:
            return Skip()
        visits = dict(visits)
        visits[pc] = count + 1
        instr = instrs[pc]
        if isinstance(instr, StraightLine):
            rest = expand(pc + 1, visits)
            return seq(instr.stmt, rest)
        if isinstance(instr, Branch):
            try:
                target_pc = thread.label_index(instr.target)
            except KeyError as exc:
                raise StructurisationError(str(exc)) from None
            taken = expand(target_pc, visits)
            if instr.cond is None:
                return taken
            fallthrough = expand(pc + 1, visits)
            return If(instr.cond, taken, fallthrough)
        raise TypeError(f"unknown IR instruction {instr!r}")

    return expand(0, {})


def straight_line_program(statements: Sequence[Stmt]) -> ThreadIr:
    """Wrap a list of statements as branch-free thread IR (for tests)."""
    return ThreadIr(tuple(StraightLine(s) for s in statements), {})


__all__ = [
    "StraightLine",
    "Branch",
    "IrInstr",
    "ThreadIr",
    "StructurisationError",
    "structurise",
    "straight_line_program",
]
