"""RISC-V (RV64 user-mode) assembly front end.

The counterpart of :mod:`repro.isa.armv8` for RISC-V, standing in for the
Sail RISC-V ISA model: it covers the integer instructions relevant to the
concurrency model and lowers them to the calculus, preserving register
dataflow.

Supported syntax (case-insensitive):

=========================  ================================================
``li rd, imm``             load immediate
``mv rd, rs``              register move
``add/sub/and/or/xor rd, rs1, rs2``
``addi/andi/ori/xori rd, rs1, imm``
``lw/ld rd, off(rs1)``     plain load
``sw/sd rs2, off(rs1)``    plain store
``lr.w/lr.d rd, (rs1)``    load reserve (``.aq``/``.aqrl`` suffixes)
``sc.w/sc.d rd, rs2, (rs1)`` store conditional (``.rl``/``.aqrl`` suffixes)
``fence pred, succ``       pred/succ ∈ {r, w, rw}
``fence.tso`` / ``fence.i``
``beq/bne/blt/bge rs1, rs2, label``
``beqz/bnez rs, label``
``j label``
``nop``, ``label:``
=========================  ================================================

Register ``x0`` (``zero``) reads as constant zero; ABI register names are
accepted and normalised to their ``x<n>`` form.
"""

from __future__ import annotations

import re
from typing import Optional

from ..lang.ast import Assign, Fence, Load, Seq, Skip, Store
from ..lang.expr import BinOp, Const, Expr, RegE
from ..lang.kinds import FenceSet, ReadKind, WriteKind
from .ir import Branch, StraightLine, ThreadIr

class RiscvParseError(Exception):
    """Raised on unsupported or malformed RISC-V assembly."""


#: Destination used for writes to ``x0`` (architecturally discarded).
DISCARD_REG = "_discard"

_ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
    "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

_LABEL_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*):\s*(.*)$")
_MEM_RE = re.compile(r"^(-?[0-9a-fA-Fx]*)\s*\(\s*([A-Za-z0-9]+)\s*\)$")

_ALU_REG_OPS = {"add": "+", "sub": "-", "and": "&", "or": "|", "xor": "^", "mul": "*"}
_ALU_IMM_OPS = {"addi": "+", "andi": "&", "ori": "|", "xori": "^"}
_FENCE_SETS = {"r": FenceSet.R, "w": FenceSet.W, "rw": FenceSet.RW}
_BRANCH_OPS = {"beq": "==", "bne": "!=", "blt": "<", "bge": ">=", "bgt": ">", "ble": "<="}


def normalise_register(name: str) -> str:
    """Canonical register name: ``a0``→``x10``, ``zero``→``x0``."""
    lower = name.lower()
    if lower in _ABI_NAMES:
        return f"x{_ABI_NAMES[lower]}"
    if lower.startswith("x") and lower[1:].isdigit():
        number = int(lower[1:])
        if not 0 <= number <= 31:
            raise RiscvParseError(f"register number out of range: {name}")
        return f"x{number}"
    raise RiscvParseError(f"unknown register {name!r}")


def _read_register(name: str) -> Expr:
    reg = normalise_register(name)
    return Const(0) if reg == "x0" else RegE(reg)


def _dest_register(name: str) -> str:
    reg = normalise_register(name)
    return DISCARD_REG if reg == "x0" else reg


def _immediate(text: str) -> int:
    return int(text.strip(), 0)


def _address_expr(text: str) -> Expr:
    text = text.strip()
    match = _MEM_RE.match(text)
    if match:
        offset_text = match.group(1)
        base = _read_register(match.group(2))
        offset = _immediate(offset_text) if offset_text else 0
        return base if offset == 0 else BinOp("+", base, Const(offset))
    if text.startswith("(") and text.endswith(")"):
        return _read_register(text[1:-1])
    return _read_register(text)


def _amo_ordering(suffixes: list[str]) -> tuple[bool, bool]:
    """Return (acquire, release) bits from ``.aq``/``.rl``/``.aqrl``."""
    acquire = any(s in ("aq", "aqrl") for s in suffixes)
    release = any(s in ("rl", "aqrl") for s in suffixes)
    return acquire, release


def parse_instruction(line: str) -> Optional[StraightLine | Branch]:
    """Parse a single RISC-V instruction (already stripped of labels)."""
    line = line.strip()
    if not line:
        return None
    mnemonic, _sep, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    operands = [op.strip() for op in rest.split(",")] if rest.strip() else []

    if mnemonic == "nop":
        return StraightLine(Skip(), line)

    if mnemonic == "li":
        if len(operands) != 2:
            raise RiscvParseError(f"li expects two operands: {line!r}")
        return StraightLine(Assign(_dest_register(operands[0]), Const(_immediate(operands[1]))), line)

    if mnemonic == "mv":
        if len(operands) != 2:
            raise RiscvParseError(f"mv expects two operands: {line!r}")
        return StraightLine(Assign(_dest_register(operands[0]), _read_register(operands[1])), line)

    if mnemonic in _ALU_REG_OPS:
        if len(operands) != 3:
            raise RiscvParseError(f"{mnemonic} expects three operands: {line!r}")
        expr = BinOp(_ALU_REG_OPS[mnemonic], _read_register(operands[1]), _read_register(operands[2]))
        return StraightLine(Assign(_dest_register(operands[0]), expr), line)

    if mnemonic in _ALU_IMM_OPS:
        if len(operands) != 3:
            raise RiscvParseError(f"{mnemonic} expects three operands: {line!r}")
        expr = BinOp(_ALU_IMM_OPS[mnemonic], _read_register(operands[1]), Const(_immediate(operands[2])))
        return StraightLine(Assign(_dest_register(operands[0]), expr), line)

    if mnemonic in ("lw", "ld", "lb", "lh", "lwu"):
        if len(operands) != 2:
            raise RiscvParseError(f"{mnemonic} expects two operands: {line!r}")
        return StraightLine(
            Load(_dest_register(operands[0]), _address_expr(operands[1]), ReadKind.PLN, False), line
        )

    if mnemonic in ("sw", "sd", "sb", "sh"):
        if len(operands) != 2:
            raise RiscvParseError(f"{mnemonic} expects two operands: {line!r}")
        return StraightLine(
            Store(_address_expr(operands[1]), _read_register(operands[0]), WriteKind.PLN, False, None),
            line,
        )

    parts = mnemonic.split(".")
    if parts[0] == "lr":
        if len(operands) != 2:
            raise RiscvParseError(f"{mnemonic} expects two operands: {line!r}")
        acquire, _release = _amo_ordering(parts[2:])
        kind = ReadKind.ACQ if acquire else ReadKind.PLN
        return StraightLine(
            Load(_dest_register(operands[0]), _address_expr(operands[1]), kind, True), line
        )

    if parts[0] == "sc":
        if len(operands) != 3:
            raise RiscvParseError(f"{mnemonic} expects three operands: {line!r}")
        _acquire, release = _amo_ordering(parts[2:])
        kind = WriteKind.REL if release else WriteKind.PLN
        return StraightLine(
            Store(
                _address_expr(operands[2]),
                _read_register(operands[1]),
                kind,
                True,
                _dest_register(operands[0]),
            ),
            line,
        )

    if mnemonic == "fence.tso":
        return StraightLine(
            Seq(Fence(FenceSet.R, FenceSet.R), Fence(FenceSet.RW, FenceSet.W)), line
        )

    if mnemonic == "fence.i":
        # No self-modifying code in the model: fence.i is a no-op (§A.1).
        return StraightLine(Skip(), line)

    if mnemonic == "fence":
        if not operands:
            before = after = FenceSet.RW
        else:
            if len(operands) != 2:
                raise RiscvParseError(f"fence expects two operands: {line!r}")
            try:
                before = _FENCE_SETS[operands[0].lower()]
                after = _FENCE_SETS[operands[1].lower()]
            except KeyError as exc:
                raise RiscvParseError(f"unsupported fence operand in {line!r}") from exc
        return StraightLine(Fence(before, after), line)

    if mnemonic in _BRANCH_OPS:
        if len(operands) != 3:
            raise RiscvParseError(f"{mnemonic} expects three operands: {line!r}")
        cond = BinOp(_BRANCH_OPS[mnemonic], _read_register(operands[0]), _read_register(operands[1]))
        return Branch(operands[2], cond, line)

    if mnemonic in ("beqz", "bnez"):
        if len(operands) != 2:
            raise RiscvParseError(f"{mnemonic} expects two operands: {line!r}")
        op = "==" if mnemonic == "beqz" else "!="
        cond = BinOp(op, _read_register(operands[0]), Const(0))
        return Branch(operands[1], cond, line)

    if mnemonic == "j":
        if len(operands) != 1:
            raise RiscvParseError(f"j expects a label: {line!r}")
        return Branch(operands[0], None, line)

    raise RiscvParseError(f"unsupported RISC-V instruction {line!r}")


def parse_thread(text: str) -> ThreadIr:
    """Parse a RISC-V assembly fragment into thread IR."""
    instructions: list[StraightLine | Branch] = []
    labels: dict[str, int] = {}
    for raw_line in re.split(r"[\n;]", text):
        line = raw_line.split("#")[0].split("//")[0].strip()
        if not line:
            continue
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            labels[match.group(1)] = len(instructions)
            line = match.group(2).strip()
        if not line:
            continue
        instr = parse_instruction(line)
        if instr is not None:
            instructions.append(instr)
    return ThreadIr(tuple(instructions), labels, text)


__all__ = [
    "RiscvParseError",
    "DISCARD_REG",
    "normalise_register",
    "parse_instruction",
    "parse_thread",
]
