"""Statements of the calculus (Fig. 1 of the paper).

Statements are immutable, hashable dataclasses.  The operational models
use a statement as the "program counter" of a thread: executing a step
rewrites the statement (e.g. ``skip; s → s``), exactly as in Fig. 5.

Construction helpers
--------------------

``seq(s1, s2, ...)`` builds a right-nested :class:`Seq`, ``load``/``store``
build memory accesses with keyword-selected kinds, and ``DMB_SY`` etc. are
the ARMv8 barrier aliases expressed as RISC-V style two-argument fences,
exactly as §A.3 defines them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from .expr import Expr, ExprLike, Reg, expr_constants, expr_registers, to_expr
from .kinds import FenceSet, ReadKind, WriteKind


class Stmt:
    """Base class for statements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Skip(Stmt):
    """The empty statement (also the terminal state of a thread)."""

    def __repr__(self) -> str:
        return "skip"


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    """Register assignment ``r := e`` (no memory access)."""

    reg: Reg
    expr: Expr

    def __repr__(self) -> str:
        return f"{self.reg} := {self.expr!r}"


@dataclass(frozen=True, slots=True)
class Load(Stmt):
    """Memory load ``r := load_{xcl,rk} [addr]``."""

    reg: Reg
    addr: Expr
    kind: ReadKind = ReadKind.PLN
    exclusive: bool = False

    def __repr__(self) -> str:
        mods = []
        if self.exclusive:
            mods.append("ex")
        if self.kind is not ReadKind.PLN:
            mods.append(self.kind.name.lower())
        suffix = ("." + ".".join(mods)) if mods else ""
        return f"{self.reg} := load{suffix} [{self.addr!r}]"


@dataclass(frozen=True, slots=True)
class Store(Stmt):
    """Memory store ``r_succ := store_{xcl,wk} [addr] data``.

    ``succ_reg`` receives the success bit for exclusive stores (0 on
    success, 1 on failure).  Non-exclusive stores always succeed; their
    success register is architecturally written to an otherwise unused
    register, so we simply omit it (``succ_reg=None``) which is
    observationally equivalent.
    """

    addr: Expr
    data: Expr
    kind: WriteKind = WriteKind.PLN
    exclusive: bool = False
    succ_reg: Optional[Reg] = None

    def __post_init__(self) -> None:
        if self.exclusive and self.succ_reg is None:
            raise ValueError("exclusive stores must name a success register")

    def __repr__(self) -> str:
        mods = []
        if self.exclusive:
            mods.append("ex")
        if self.kind is not WriteKind.PLN:
            mods.append(self.kind.name.lower())
        suffix = ("." + ".".join(mods)) if mods else ""
        target = f"{self.succ_reg} := " if self.succ_reg else ""
        return f"{target}store{suffix} [{self.addr!r}] {self.data!r}"


@dataclass(frozen=True, slots=True)
class Fence(Stmt):
    """Two-argument fence ``fence_{K1,K2}`` ordering K1-before with K2-after."""

    before: FenceSet
    after: FenceSet

    def __repr__(self) -> str:
        return f"fence.{self.before.name!s}.{self.after.name!s}".lower()


@dataclass(frozen=True, slots=True)
class Isb(Stmt):
    """ARMv8 ``isb`` instruction-synchronisation barrier."""

    def __repr__(self) -> str:
        return "isb"


@dataclass(frozen=True, slots=True)
class If(Stmt):
    """Conditional ``if (e) s1 s2``; nonzero condition takes the then-branch."""

    cond: Expr
    then: Stmt
    orelse: Stmt

    def __repr__(self) -> str:
        return f"if ({self.cond!r}) {{ {self.then!r} }} else {{ {self.orelse!r} }}"


@dataclass(frozen=True, slots=True)
class While(Stmt):
    """Loop ``while (e) s``; the explorer bounds its unrolling."""

    cond: Expr
    body: Stmt

    def __repr__(self) -> str:
        return f"while ({self.cond!r}) {{ {self.body!r} }}"


@dataclass(frozen=True, slots=True)
class Seq(Stmt):
    """Sequential composition ``s1; s2``."""

    first: Stmt
    second: Stmt

    def __repr__(self) -> str:
        return f"{self.first!r}; {self.second!r}"


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------

#: ARMv8 full barrier dmb.sy = fence_{RW,RW}.
DMB_SY = Fence(FenceSet.RW, FenceSet.RW)
#: ARMv8 load barrier dmb.ld = fence_{R,RW}.
DMB_LD = Fence(FenceSet.R, FenceSet.RW)
#: ARMv8 store barrier dmb.st = fence_{W,W}.
DMB_ST = Fence(FenceSet.W, FenceSet.W)
#: RISC-V full fence fence rw,rw.
FENCE_RW_RW = Fence(FenceSet.RW, FenceSet.RW)
#: RISC-V fence r,rw.
FENCE_R_RW = Fence(FenceSet.R, FenceSet.RW)
#: RISC-V fence w,w.
FENCE_W_W = Fence(FenceSet.W, FenceSet.W)
#: RISC-V fence w,r (no ARMv8 equivalent; still expressible).
FENCE_W_R = Fence(FenceSet.W, FenceSet.R)


def fence_tso() -> Stmt:
    """RISC-V ``fence.tso`` = ``fence r,r ; fence rw,w`` (§A.3)."""
    return seq(Fence(FenceSet.R, FenceSet.R), Fence(FenceSet.RW, FenceSet.W))


def seq(*stmts: Stmt) -> Stmt:
    """Right-nested sequential composition of any number of statements."""
    items = [s for s in stmts if not isinstance(s, Skip)]
    if not items:
        return Skip()
    result = items[-1]
    for stmt in reversed(items[:-1]):
        result = Seq(stmt, result)
    return result


def load(
    reg: Reg,
    addr: ExprLike,
    *,
    kind: ReadKind = ReadKind.PLN,
    exclusive: bool = False,
) -> Load:
    """Build a load statement, coercing integer addresses to constants."""
    return Load(reg, to_expr(addr), kind, exclusive)


def store(
    addr: ExprLike,
    data: ExprLike,
    *,
    kind: WriteKind = WriteKind.PLN,
    exclusive: bool = False,
    succ_reg: Optional[Reg] = None,
) -> Store:
    """Build a store statement, coercing integer operands to constants."""
    return Store(to_expr(addr), to_expr(data), kind, exclusive, succ_reg)


def assign(reg: Reg, expr: ExprLike) -> Assign:
    """Build a register assignment."""
    return Assign(reg, to_expr(expr))


def if_(cond: ExprLike, then: Stmt, orelse: Stmt | None = None) -> If:
    """Build a conditional; the else branch defaults to ``skip``."""
    return If(to_expr(cond), then, orelse if orelse is not None else Skip())


def while_(cond: ExprLike, body: Stmt) -> While:
    """Build a loop."""
    return While(to_expr(cond), body)


# ---------------------------------------------------------------------------
# Structural queries
# ---------------------------------------------------------------------------


def iter_statements(stmt: Stmt) -> Iterator[Stmt]:
    """Yield ``stmt`` and every nested statement (pre-order)."""
    yield stmt
    if isinstance(stmt, Seq):
        yield from iter_statements(stmt.first)
        yield from iter_statements(stmt.second)
    elif isinstance(stmt, If):
        yield from iter_statements(stmt.then)
        yield from iter_statements(stmt.orelse)
    elif isinstance(stmt, While):
        yield from iter_statements(stmt.body)


def statement_registers(stmt: Stmt) -> frozenset[Reg]:
    """All registers read or written anywhere in ``stmt``."""
    regs: set[Reg] = set()
    for node in iter_statements(stmt):
        if isinstance(node, Assign):
            regs.add(node.reg)
            regs |= expr_registers(node.expr)
        elif isinstance(node, Load):
            regs.add(node.reg)
            regs |= expr_registers(node.addr)
        elif isinstance(node, Store):
            regs |= expr_registers(node.addr)
            regs |= expr_registers(node.data)
            if node.succ_reg is not None:
                regs.add(node.succ_reg)
        elif isinstance(node, (If, While)):
            regs |= expr_registers(node.cond)
    return frozenset(regs)


def statement_constants(stmt: Stmt) -> frozenset[int]:
    """All integer literals occurring anywhere in ``stmt``."""
    consts: set[int] = set()
    for node in iter_statements(stmt):
        if isinstance(node, Assign):
            consts |= expr_constants(node.expr)
        elif isinstance(node, Load):
            consts |= expr_constants(node.addr)
        elif isinstance(node, Store):
            consts |= expr_constants(node.addr)
            consts |= expr_constants(node.data)
        elif isinstance(node, (If, While)):
            consts |= expr_constants(node.cond)
    return frozenset(consts)


def count_memory_accesses(stmt: Stmt) -> int:
    """Number of load/store statements syntactically present."""
    return sum(
        1 for node in iter_statements(stmt) if isinstance(node, (Load, Store))
    )


def has_loops(stmt: Stmt) -> bool:
    """Whether the statement contains a ``while`` loop."""
    return any(isinstance(node, While) for node in iter_statements(stmt))


def statement_size(stmt: Stmt) -> int:
    """Number of statement nodes (a rough complexity measure)."""
    return sum(1 for _ in iter_statements(stmt))


_FRESH_COUNTER = itertools.count()


def fresh_register(prefix: str = "tmp") -> Reg:
    """Return a register name unlikely to clash with user registers."""
    return f"_{prefix}{next(_FRESH_COUNTER)}"


__all__ = [
    "Stmt",
    "Skip",
    "Assign",
    "Load",
    "Store",
    "Fence",
    "Isb",
    "If",
    "While",
    "Seq",
    "DMB_SY",
    "DMB_LD",
    "DMB_ST",
    "FENCE_RW_RW",
    "FENCE_R_RW",
    "FENCE_W_W",
    "FENCE_W_R",
    "fence_tso",
    "seq",
    "load",
    "store",
    "assign",
    "if_",
    "while_",
    "iter_statements",
    "statement_registers",
    "statement_constants",
    "count_memory_accesses",
    "has_loops",
    "statement_size",
    "fresh_register",
]
