"""Pure expressions of the calculus (Fig. 1).

Expressions are constants, registers, and binary arithmetic/comparison
operators.  They never access memory; memory is only touched by the load
and store statements.  The promising model evaluates expressions over a
register file mapping each register to a *value–view* pair; the plain
value-level evaluation used by the axiomatic model and by tests lives here
as :func:`eval_expr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Union

Value = int
Reg = str

#: Operator table shared by every interpreter of the calculus.  Comparison
#: operators return 1/0 so they can feed conditional branches directly.
OPERATORS: dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
}


class Expr:
    """Base class for pure expressions."""

    __slots__ = ()

    # Convenience operator overloads so tests and workloads can write
    # ``R("r1") + 1`` instead of ``BinOp("+", RegE("r1"), Const(1))``.
    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", self, to_expr(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", to_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", self, to_expr(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", to_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", self, to_expr(other))

    def __and__(self, other: "ExprLike") -> "BinOp":
        return BinOp("&", self, to_expr(other))

    def __or__(self, other: "ExprLike") -> "BinOp":
        return BinOp("|", self, to_expr(other))

    def __xor__(self, other: "ExprLike") -> "BinOp":
        return BinOp("^", self, to_expr(other))

    def eq(self, other: "ExprLike") -> "BinOp":
        """Equality comparison (returns 1/0)."""
        return BinOp("==", self, to_expr(other))

    def ne(self, other: "ExprLike") -> "BinOp":
        """Disequality comparison (returns 1/0)."""
        return BinOp("!=", self, to_expr(other))

    def lt(self, other: "ExprLike") -> "BinOp":
        return BinOp("<", self, to_expr(other))

    def ge(self, other: "ExprLike") -> "BinOp":
        return BinOp(">=", self, to_expr(other))


ExprLike = Union[Expr, int]


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """Integer literal.  In the model constants carry view 0."""

    value: Value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class RegE(Expr):
    """Register read inside an expression."""

    reg: Reg

    def __repr__(self) -> str:
        return self.reg


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """Binary operator application ``e1 op e2``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(f"unknown operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def to_expr(value: ExprLike) -> Expr:
    """Coerce an ``int`` into :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; normalise
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to an expression")


def R(name: Reg) -> RegE:
    """Shorthand constructor for a register expression."""
    return RegE(name)


def eval_expr(expr: Expr, regs: Mapping[Reg, Value]) -> Value:
    """Evaluate ``expr`` over a plain value register file.

    Missing registers read as 0, mirroring the model's initial register
    state.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, RegE):
        return regs.get(expr.reg, 0)
    if isinstance(expr, BinOp):
        return OPERATORS[expr.op](eval_expr(expr.left, regs), eval_expr(expr.right, regs))
    raise TypeError(f"not an expression: {expr!r}")


def expr_registers(expr: Expr) -> frozenset[Reg]:
    """Set of registers syntactically occurring in ``expr``.

    Syntactic occurrence is what creates dependencies in ARMv8/RISC-V:
    ``x + (r1 - r1)`` depends on ``r1`` even though the value does not.
    """
    if isinstance(expr, Const):
        return frozenset()
    if isinstance(expr, RegE):
        return frozenset((expr.reg,))
    if isinstance(expr, BinOp):
        return expr_registers(expr.left) | expr_registers(expr.right)
    raise TypeError(f"not an expression: {expr!r}")


def expr_constants(expr: Expr) -> frozenset[Value]:
    """Set of integer literals occurring in ``expr``."""
    if isinstance(expr, Const):
        return frozenset((expr.value,))
    if isinstance(expr, RegE):
        return frozenset()
    if isinstance(expr, BinOp):
        return expr_constants(expr.left) | expr_constants(expr.right)
    raise TypeError(f"not an expression: {expr!r}")


def substitute(expr: Expr, mapping: Mapping[Reg, Expr]) -> Expr:
    """Substitute registers by expressions (used by optimisation passes)."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, RegE):
        return mapping.get(expr.reg, expr)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            substitute(expr.left, mapping),
            substitute(expr.right, mapping),
        )
    raise TypeError(f"not an expression: {expr!r}")


def rename_registers(expr: Expr, mapping: Mapping[Reg, Reg]) -> Expr:
    """Rename registers in an expression."""
    return substitute(expr, {old: RegE(new) for old, new in mapping.items()})


def dependency_idiom(base: ExprLike, reg: Reg) -> Expr:
    """The classic artificial-dependency idiom ``base + (reg - reg)``.

    ARMv8/RISC-V treat syntactic dependencies as ordering even when the
    value cancels out; this helper builds the address expression used
    throughout the paper's examples.
    """
    return to_expr(base) + (RegE(reg) - RegE(reg))


def iter_subexpressions(expr: Expr) -> Iterable[Expr]:
    """Yield ``expr`` and all of its sub-expressions (pre-order)."""
    yield expr
    if isinstance(expr, BinOp):
        yield from iter_subexpressions(expr.left)
        yield from iter_subexpressions(expr.right)


__all__ = [
    "Value",
    "Reg",
    "OPERATORS",
    "Expr",
    "Const",
    "RegE",
    "BinOp",
    "ExprLike",
    "to_expr",
    "R",
    "eval_expr",
    "expr_registers",
    "expr_constants",
    "substitute",
    "rename_registers",
    "dependency_idiom",
    "iter_subexpressions",
]
