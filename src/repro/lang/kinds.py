"""Access kinds, fence kinds and architecture flags for the calculus.

The paper's language (Fig. 1) annotates every load with a *read kind*
(plain, weak-acquire, acquire), every store with a *write kind* (plain,
weak-release, release) and an *exclusive* flag, and provides the RISC-V
style two-argument fences ``fence_{K1,K2}`` from which the ARMv8 barriers
are derived (``dmb.sy = fence_{RW,RW}`` and so on).

The orderings used by the model rules (``rk ⊒ acq``, ``wk ⊒ wrel``,
``R ⊑ K1`` ...) are exposed here as small helper methods so the semantics
in :mod:`repro.promising` reads exactly like Fig. 5 of the paper.
"""

from __future__ import annotations

import enum


class Arch(enum.Enum):
    """Target architecture flag (the ``a`` parameter of the full model).

    The ARM and RISC-V variants of Promising share all rules except the
    treatment of store-exclusive success registers and of forwarding from
    exclusive writes (rules ρ12/ρ13 in §A of the paper).
    """

    ARM = "ARM"
    RISCV = "RISC-V"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Accepted spellings of each architecture, shared by every user-facing
#: surface (CLI flags, litmus headers, service requests) so the alias
#: sets cannot drift apart.
ARCH_ALIASES = {
    "arm": Arch.ARM,
    "aarch64": Arch.ARM,
    "armv8": Arch.ARM,
    "riscv": Arch.RISCV,
    "risc-v": Arch.RISCV,
    "rv64": Arch.RISCV,
}


def parse_arch(name: str) -> "Arch | None":
    """Resolve an architecture spelling, or ``None`` if unrecognised."""
    return ARCH_ALIASES.get(name.strip().lower())


class ReadKind(enum.IntEnum):
    """Read kinds: plain ⊑ weak-acquire ⊑ acquire.

    ``IntEnum`` ordering implements the ⊑ lattice used by the read rule
    (``rk ⊒ wacq`` enables acquire behaviour, ``rk ⊒ acq`` additionally
    orders the load after earlier strong releases).
    """

    PLN = 0
    WACQ = 1
    ACQ = 2

    @property
    def is_acquire(self) -> bool:
        """True for both weak and strong acquires (``rk ⊒ wacq``)."""
        return self >= ReadKind.WACQ

    @property
    def is_strong_acquire(self) -> bool:
        """True only for strong acquires (``rk ⊒ acq``)."""
        return self >= ReadKind.ACQ


class WriteKind(enum.IntEnum):
    """Write kinds: plain ⊑ weak-release ⊑ release."""

    PLN = 0
    WREL = 1
    REL = 2

    @property
    def is_release(self) -> bool:
        """True for both weak and strong releases (``wk ⊒ wrel``)."""
        return self >= WriteKind.WREL

    @property
    def is_strong_release(self) -> bool:
        """True only for strong releases (``wk ⊒ rel``)."""
        return self >= WriteKind.REL


class FenceSet(enum.Flag):
    """Operand of the two-argument fence: reads, writes or both.

    ``K ⊑ K'`` is flag containment; e.g. ``R ⊑ RW`` holds.
    """

    NONE = 0
    R = enum.auto()
    W = enum.auto()
    RW = R | W

    def includes(self, other: "FenceSet") -> bool:
        """Return ``other ⊑ self`` (set containment on {R, W})."""
        return (self & other) == other


#: Success value written to the status register of a successful store
#: exclusive (the ARM convention: zero signals success).
VSUCC = 0

#: Failure value written by a failed store exclusive.
VFAIL = 1

#: Initial value held by every memory location before any write.
VINIT = 0


__all__ = [
    "Arch",
    "ReadKind",
    "WriteKind",
    "FenceSet",
    "VSUCC",
    "VFAIL",
    "VINIT",
]
