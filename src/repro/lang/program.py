"""Concurrent programs: a fixed pool of threads plus initial memory.

The paper's machine state is a thread pool and a memory; dynamic thread
creation is not modelled.  A :class:`Program` packages the per-thread
statements together with the initial memory values, symbolic names for
locations (for pretty-printing), and an optional set of *shared* locations
used by the explorer's local-location optimisation (§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from .ast import Stmt, count_memory_accesses, statement_constants, statement_registers
from .expr import Value

Loc = int
TId = int


@dataclass(frozen=True)
class Program:
    """An immutable concurrent program.

    Attributes
    ----------
    threads:
        Statements indexed by thread id ``0..n-1``.
    initial:
        Initial memory values; locations absent from this mapping hold 0,
        matching the paper's convention that memory initially holds 0
        everywhere.
    loc_names:
        Optional symbolic names for locations, used only for display.
    name:
        Optional test name (litmus tests carry one).
    """

    threads: tuple[Stmt, ...]
    initial: Mapping[Loc, Value] = field(default_factory=dict)
    loc_names: Mapping[Loc, str] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "initial", dict(self.initial))
        object.__setattr__(self, "loc_names", dict(self.loc_names))

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def thread_ids(self) -> range:
        return range(len(self.threads))

    def thread(self, tid: TId) -> Stmt:
        return self.threads[tid]

    def registers(self) -> frozenset[str]:
        """All registers used by any thread."""
        regs: set[str] = set()
        for stmt in self.threads:
            regs |= statement_registers(stmt)
        return frozenset(regs)

    def constants(self) -> frozenset[int]:
        """All integer literals used by any thread plus initial values."""
        consts: set[int] = set(self.initial.values())
        for stmt in self.threads:
            consts |= statement_constants(stmt)
        return frozenset(consts)

    def memory_access_count(self) -> int:
        """Static count of loads and stores across all threads."""
        return sum(count_memory_accesses(stmt) for stmt in self.threads)

    def loc_name(self, loc: Loc) -> str:
        """Human-readable name of a location (falls back to the number)."""
        return self.loc_names.get(loc, f"m[{loc}]")

    def initial_value(self, loc: Loc) -> Value:
        """Initial value of ``loc`` (0 unless overridden)."""
        return self.initial.get(loc, 0)

    def with_name(self, name: str) -> "Program":
        return Program(self.threads, self.initial, self.loc_names, name)

    def describe(self) -> str:
        """A short multi-line description used by the CLI and examples."""
        lines = [f"program {self.name or '<anonymous>'}: {self.n_threads} threads"]
        for loc in sorted(self.loc_names):
            lines.append(f"  {self.loc_names[loc]} @ {loc} = {self.initial_value(loc)}")
        for tid, stmt in enumerate(self.threads):
            lines.append(f"  thread {tid}: {stmt!r}")
        return "\n".join(lines)


class LocationEnv:
    """Allocator of distinct memory locations with symbolic names.

    Workloads and litmus tests refer to shared variables by name; the
    calculus addresses memory by integers.  A :class:`LocationEnv` maps
    names to integer addresses (spaced by ``stride`` to resemble real
    object layouts) and records the mapping for pretty-printing.
    """

    def __init__(self, stride: int = 8, base: int = 0) -> None:
        if stride <= 0:
            raise ValueError("stride must be positive")
        self._stride = stride
        self._next = base
        self._by_name: dict[str, Loc] = {}

    def __getitem__(self, name: str) -> Loc:
        return self.loc(name)

    def loc(self, name: str) -> Loc:
        """Return the address of ``name``, allocating it on first use."""
        if name not in self._by_name:
            self._by_name[name] = self._next
            self._next += self._stride
        return self._by_name[name]

    def array(self, name: str, length: int) -> list[Loc]:
        """Allocate ``length`` consecutive cells named ``name[i]``."""
        return [self.loc(f"{name}[{i}]") for i in range(length)]

    def names(self) -> dict[Loc, str]:
        """Mapping from address to name, for :class:`Program.loc_names`."""
        return {loc: name for name, loc in self._by_name.items()}

    def defined(self, name: str) -> bool:
        return name in self._by_name

    def __contains__(self, name: str) -> bool:
        return self.defined(name)

    def __len__(self) -> int:
        return len(self._by_name)


def make_program(
    threads: Sequence[Stmt],
    *,
    initial: Optional[Mapping[Loc, Value]] = None,
    env: Optional[LocationEnv] = None,
    loc_names: Optional[Mapping[Loc, str]] = None,
    name: str = "",
) -> Program:
    """Convenience constructor combining an optional :class:`LocationEnv`."""
    names: dict[Loc, str] = {}
    if env is not None:
        names.update(env.names())
    if loc_names:
        names.update(loc_names)
    return Program(tuple(threads), dict(initial or {}), names, name)


__all__ = ["Loc", "TId", "Program", "LocationEnv", "make_program"]
