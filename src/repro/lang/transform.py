"""Program transformations used by the explorer and the front ends.

* :func:`unroll_loops` — bounded loop unrolling (the executable model
  bounds loops, §3/§7).
* :func:`localise_private_locations` — the shared-location optimisation of
  §7: accesses to locations that are only ever touched by one thread are
  turned into register moves, which removes them from the interleaving
  problem while preserving register dataflow (and hence dependencies).
* :func:`rename_registers_stmt` — α-renaming of registers, used by the
  assembly front ends to keep thread register files disjoint.
* :func:`private_locations` — the supporting analysis: which statically
  named locations are accessed by at most one thread.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .ast import (
    Assign,
    Fence,
    If,
    Isb,
    Load,
    Seq,
    Skip,
    Stmt,
    Store,
    While,
    seq,
)
from .expr import Const, Expr, RegE, eval_expr, expr_registers, rename_registers
from .program import Loc, Program


def unroll_loops(stmt: Stmt, bound: int) -> Stmt:
    """Unroll every ``while`` loop ``bound`` times.

    The remaining iterations are replaced by ``skip`` — the standard
    loop-bounding treatment for exhaustive exploration: behaviours that
    need more than ``bound`` iterations are simply not explored.
    """
    if bound < 0:
        raise ValueError("unroll bound must be non-negative")
    if isinstance(stmt, Seq):
        return Seq(unroll_loops(stmt.first, bound), unroll_loops(stmt.second, bound))
    if isinstance(stmt, If):
        return If(stmt.cond, unroll_loops(stmt.then, bound), unroll_loops(stmt.orelse, bound))
    if isinstance(stmt, While):
        body = unroll_loops(stmt.body, bound)
        result: Stmt = Skip()
        for _ in range(bound):
            result = If(stmt.cond, seq(body, result), Skip())
        return result
    return stmt


def unroll_program(program: Program, bound: int) -> Program:
    """Unroll every thread of a program (see :func:`unroll_loops`)."""
    return Program(
        tuple(unroll_loops(t, bound) for t in program.threads),
        program.initial,
        program.loc_names,
        program.name,
    )


def rename_registers_stmt(stmt: Stmt, mapping: Mapping[str, str]) -> Stmt:
    """Rename registers throughout a statement."""

    def ren_expr(expr: Expr) -> Expr:
        return rename_registers(expr, mapping)

    if isinstance(stmt, Skip):
        return stmt
    if isinstance(stmt, Assign):
        return Assign(mapping.get(stmt.reg, stmt.reg), ren_expr(stmt.expr))
    if isinstance(stmt, Load):
        return Load(mapping.get(stmt.reg, stmt.reg), ren_expr(stmt.addr), stmt.kind, stmt.exclusive)
    if isinstance(stmt, Store):
        succ = mapping.get(stmt.succ_reg, stmt.succ_reg) if stmt.succ_reg else None
        return Store(ren_expr(stmt.addr), ren_expr(stmt.data), stmt.kind, stmt.exclusive, succ)
    if isinstance(stmt, (Fence, Isb)):
        return stmt
    if isinstance(stmt, If):
        return If(ren_expr(stmt.cond), rename_registers_stmt(stmt.then, mapping), rename_registers_stmt(stmt.orelse, mapping))
    if isinstance(stmt, While):
        return While(ren_expr(stmt.cond), rename_registers_stmt(stmt.body, mapping))
    if isinstance(stmt, Seq):
        return Seq(rename_registers_stmt(stmt.first, mapping), rename_registers_stmt(stmt.second, mapping))
    raise TypeError(f"not a statement: {stmt!r}")


# ---------------------------------------------------------------------------
# Shared-location optimisation (§7)
# ---------------------------------------------------------------------------


def _static_address(expr: Expr) -> Optional[Loc]:
    """Return the address if ``expr`` is a register-free constant expression."""
    if expr_registers(expr):
        return None
    return eval_expr(expr, {})


def accessed_locations(stmt: Stmt) -> tuple[frozenset[Loc], bool]:
    """Statically known locations accessed by ``stmt``.

    Returns ``(locations, all_static)``; ``all_static`` is False when some
    access address depends on registers, in which case the analysis cannot
    conclude anything about that access's footprint.
    """
    locs: set[Loc] = set()
    all_static = True

    def visit(node: Stmt) -> None:
        nonlocal all_static
        if isinstance(node, Seq):
            visit(node.first)
            visit(node.second)
        elif isinstance(node, If):
            visit(node.then)
            visit(node.orelse)
        elif isinstance(node, While):
            visit(node.body)
        elif isinstance(node, (Load, Store)):
            addr = _static_address(node.addr)
            if addr is None:
                all_static = False
            else:
                locs.add(addr)

    visit(stmt)
    return frozenset(locs), all_static


def private_locations(program: Program) -> frozenset[Loc]:
    """Locations provably accessed by at most one thread.

    If any thread contains a dynamically addressed access the analysis is
    conservative and returns the empty set (that access could alias any
    location).
    """
    footprints: list[frozenset[Loc]] = []
    for stmt in program.threads:
        locs, all_static = accessed_locations(stmt)
        if not all_static:
            return frozenset()
        footprints.append(locs)
    shared: set[Loc] = set()
    for i, locs in enumerate(footprints):
        for j, other in enumerate(footprints):
            if i < j:
                shared |= locs & other
    every = frozenset().union(*footprints) if footprints else frozenset()
    return frozenset(every - shared)


def _localise_stmt(stmt: Stmt, private: frozenset[Loc], reg_of: dict[Loc, str]) -> Stmt:
    """Rewrite accesses to private locations as register moves."""

    def reg_for(loc: Loc) -> str:
        if loc not in reg_of:
            reg_of[loc] = f"_loc{loc}"
        return reg_of[loc]

    if isinstance(stmt, Seq):
        return Seq(_localise_stmt(stmt.first, private, reg_of), _localise_stmt(stmt.second, private, reg_of))
    if isinstance(stmt, If):
        return If(stmt.cond, _localise_stmt(stmt.then, private, reg_of), _localise_stmt(stmt.orelse, private, reg_of))
    if isinstance(stmt, While):
        return While(stmt.cond, _localise_stmt(stmt.body, private, reg_of))
    if isinstance(stmt, Load):
        addr = _static_address(stmt.addr)
        if addr is not None and addr in private and not stmt.exclusive:
            return Assign(stmt.reg, RegE(reg_for(addr)))
        return stmt
    if isinstance(stmt, Store):
        addr = _static_address(stmt.addr)
        if addr is not None and addr in private and not stmt.exclusive:
            return Assign(reg_for(addr), stmt.data)
        return stmt
    return stmt


def localise_private_locations(
    program: Program, extra_shared: Iterable[Loc] = ()
) -> tuple[Program, frozenset[Loc]]:
    """Apply the §7 shared-location optimisation.

    Accesses to locations used by a single thread become register
    reads/writes; the initial value of such a location seeds the register.
    Exclusive accesses are never localised (their semantics involves the
    global memory).  Returns the rewritten program and the set of
    localised locations.

    ``extra_shared`` lets callers (e.g. a litmus final-state condition that
    mentions a location) force locations to stay in memory.
    """
    private = private_locations(program) - frozenset(extra_shared)
    if not private:
        return program, frozenset()
    new_threads = []
    for stmt in program.threads:
        reg_of: dict[Loc, str] = {}
        body = _localise_stmt(stmt, private, reg_of)
        # Seed the localised registers with the location's initial value.
        inits = [
            Assign(reg, Const(program.initial_value(loc)))
            for loc, reg in sorted(reg_of.items())
        ]
        new_threads.append(seq(*inits, body) if inits else body)
    new_initial = {
        loc: val for loc, val in program.initial.items() if loc not in private
    }
    rewritten = Program(tuple(new_threads), new_initial, program.loc_names, program.name)
    return rewritten, private


__all__ = [
    "unroll_loops",
    "unroll_program",
    "rename_registers_stmt",
    "accessed_locations",
    "private_locations",
    "localise_private_locations",
]
