"""Litmus tests: conditions, catalogue, generators, runners."""

from .conditions import (
    And,
    Condition,
    MemEq,
    Not,
    Or,
    RegEq,
    TrueCond,
    cond_and,
    cond_or,
    parse_condition,
)
from .test import LitmusTest, Verdict, allowed
from .catalogue import all_tests, get_test, tests_by_name
from .generators import (
    Linkage,
    generate_battery,
    generate_lb,
    generate_mp,
    generate_s,
    generate_sb,
    generate_wrc,
)
from .runner import (
    AgreementReport,
    RunResult,
    check_agreement,
    run_axiomatic,
    run_flat,
    run_promising,
)

__all__ = [
    "And",
    "Condition",
    "MemEq",
    "Not",
    "Or",
    "RegEq",
    "TrueCond",
    "cond_and",
    "cond_or",
    "parse_condition",
    "LitmusTest",
    "Verdict",
    "allowed",
    "all_tests",
    "get_test",
    "tests_by_name",
    "Linkage",
    "generate_battery",
    "generate_lb",
    "generate_mp",
    "generate_s",
    "generate_sb",
    "generate_wrc",
    "AgreementReport",
    "RunResult",
    "check_agreement",
    "run_axiomatic",
    "run_flat",
    "run_promising",
]
