"""Catalogue of classic ARMv8/RISC-V litmus tests with expected verdicts.

These are the standard shapes from the relaxed-memory literature (and from
the paper's own examples in §2/§4/§A): message passing, store buffering,
load buffering, coherence, write-to-read causality, IRIW, PPOCA/PPOAA, and
load/store-exclusive tests.  The expected verdicts are the architectural
ones for ARMv8 and RISC-V (which agree on all tests below) and serve as
the ground truth for the model test-suites and for the litmus-agreement
experiment (§7).

Every test is built in the paper's calculus; the same tests are available
through the assembly front ends in :mod:`repro.isa` (see
``tests/test_isa_litmus.py`` for the correspondence).
"""

from __future__ import annotations


from ..lang import (
    DMB_LD,
    DMB_ST,
    DMB_SY,
    Isb,
    LocationEnv,
    R,
    ReadKind,
    WriteKind,
    dependency_idiom,
    fence_tso,
    if_,
    load,
    make_program,
    seq,
    store,
)
from .conditions import MemEq, RegEq, cond_and
from .test import LitmusTest, allowed


def _env() -> LocationEnv:
    return LocationEnv(stride=8)


def _test(name, threads, condition, expected, env, description="", initial=None):
    program = make_program(threads, env=env, name=name, initial=initial or {})
    return LitmusTest(name, program, condition, expected, description)


# ---------------------------------------------------------------------------
# Message passing (MP) family
# ---------------------------------------------------------------------------


def mp_family() -> list[LitmusTest]:
    tests = []

    def writer(env, barrier=DMB_SY, rel=False):
        x, y = env["x"], env["y"]
        if rel:
            return seq(store(x, 1), store(y, 1, kind=WriteKind.REL))
        return seq(store(x, 1), barrier, store(y, 1))

    def cond(env):
        return cond_and(RegEq(1, "r1", 1), RegEq(1, "r2", 0))

    env = _env()
    tests.append(
        _test(
            "MP",
            [seq(store(env["x"], 1), store(env["y"], 1)),
             seq(load("r1", env["y"]), load("r2", env["x"]))],
            cond(env),
            allowed(True),
            env,
            "plain message passing: reads may be satisfied out of order",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb+po",
            [writer(env), seq(load("r1", env["y"]), load("r2", env["x"]))],
            cond(env),
            allowed(True),
            env,
            "barrier on the writer only does not order the reader's loads",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmbs",
            [writer(env), seq(load("r1", env["y"]), DMB_SY, load("r2", env["x"]))],
            cond(env),
            allowed(False),
            env,
            "full barriers on both sides forbid the relaxed outcome",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb+addr",
            [writer(env), seq(load("r1", env["y"]), load("r2", dependency_idiom(env["x"], "r1")))],
            cond(env),
            allowed(False),
            env,
            "address dependency orders the reader's loads",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb+ctrl",
            [writer(env),
             seq(load("r1", env["y"]),
                 if_(R("r1").eq(1), load("r2", env["x"]), load("r2", env["x"])))],
            cond(env),
            allowed(True),
            env,
            "control dependency does not order loads (branch speculation)",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb+ctrlisb",
            [writer(env),
             seq(load("r1", env["y"]),
                 if_(R("r1").eq(1), seq(Isb(), load("r2", env["x"])),
                     seq(Isb(), load("r2", env["x"]))))],
            cond(env),
            allowed(False),
            env,
            "control dependency plus isb orders the loads",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb.st+addr",
            [seq(store(env["x"], 1), DMB_ST, store(env["y"], 1)),
             seq(load("r1", env["y"]), load("r2", dependency_idiom(env["x"], "r1")))],
            cond(env),
            allowed(False),
            env,
            "dmb.st orders the writes; addr orders the reads",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+po+addr",
            [seq(store(env["x"], 1), store(env["y"], 1)),
             seq(load("r1", env["y"]), load("r2", dependency_idiom(env["x"], "r1")))],
            cond(env),
            allowed(True),
            env,
            "without write-side ordering the writes may be reordered",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+rel+acq",
            [writer(env, rel=True),
             seq(load("r1", env["y"], kind=ReadKind.ACQ), load("r2", env["x"]))],
            cond(env),
            allowed(False),
            env,
            "release/acquire message passing is forbidden",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+rel+po",
            [writer(env, rel=True), seq(load("r1", env["y"]), load("r2", env["x"]))],
            cond(env),
            allowed(True),
            env,
            "release write alone does not order the reader",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb+acq",
            [writer(env), seq(load("r1", env["y"], kind=ReadKind.ACQ), load("r2", env["x"]))],
            cond(env),
            allowed(False),
            env,
            "acquire load orders everything po-after it",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb+wacq",
            [writer(env), seq(load("r1", env["y"], kind=ReadKind.WACQ), load("r2", env["x"]))],
            cond(env),
            allowed(False),
            env,
            "weak acquire (LDAPR-style) also orders po-later accesses",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb.ld",
            [writer(env), seq(load("r1", env["y"]), DMB_LD, load("r2", env["x"]))],
            cond(env),
            allowed(False),
            env,
            "dmb.ld orders the reader's loads",
        )
    )

    env = _env()
    tests.append(
        _test(
            "MP+dmb.st+dmb.ld",
            [seq(store(env["x"], 1), DMB_ST, store(env["y"], 1)),
             seq(load("r1", env["y"]), DMB_LD, load("r2", env["x"]))],
            cond(env),
            allowed(False),
            env,
            "the weak barriers suffice for message passing",
        )
    )
    return tests


# ---------------------------------------------------------------------------
# Store buffering (SB), load buffering (LB), S, R, 2+2W
# ---------------------------------------------------------------------------


def sb_family() -> list[LitmusTest]:
    tests = []

    def cond():
        return cond_and(RegEq(0, "r1", 0), RegEq(1, "r2", 0))

    env = _env()
    tests.append(
        _test(
            "SB",
            [seq(store(env["x"], 1), load("r1", env["y"])),
             seq(store(env["y"], 1), load("r2", env["x"]))],
            cond(),
            allowed(True),
            env,
            "store buffering: both reads may miss the other thread's write",
        )
    )

    env = _env()
    tests.append(
        _test(
            "SB+dmbs",
            [seq(store(env["x"], 1), DMB_SY, load("r1", env["y"])),
             seq(store(env["y"], 1), DMB_SY, load("r2", env["x"]))],
            cond(),
            allowed(False),
            env,
            "full barriers forbid store buffering",
        )
    )

    env = _env()
    tests.append(
        _test(
            "SB+rel+acq",
            [seq(store(env["x"], 1, kind=WriteKind.REL), load("r1", env["y"], kind=ReadKind.ACQ)),
             seq(store(env["y"], 1, kind=WriteKind.REL), load("r2", env["x"], kind=ReadKind.ACQ))],
            cond(),
            allowed(False),
            env,
            "a strong release is ordered before a po-later strong acquire ([RL];po;[AQ])",
        )
    )

    env = _env()
    tests.append(
        _test(
            "SB+rel+wacq",
            [seq(store(env["x"], 1, kind=WriteKind.REL), load("r1", env["y"], kind=ReadKind.WACQ)),
             seq(store(env["y"], 1, kind=WriteKind.REL), load("r2", env["x"], kind=ReadKind.WACQ))],
            cond(),
            allowed(True),
            env,
            "weak acquires are not ordered after earlier releases, so SB stays allowed",
        )
    )

    env = _env()
    tests.append(
        _test(
            "SB+dmb.st+dmb.ld",
            [seq(store(env["x"], 1), DMB_ST, load("r1", env["y"])),
             seq(store(env["y"], 1), DMB_LD, load("r2", env["x"]))],
            cond(),
            allowed(True),
            env,
            "the weak barriers do not order store→load",
        )
    )
    return tests


def lb_family() -> list[LitmusTest]:
    tests = []

    def cond():
        return cond_and(RegEq(0, "r1", 1), RegEq(1, "r2", 1))

    env = _env()
    tests.append(
        _test(
            "LB",
            [seq(load("r1", env["x"]), store(env["y"], 1)),
             seq(load("r2", env["y"]), store(env["x"], 1))],
            cond(),
            allowed(True),
            env,
            "load buffering: stores may execute before the loads",
        )
    )

    env = _env()
    tests.append(
        _test(
            "LB+datas",
            [seq(load("r1", env["x"]), store(env["y"], R("r1"))),
             seq(load("r2", env["y"]), store(env["x"], R("r2")))],
            cond(),
            allowed(False),
            env,
            "data dependencies on both sides forbid load buffering",
        )
    )

    env = _env()
    tests.append(
        _test(
            "LB+data+po",
            [seq(load("r1", env["x"]), store(env["y"], R("r1"))),
             seq(load("r2", env["y"]), store(env["x"], 1))],
            cond(),
            allowed(True),
            env,
            "a dependency on only one side leaves the cycle possible",
        )
    )

    env = _env()
    tests.append(
        _test(
            "LB+ctrls",
            [seq(load("r1", env["x"]), if_(R("r1").eq(1), store(env["y"], 1))),
             seq(load("r2", env["y"]), if_(R("r2").eq(1), store(env["x"], 1)))],
            cond(),
            allowed(False),
            env,
            "control dependencies order stores after the loads they depend on",
        )
    )

    env = _env()
    tests.append(
        _test(
            "LB+addrs",
            [seq(load("r1", env["x"]), store(dependency_idiom(env["y"], "r1"), 1)),
             seq(load("r2", env["y"]), store(dependency_idiom(env["x"], "r2"), 1))],
            cond(),
            allowed(False),
            env,
            "address dependencies to the stores forbid load buffering",
        )
    )

    env = _env()
    tests.append(
        _test(
            "LB+rels",
            [seq(load("r1", env["x"]), store(env["y"], 1, kind=WriteKind.REL)),
             seq(load("r2", env["y"]), store(env["x"], 1, kind=WriteKind.REL))],
            cond(),
            allowed(False),
            env,
            "release stores are ordered after all program-order earlier accesses",
        )
    )
    return tests


def s_r_w_family() -> list[LitmusTest]:
    tests = []

    # S: the write of T1 must not fall coherence-before T0's first write.
    env = _env()
    tests.append(
        _test(
            "S+dmb+data",
            [seq(store(env["x"], 2), DMB_SY, store(env["y"], 1)),
             seq(load("r1", env["y"]), store(env["x"], R("r1")))],
            cond_and(RegEq(1, "r1", 1), MemEq(env["x"], 2, "x")),
            allowed(False),
            env,
            "S with data dependency: the dependent write cannot lose to the first write",
        )
    )
    env = _env()
    tests.append(
        _test(
            "S+dmb+po",
            [seq(store(env["x"], 2), DMB_SY, store(env["y"], 1)),
             seq(load("r1", env["y"]), store(env["x"], 1))],
            cond_and(RegEq(1, "r1", 1), MemEq(env["x"], 2, "x")),
            allowed(True),
            env,
            "without the dependency the independent write may be promised early",
        )
    )

    # R
    env = _env()
    tests.append(
        _test(
            "R+dmbs",
            [seq(store(env["x"], 1), DMB_SY, store(env["y"], 1)),
             seq(store(env["y"], 2), DMB_SY, load("r1", env["x"]))],
            cond_and(RegEq(1, "r1", 0), MemEq(env["y"], 2, "y")),
            allowed(False),
            env,
            "R with barriers on both threads",
        )
    )

    # 2+2W
    env = _env()
    tests.append(
        _test(
            "2+2W+dmbs",
            [seq(store(env["x"], 1), DMB_SY, store(env["y"], 2)),
             seq(store(env["y"], 1), DMB_SY, store(env["x"], 2))],
            cond_and(MemEq(env["x"], 1, "x"), MemEq(env["y"], 1, "y")),
            allowed(False),
            env,
            "2+2W with barriers",
        )
    )
    env = _env()
    tests.append(
        _test(
            "2+2W",
            [seq(store(env["x"], 1), store(env["y"], 2)),
             seq(store(env["y"], 1), store(env["x"], 2))],
            cond_and(MemEq(env["x"], 1, "x"), MemEq(env["y"], 1, "y")),
            allowed(True),
            env,
            "2+2W without barriers is allowed",
        )
    )
    return tests


# ---------------------------------------------------------------------------
# Multi-copy atomicity: WRC, IRIW
# ---------------------------------------------------------------------------


def mca_family() -> list[LitmusTest]:
    tests = []

    env = _env()
    tests.append(
        _test(
            "WRC+addrs",
            [store(env["x"], 1),
             seq(load("r1", env["x"]), store(dependency_idiom(env["y"], "r1"), 1)),
             seq(load("r2", env["y"]), load("r3", dependency_idiom(env["x"], "r2")))],
            cond_and(RegEq(1, "r1", 1), RegEq(2, "r2", 1), RegEq(2, "r3", 0)),
            allowed(False),
            env,
            "write-to-read causality with address dependencies (multicopy atomic)",
        )
    )

    env = _env()
    tests.append(
        _test(
            "WRC+pos",
            [store(env["x"], 1),
             seq(load("r1", env["x"]), store(env["y"], 1)),
             seq(load("r2", env["y"]), load("r3", env["x"]))],
            cond_and(RegEq(1, "r1", 1), RegEq(2, "r2", 1), RegEq(2, "r3", 0)),
            allowed(True),
            env,
            "without dependencies WRC is allowed",
        )
    )

    env = _env()
    tests.append(
        _test(
            "IRIW+addrs",
            [store(env["x"], 1),
             store(env["y"], 1),
             seq(load("r1", env["x"]), load("r2", dependency_idiom(env["y"], "r1"))),
             seq(load("r3", env["y"]), load("r4", dependency_idiom(env["x"], "r3")))],
            cond_and(RegEq(2, "r1", 1), RegEq(2, "r2", 0), RegEq(3, "r3", 1), RegEq(3, "r4", 0)),
            allowed(False),
            env,
            "IRIW with address dependencies is forbidden in multicopy-atomic models",
        )
    )

    env = _env()
    tests.append(
        _test(
            "IRIW+pos",
            [store(env["x"], 1),
             store(env["y"], 1),
             seq(load("r1", env["x"]), load("r2", env["y"])),
             seq(load("r3", env["y"]), load("r4", env["x"]))],
            cond_and(RegEq(2, "r1", 1), RegEq(2, "r2", 0), RegEq(3, "r3", 1), RegEq(3, "r4", 0)),
            allowed(True),
            env,
            "IRIW without dependencies is allowed",
        )
    )
    return tests


# ---------------------------------------------------------------------------
# Coherence
# ---------------------------------------------------------------------------


def coherence_family() -> list[LitmusTest]:
    tests = []

    env = _env()
    tests.append(
        _test(
            "CoRR",
            [store(env["x"], 1), seq(load("r1", env["x"]), load("r2", env["x"]))],
            cond_and(RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
            allowed(False),
            env,
            "same-location reads must not go backwards in coherence order",
        )
    )

    env = _env()
    tests.append(
        _test(
            "CoWW",
            [seq(store(env["x"], 1), store(env["x"], 2))],
            MemEq(env["x"], 1, "x"),
            allowed(False),
            env,
            "program-order same-location writes are coherence-ordered",
        )
    )

    env = _env()
    tests.append(
        _test(
            "CoWR",
            [seq(store(env["x"], 1), load("r1", env["x"])), store(env["x"], 2)],
            RegEq(0, "r1", 0),
            allowed(False),
            env,
            "a read may not ignore the thread's own earlier write",
        )
    )

    env = _env()
    tests.append(
        _test(
            "CoRW1",
            [seq(load("r1", env["x"]), store(env["x"], 1))],
            RegEq(0, "r1", 1),
            allowed(False),
            env,
            "a read may not read from a program-order later write",
        )
    )

    env = _env()
    tests.append(
        _test(
            "CoRW2",
            [seq(load("r1", env["x"]), store(env["x"], 2)), store(env["x"], 1)],
            cond_and(RegEq(0, "r1", 1), MemEq(env["x"], 1, "x")),
            allowed(False),
            env,
            "reading a write forbids one's own later write from being co-before it",
        )
    )

    # The paper's §4.1 coherence example: r1=42, r2=37, r3=0 forbidden.
    env = _env()
    tests.append(
        _test(
            "MP+dmb+addr+coh",
            [seq(store(env["x"], 37), DMB_SY, store(env["y"], 42)),
             seq(load("r1", env["y"]),
                 load("r2", dependency_idiom(env["x"], "r1")),
                 load("r3", env["x"]))],
            cond_and(RegEq(1, "r1", 42), RegEq(1, "r2", 37), RegEq(1, "r3", 0)),
            allowed(False),
            env,
            "the coherence view forbids reading a superseded write (§4.1)",
        )
    )
    return tests


# ---------------------------------------------------------------------------
# Forwarding: PPOCA / PPOAA, and the §4.1 forwarding example
# ---------------------------------------------------------------------------


def forwarding_family() -> list[LitmusTest]:
    tests = []

    env = _env()
    tests.append(
        _test(
            "PPOCA",
            [seq(store(env["x"], 1), DMB_SY, store(env["y"], 1)),
             seq(load("r0", env["y"]),
                 if_(R("r0").eq(1),
                     seq(store(env["z"], 1),
                         load("r1", env["z"]),
                         load("r2", dependency_idiom(env["x"], "r1")))))],
            cond_and(RegEq(1, "r0", 1), RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
            allowed(True),
            env,
            "forwarding a speculative write resolves the dependency early",
        )
    )

    env = _env()
    tests.append(
        _test(
            "PPOAA",
            [seq(store(env["x"], 1), DMB_SY, store(env["y"], 1)),
             seq(load("r0", env["y"]),
                 store(dependency_idiom(env["z"], "r0"), 1),
                 load("r1", env["z"]),
                 load("r2", dependency_idiom(env["x"], "r1")))],
            cond_and(RegEq(1, "r0", 1), RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
            allowed(False),
            env,
            "forwarding from an address-dependent write keeps the dependency",
        )
    )

    # §4.1 store-forwarding example (allowed).
    env = _env()
    tests.append(
        _test(
            "MP+fwd",
            [seq(store(env["x"], 37), DMB_SY, store(env["y"], 42)),
             seq(load("r0", env["y"]),
                 store(env["y"], 51),
                 load("r1", env["y"]),
                 load("r2", dependency_idiom(env["x"], "r1")))],
            cond_and(RegEq(1, "r0", 42), RegEq(1, "r1", 51), RegEq(1, "r2", 0)),
            allowed(True),
            env,
            "reading one's own store by forwarding yields the small view (§4.1)",
        )
    )
    return tests


# ---------------------------------------------------------------------------
# Load/store exclusives
# ---------------------------------------------------------------------------


def exclusives_family() -> list[LitmusTest]:
    tests = []

    # §A.2 atomicity example.
    env = _env()
    tests.append(
        _test(
            "LSE-atomicity",
            [seq(load("r1", env["x"], exclusive=True),
                 store(env["x"], 42, exclusive=True, succ_reg="r2")),
             seq(store(env["x"], 37), store(env["x"], 51), load("r3", env["x"]))],
            cond_and(RegEq(0, "r1", 37), RegEq(0, "r2", 0), RegEq(1, "r3", 42)),
            allowed(False),
            env,
            "a successful store exclusive is coherence-adjacent to the read (§A.2)",
        )
    )

    # Two LL/SC increments that both succeed must not lose an update.
    env = _env()
    tests.append(
        _test(
            "LSE-inc-inc",
            [seq(load("r1", env["x"], exclusive=True),
                 store(env["x"], R("r1") + 1, exclusive=True, succ_reg="r2")),
             seq(load("r1", env["x"], exclusive=True),
                 store(env["x"], R("r1") + 1, exclusive=True, succ_reg="r2"))],
            cond_and(RegEq(0, "r2", 0), RegEq(1, "r2", 0), MemEq(env["x"], 1, "x")),
            allowed(False),
            env,
            "two successful LL/SC increments cannot both read the initial value",
        )
    )

    # Acquire loads may not be satisfied by forwarding from a store exclusive
    # (ARM), so MP through an exclusive write with an acquire read is ordered.
    env = _env()
    tests.append(
        _test(
            "LSE-fwd-acq",
            [seq(store(env["x"], 1), DMB_SY, store(env["y"], 1)),
             seq(load("r0", env["y"]),
                 load("r5", env["z"], exclusive=True),
                 if_(R("r0").eq(1),
                     seq(store(env["z"], 1, exclusive=True, succ_reg="r6"),
                         load("r1", env["z"], kind=ReadKind.ACQ),
                         load("r2", dependency_idiom(env["x"], "r1")))))],
            cond_and(RegEq(1, "r0", 1), RegEq(1, "r6", 0), RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
            allowed(False),
            env,
            "an acquire load may not forward from an exclusive write (ρ13)",
        )
    )
    return tests


# ---------------------------------------------------------------------------
# RISC-V specific fences
# ---------------------------------------------------------------------------


def riscv_family() -> list[LitmusTest]:
    tests = []
    env = _env()
    tests.append(
        LitmusTest(
            "MP+fence.tso+addr",
            make_program(
                [seq(store(env["x"], 1), fence_tso(), store(env["y"], 1)),
                 seq(load("r1", env["y"]), load("r2", dependency_idiom(env["x"], "r1")))],
                env=env,
                name="MP+fence.tso+addr",
            ),
            cond_and(RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
            {**allowed(False)},
            "fence.tso orders write→write, so MP is forbidden",
        )
    )
    env = _env()
    tests.append(
        LitmusTest(
            "SB+fence.tso",
            make_program(
                [seq(store(env["x"], 1), fence_tso(), load("r1", env["y"])),
                 seq(store(env["y"], 1), fence_tso(), load("r2", env["x"]))],
                env=env,
                name="SB+fence.tso",
            ),
            cond_and(RegEq(0, "r1", 0), RegEq(1, "r2", 0)),
            {**allowed(True)},
            "fence.tso does not order store→load, so SB stays allowed",
        )
    )
    return tests


def all_tests() -> list[LitmusTest]:
    """The full catalogue."""
    return (
        mp_family()
        + sb_family()
        + lb_family()
        + s_r_w_family()
        + mca_family()
        + coherence_family()
        + forwarding_family()
        + exclusives_family()
        + riscv_family()
    )


def tests_by_name() -> dict[str, LitmusTest]:
    return {test.name: test for test in all_tests()}


def get_test(name: str) -> LitmusTest:
    """Look up a catalogue test by name."""
    tests = tests_by_name()
    if name not in tests:
        raise KeyError(f"unknown litmus test {name!r}; known: {sorted(tests)}")
    return tests[name]


__all__ = [
    "all_tests",
    "tests_by_name",
    "get_test",
    "mp_family",
    "sb_family",
    "lb_family",
    "s_r_w_family",
    "mca_family",
    "coherence_family",
    "forwarding_family",
    "exclusives_family",
    "riscv_family",
]
