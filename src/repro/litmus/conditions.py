"""Final-state conditions of litmus tests.

A litmus test ends with a condition such as ``exists (1:r1=42 /\\ x=0)``:
a propositional formula over final register values (``tid:reg=value``) and
final memory values (``location=value``).  The condition AST here mirrors
that, evaluates over :class:`repro.outcomes.Outcome`, and can be parsed
from the textual syntax used by herd-style litmus files.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Optional

from ..lang.expr import Reg, Value
from ..lang.program import Loc, TId
from ..outcomes import Outcome


class Condition:
    """Base class of final-state conditions."""

    def holds(self, outcome: Outcome) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    # Convenience connectives.
    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)

    # Introspection used by the runners to decide which registers and
    # locations are observable.
    def registers(self) -> set[tuple[TId, Reg]]:
        return set()

    def locations(self) -> set[Loc]:
        return set()

    def canonical(self) -> str:
        """Unambiguous serialization for content fingerprints.

        Unlike ``repr`` (which favours the herd-style display, printing
        memory locations by their symbolic *name*), this encodes the
        actual addresses, so two conditions that render identically but
        observe different locations never collide.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class RegEq(Condition):
    """``tid:reg = value``."""

    tid: TId
    reg: Reg
    value: Value

    def holds(self, outcome: Outcome) -> bool:
        return outcome.reg(self.tid, self.reg) == self.value

    def registers(self) -> set[tuple[TId, Reg]]:
        return {(self.tid, self.reg)}

    def __repr__(self) -> str:
        return f"{self.tid}:{self.reg}={self.value}"

    def canonical(self) -> str:
        return f"reg[{self.tid}:{self.reg}]={self.value}"


@dataclass(frozen=True)
class MemEq(Condition):
    """``location = value`` (final memory value)."""

    loc: Loc
    value: Value
    name: str = ""

    def holds(self, outcome: Outcome) -> bool:
        return outcome.mem(self.loc) == self.value

    def locations(self) -> set[Loc]:
        return {self.loc}

    def __repr__(self) -> str:
        return f"{self.name or self.loc}={self.value}"

    def canonical(self) -> str:
        return f"mem[{self.loc}]={self.value}"


@dataclass(frozen=True)
class And(Condition):
    parts: tuple[Condition, ...]

    def holds(self, outcome: Outcome) -> bool:
        return all(part.holds(outcome) for part in self.parts)

    def registers(self) -> set[tuple[TId, Reg]]:
        return set().union(*(p.registers() for p in self.parts)) if self.parts else set()

    def locations(self) -> set[Loc]:
        return set().union(*(p.locations() for p in self.parts)) if self.parts else set()

    def __repr__(self) -> str:
        return " /\\ ".join(repr(p) for p in self.parts)

    def canonical(self) -> str:
        return "and(" + ",".join(p.canonical() for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Condition):
    parts: tuple[Condition, ...]

    def holds(self, outcome: Outcome) -> bool:
        return any(part.holds(outcome) for part in self.parts)

    def registers(self) -> set[tuple[TId, Reg]]:
        return set().union(*(p.registers() for p in self.parts)) if self.parts else set()

    def locations(self) -> set[Loc]:
        return set().union(*(p.locations() for p in self.parts)) if self.parts else set()

    def __repr__(self) -> str:
        return "(" + " \\/ ".join(repr(p) for p in self.parts) + ")"

    def canonical(self) -> str:
        return "or(" + ",".join(p.canonical() for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Condition):
    part: Condition

    def holds(self, outcome: Outcome) -> bool:
        return not self.part.holds(outcome)

    def registers(self) -> set[tuple[TId, Reg]]:
        return self.part.registers()

    def locations(self) -> set[Loc]:
        return self.part.locations()

    def __repr__(self) -> str:
        return f"~({self.part!r})"

    def canonical(self) -> str:
        return f"not({self.part.canonical()})"


@dataclass(frozen=True)
class TrueCond(Condition):
    """The trivially true condition."""

    def holds(self, outcome: Outcome) -> bool:
        return True

    def __repr__(self) -> str:
        return "true"

    def canonical(self) -> str:
        return "true"


def cond_and(*parts: Condition) -> Condition:
    """N-ary conjunction (empty conjunction is true)."""
    if not parts:
        return TrueCond()
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def cond_or(*parts: Condition) -> Condition:
    """N-ary disjunction."""
    if not parts:
        return Not(TrueCond())
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


# ---------------------------------------------------------------------------
# Textual syntax:  1:r1=42 /\ (x=0 \/ ~(0:r2=1))
# ---------------------------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<lpar>\()|(?P<rpar>\))|(?P<and>/\\|&&)|(?P<or>\\/|\|\|)"
    r"|(?P<not>~|not\b)|(?P<atom>[A-Za-z0-9_\[\]]+\s*:\s*[A-Za-z0-9_\[\]]+\s*=\s*-?\d+"
    r"|[A-Za-z_][A-Za-z0-9_\[\]]*\s*=\s*-?\d+))"
)


def parse_condition(text: str, locations: Optional[Mapping[str, Loc]] = None) -> Condition:
    """Parse the herd-style condition syntax.

    ``locations`` maps symbolic location names to addresses; it is required
    whenever the condition mentions memory locations.
    """
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            if text[pos:].strip() == "":
                break
            raise ValueError(f"cannot tokenise condition at: {text[pos:]!r}")
        pos = match.end()
        for name in ("lpar", "rpar", "and", "or", "not", "atom"):
            if match.group(name) is not None:
                tokens.append((name, match.group(name)))
                break

    def parse_atom(token: str) -> Condition:
        token = token.strip()
        left, _eq, value = token.partition("=")
        value = int(value)
        if ":" in left:
            tid_text, _c, reg = left.partition(":")
            return RegEq(int(tid_text), reg.strip(), value)
        name = left.strip()
        if locations is None or name not in locations:
            raise ValueError(f"unknown location {name!r} in condition")
        return MemEq(locations[name], value, name)

    index = 0

    def parse_or() -> Condition:
        nonlocal index
        left = parse_and()
        while index < len(tokens) and tokens[index][0] == "or":
            index += 1
            left = Or((left, parse_and()))
        return left

    def parse_and() -> Condition:
        nonlocal index
        left = parse_unary()
        while index < len(tokens) and tokens[index][0] == "and":
            index += 1
            left = And((left, parse_unary()))
        return left

    def parse_unary() -> Condition:
        nonlocal index
        if index >= len(tokens):
            raise ValueError("unexpected end of condition")
        kind, value = tokens[index]
        if kind == "not":
            index += 1
            return Not(parse_unary())
        if kind == "lpar":
            index += 1
            inner = parse_or()
            if index >= len(tokens) or tokens[index][0] != "rpar":
                raise ValueError("missing closing parenthesis in condition")
            index += 1
            return inner
        if kind == "atom":
            index += 1
            return parse_atom(value)
        raise ValueError(f"unexpected token {value!r} in condition")

    if not tokens:
        return TrueCond()
    result = parse_or()
    if index != len(tokens):
        raise ValueError(f"trailing tokens in condition: {tokens[index:]}")
    return result


__all__ = [
    "Condition",
    "RegEq",
    "MemEq",
    "And",
    "Or",
    "Not",
    "TrueCond",
    "cond_and",
    "cond_or",
    "parse_condition",
]
