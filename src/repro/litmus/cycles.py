"""Relaxation-edge cycles: the diy-style vocabulary behind test generation.

The paper validates the promising machine against the axiomatic models on
thousands of *generated* litmus tests (§7).  The generator used there (diy)
works from **critical cycles**: a litmus test is specified as a cycle of
relaxation edges — program-order edges decorated with an ordering mechanism
(dependency, barrier, acquire/release) composed with communication edges
(``rf``, ``co``, ``fr``, in internal and external variants) — and the test
program plus its final-state condition are *derived* from the cycle.  This
module provides that vocabulary:

* :class:`Linkage` — how a program-order edge is strengthened (nothing, an
  address/data/control dependency, a barrier, acquire/release kinds);
* :class:`Edge` — one cycle edge: ``rf``/``co``/``fr`` (internal or
  external) or a decorated ``po`` edge (same or different location);
* :class:`Cycle` — a validated sequence of edges (directions must chain,
  at least two external edges so there are at least two threads, location
  changes must tile the cycle);
* :class:`Family` — a cycle skeleton whose ``po`` slots range over a set
  of linkages, expanding into a deterministic battery of cycles.

:mod:`repro.litmus.synth` turns a :class:`Cycle` into an executable
:class:`~repro.litmus.test.LitmusTest`; :mod:`repro.litmus.generators`
re-exports the classic two-thread families on top of this core.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..lang import DMB_LD, DMB_ST, DMB_SY, Stmt

#: Event directions.
READ = "R"
WRITE = "W"


class CycleError(ValueError):
    """Raised when a cycle specification is malformed."""


@dataclass(frozen=True)
class Linkage:
    """How two consecutive accesses of a thread are ordered (or not).

    ``barrier`` is inserted between the accesses; ``addr``/``data``/``ctrl``
    request the corresponding syntactic dependency from the first access's
    destination register; ``acquire_first``/``release_second`` strengthen
    the access kinds themselves.
    """

    name: str
    barrier: Optional[Stmt] = None
    addr: bool = False
    data: bool = False
    ctrl: bool = False
    isb: bool = False
    acquire_first: bool = False
    release_second: bool = False

    def __repr__(self) -> str:
        return self.name


#: The undecorated program-order edge.
PLAIN_PO = Linkage("po")

#: Linkages applicable between a load and a following load.
LINKS_RR: tuple[Linkage, ...] = (
    PLAIN_PO,
    Linkage("addr", addr=True),
    Linkage("ctrl", ctrl=True),
    Linkage("ctrlisb", ctrl=True, isb=True),
    Linkage("dmb.sy", barrier=DMB_SY),
    Linkage("dmb.ld", barrier=DMB_LD),
    Linkage("acq", acquire_first=True),
)

#: Linkages applicable between a load and a following store (adds data/rel).
LINKS_RW: tuple[Linkage, ...] = LINKS_RR + (
    Linkage("data", data=True),
    Linkage("rel", release_second=True),
)

#: Linkages applicable between a store and a following store.
LINKS_WW: tuple[Linkage, ...] = (
    PLAIN_PO,
    Linkage("dmb.sy", barrier=DMB_SY),
    Linkage("dmb.st", barrier=DMB_ST),
    Linkage("rel", release_second=True),
)

#: Linkages applicable between a store and a following load (only a full
#: barrier orders W→R on either architecture).
LINKS_WR: tuple[Linkage, ...] = (
    PLAIN_PO,
    Linkage("dmb.sy", barrier=DMB_SY),
)


def links_for(src: str, tgt: str) -> tuple[Linkage, ...]:
    """The canonical linkage set for a ``src``→``tgt`` program-order edge."""
    if src == READ:
        return LINKS_RW if tgt == WRITE else LINKS_RR
    return LINKS_WW if tgt == WRITE else LINKS_WR


@dataclass(frozen=True)
class Edge:
    """One edge of a relaxation cycle.

    ``kind`` is ``'rf'``, ``'co'``, ``'fr'`` (communication edges) or
    ``'po'`` (a program-order edge decorated by ``link``).  Communication
    edges never change location; external ones cross to the next thread.
    A ``po`` edge with ``loc_change`` moves to the next location of the
    cycle's location rotation.
    """

    kind: str
    src: str
    tgt: str
    external: bool = False
    loc_change: bool = False
    link: Linkage = PLAIN_PO

    def __post_init__(self) -> None:
        if self.kind not in ("rf", "co", "fr", "po"):
            raise CycleError(f"unknown edge kind {self.kind!r}")
        if self.src not in (READ, WRITE) or self.tgt not in (READ, WRITE):
            raise CycleError(f"bad edge directions {self.src!r}→{self.tgt!r}")
        if self.kind != "po":
            expected = {"rf": (WRITE, READ), "co": (WRITE, WRITE), "fr": (READ, WRITE)}
            if (self.src, self.tgt) != expected[self.kind]:
                raise CycleError(
                    f"{self.kind} edges are {expected[self.kind][0]}→"
                    f"{expected[self.kind][1]}, got {self.src}→{self.tgt}"
                )
            if self.loc_change:
                raise CycleError(f"{self.kind} edges stay on one location")
        if self.kind == "po" and self.external:
            raise CycleError("po edges are thread-internal")

    @property
    def is_comm(self) -> bool:
        return self.kind != "po"

    def label(self) -> str:
        """diy-style edge label (``rfe``, ``fri``, or the linkage name)."""
        if self.is_comm:
            return self.kind + ("e" if self.external else "i")
        return self.link.name

    def __repr__(self) -> str:
        return f"{self.label()}[{self.src}→{self.tgt}]"


#: External communication edges (cross-thread, same location).
Rfe = Edge("rf", WRITE, READ, external=True)
Coe = Edge("co", WRITE, WRITE, external=True)
Fre = Edge("fr", READ, WRITE, external=True)

#: Internal communication edges (same thread, same location).
Rfi = Edge("rf", WRITE, READ)
Coi = Edge("co", WRITE, WRITE)
Fri = Edge("fr", READ, WRITE)


def po(src: str, tgt: str, link: Linkage = PLAIN_PO, *, same_loc: bool = False) -> Edge:
    """A decorated program-order edge (changes location unless ``same_loc``)."""
    return Edge("po", src, tgt, loc_change=not same_loc, link=link)


@dataclass(frozen=True)
class Cycle:
    """A validated relaxation cycle.

    Invariants checked at construction:

    * edge directions chain around the cycle (edge *i*'s target direction
      is edge *i+1*'s source direction);
    * at least two edges are external, so the test has ≥ 2 threads;
    * the wrap-around edge is external (event 0 starts thread 0);
    * the number of location-changing edges is 0 or ≥ 2 (one change could
      never return to the starting location).
    """

    name: str
    edges: tuple[Edge, ...]
    family: str = ""

    def __post_init__(self) -> None:
        edges = tuple(self.edges)
        object.__setattr__(self, "edges", edges)
        if len(edges) < 2:
            raise CycleError(f"{self.name}: a cycle needs at least two edges")
        for i, edge in enumerate(edges):
            succ = edges[(i + 1) % len(edges)]
            if edge.tgt != succ.src:
                raise CycleError(
                    f"{self.name}: edge {i} ({edge!r}) ends in {edge.tgt} but "
                    f"edge {(i + 1) % len(edges)} ({succ!r}) starts in {succ.src}"
                )
        if sum(1 for e in edges if e.external) < 2:
            raise CycleError(f"{self.name}: need ≥ 2 external edges (≥ 2 threads)")
        if not edges[-1].external:
            raise CycleError(
                f"{self.name}: the wrap-around edge must be external "
                "(rotate the cycle so a thread boundary closes it)"
            )
        changes = sum(1 for e in edges if e.loc_change)
        if changes == 1:
            raise CycleError(f"{self.name}: exactly one location change cannot close the cycle")

    @property
    def n_events(self) -> int:
        return len(self.edges)

    @property
    def n_threads(self) -> int:
        return sum(1 for e in self.edges if e.external)

    @property
    def n_locations(self) -> int:
        return sum(1 for e in self.edges if e.loc_change) or 1

    def spec(self) -> str:
        """Compact edge-list spec, e.g. ``po(W→W) rfe po(R→R) fre``."""
        return " ".join(e.label() for e in self.edges)

    def __repr__(self) -> str:
        return f"Cycle({self.name!r}: {self.spec()})"


@dataclass(frozen=True)
class Slot:
    """A ``po`` position of a family skeleton whose linkage varies.

    ``links`` defaults to the canonical set for the slot's directions
    (:func:`links_for`); a family may pin it (e.g. the classic ``S`` shape
    fixes the writer edge to ``dmb``).
    """

    src: str
    tgt: str
    same_loc: bool = False
    links: Optional[tuple[Linkage, ...]] = None

    def choices(self) -> tuple[Linkage, ...]:
        return self.links if self.links is not None else links_for(self.src, self.tgt)


@dataclass(frozen=True)
class Family:
    """A named cycle skeleton expanding into a battery of cycles."""

    name: str
    template: tuple[Union[Edge, Slot], ...]

    def expand(self, max_cycles: Optional[int] = None) -> Iterator[Cycle]:
        """Yield the family's cycles in deterministic *diagonal* order.

        Combinations are ordered by total linkage index first (then
        lexicographically), so truncating a large family to its first N
        cycles still mixes strengths across every slot instead of only
        ever varying the last one.
        """
        slots = [item for item in self.template if isinstance(item, Slot)]
        choices = [slot.choices() for slot in slots]
        index_combos = sorted(
            itertools.product(*(range(len(c)) for c in choices)),
            key=lambda indices: (sum(indices), indices),
        )
        for count, indices in enumerate(index_combos):
            if max_cycles is not None and count >= max_cycles:
                return
            links = iter(c[i] for c, i in zip(choices, indices))
            edges = []
            names = []
            for item in self.template:
                if isinstance(item, Slot):
                    link = next(links)
                    edges.append(po(item.src, item.tgt, link, same_loc=item.same_loc))
                    names.append(link.name)
                else:
                    edges.append(item)
            name = self.name + "".join(f"+{n}" for n in names)
            yield Cycle(name, tuple(edges), family=self.name)


_DMB = Linkage("dmb", barrier=DMB_SY)

#: The battery's cycle families.  The classic two-thread shapes (MP, SB,
#: LB, S, R, 2+2W), the three-thread shapes (WRC, ISA2, 3.2W, 3.LB), the
#: four-thread IRIW, and internal-variant shapes exercising rfi/fri and
#: same-location po (SB-RFI, MP-FRI, CoRR).
FAMILIES: tuple[Family, ...] = (
    Family("MP", (Slot(WRITE, WRITE), Rfe, Slot(READ, READ), Fre)),
    Family("SB", (Slot(WRITE, READ), Fre, Slot(WRITE, READ), Fre)),
    Family("LB", (Slot(READ, WRITE), Rfe, Slot(READ, WRITE), Rfe)),
    Family("S", (Slot(WRITE, WRITE, links=(_DMB,)), Rfe, Slot(READ, WRITE), Coe)),
    Family("R", (Slot(WRITE, WRITE), Coe, Slot(WRITE, READ), Fre)),
    Family("2+2W", (Slot(WRITE, WRITE), Coe, Slot(WRITE, WRITE), Coe)),
    Family("WRC", (Rfe, Slot(READ, WRITE), Rfe, Slot(READ, READ), Fre)),
    Family(
        "ISA2",
        (Slot(WRITE, WRITE), Rfe, Slot(READ, WRITE), Rfe, Slot(READ, READ), Fre),
    ),
    Family("IRIW", (Rfe, Slot(READ, READ), Fre, Rfe, Slot(READ, READ), Fre)),
    Family(
        "3.2W",
        (Slot(WRITE, WRITE), Coe, Slot(WRITE, WRITE), Coe, Slot(WRITE, WRITE), Coe),
    ),
    Family(
        "3.LB",
        (Slot(READ, WRITE), Rfe, Slot(READ, WRITE), Rfe, Slot(READ, WRITE), Rfe),
    ),
    Family("SB-RFI", (Rfi, Slot(READ, READ), Fre, Rfi, Slot(READ, READ), Fre)),
    Family(
        "MP-FRI",
        (Slot(WRITE, WRITE), Rfe, Fri, Slot(WRITE, READ), Fre),
    ),
    Family("CoRR", (Rfe, Slot(READ, READ, same_loc=True), Fre)),
)

FAMILIES_BY_NAME: dict[str, Family] = {f.name: f for f in FAMILIES}


def get_family(name: str) -> Family:
    try:
        return FAMILIES_BY_NAME[name]
    except KeyError:
        raise CycleError(
            f"unknown cycle family {name!r}; known: {', '.join(FAMILIES_BY_NAME)}"
        ) from None


__all__ = [
    "READ",
    "WRITE",
    "CycleError",
    "Linkage",
    "PLAIN_PO",
    "LINKS_RR",
    "LINKS_RW",
    "LINKS_WW",
    "LINKS_WR",
    "links_for",
    "Edge",
    "Rfe",
    "Rfi",
    "Coe",
    "Coi",
    "Fre",
    "Fri",
    "po",
    "Cycle",
    "Slot",
    "Family",
    "FAMILIES",
    "FAMILIES_BY_NAME",
    "get_family",
]
