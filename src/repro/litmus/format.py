"""Parser and printer for the herd/rmem-style litmus text format.

The paper's tool consumes litmus files produced from compiled assembly;
this module implements the same interchange format for the subset of
features the models support::

    AArch64 MP+dmb+addr
    "message passing with barrier and address dependency"
    {
      0:X1=x; 0:X3=y;
      1:X1=y; 1:X3=x;
      x=0; y=0;
    }
     P0          | P1            ;
     MOV W0,#1   | LDR W0,[X1]   ;
     STR W0,[X1] | EOR W2,W0,W0  ;
     DMB SY      | LDR W3,[X3,W2];
     STR W0,[X3] |               ;
    exists (1:X0=1 /\\ 1:X3=0)

* The architecture line is ``AArch64`` / ``ARM`` or ``RISCV`` / ``RV64``.
* The init section assigns registers to constants or to the *address of* a
  named shared variable, and gives shared variables their initial values.
* The body is a table: one column per thread, cells separated by ``|``,
  rows terminated by ``;``.
* The condition is an ``exists`` (or ``~exists``/``forall``) formula over
  final register and memory values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..lang.kinds import Arch
from ..lang.program import LocationEnv
from ..isa.assembler import ThreadSource, assemble_program, normalise_register
from .conditions import Condition, Not, parse_condition
from .test import LitmusTest

_ARCH_NAMES = {
    "AARCH64": Arch.ARM,
    "ARM": Arch.ARM,
    "ARMV8": Arch.ARM,
    "RISCV": Arch.RISCV,
    "RISC-V": Arch.RISCV,
    "RV64": Arch.RISCV,
}


class LitmusFormatError(Exception):
    """Raised when a litmus file cannot be parsed."""


@dataclass
class ParsedLitmus:
    """A parsed litmus file: the test plus its architecture."""

    test: LitmusTest
    arch: Arch
    quantifier: str  # 'exists', 'not-exists' or 'forall'


def _strip_comments(text: str) -> str:
    # (* ... *) comments may span lines.
    return re.sub(r"\(\*.*?\*\)", "", text, flags=re.DOTALL)


def parse_litmus(text: str, unroll_bound: int = 2) -> ParsedLitmus:
    """Parse a litmus file into a :class:`~repro.litmus.test.LitmusTest`."""
    text = _strip_comments(text)
    lines = text.splitlines()
    # --- header ------------------------------------------------------------
    header_index = next(
        (i for i, line in enumerate(lines) if line.strip()), None
    )
    if header_index is None:
        raise LitmusFormatError("empty litmus file")
    header = lines[header_index].split()
    if not header or header[0].upper() not in _ARCH_NAMES:
        raise LitmusFormatError(f"unknown architecture in header: {lines[header_index]!r}")
    arch = _ARCH_NAMES[header[0].upper()]
    name = header[1] if len(header) > 1 else "litmus"

    body = "\n".join(lines[header_index + 1 :])

    # --- init block ----------------------------------------------------------
    brace_match = re.search(r"\{(.*?)\}", body, flags=re.DOTALL)
    if not brace_match:
        raise LitmusFormatError("missing '{ ... }' initialisation block")
    init_block = brace_match.group(1)
    after_init = body[brace_match.end() :]

    env = LocationEnv(stride=8)
    initial: dict[int, int] = {}
    reg_inits: dict[int, dict[str, object]] = {}
    for item in init_block.replace("\n", ";").split(";"):
        item = item.strip().rstrip(",")
        if not item:
            continue
        left, _eq, right = item.partition("=")
        if not _eq:
            raise LitmusFormatError(f"malformed initialisation {item!r}")
        left, right = left.strip(), right.strip()
        if ":" in left:
            tid_text, _c, reg = left.partition(":")
            tid = int(tid_text)
            reg_inits.setdefault(tid, {})[reg.strip()] = right
        else:
            initial[env[left]] = int(right, 0)

    # --- condition -----------------------------------------------------------
    cond_match = re.search(
        r"(~\s*exists|exists|forall)\s*(.*)", after_init, flags=re.DOTALL | re.IGNORECASE
    )
    if not cond_match:
        raise LitmusFormatError("missing exists/forall condition")
    quant_text = cond_match.group(1).lower().replace(" ", "")
    cond_text = cond_match.group(2).strip()
    code_block = after_init[: cond_match.start()]

    # --- thread table ----------------------------------------------------------
    rows = [row for row in code_block.split(";") if row.strip()]
    if not rows:
        raise LitmusFormatError("missing thread code")
    header_cells = [cell.strip() for cell in rows[0].split("|")]
    if not all(re.fullmatch(r"P\d+", cell) for cell in header_cells if cell):
        raise LitmusFormatError(f"malformed thread header row: {rows[0]!r}")
    n_threads = len(header_cells)
    per_thread_lines: list[list[str]] = [[] for _ in range(n_threads)]
    for row in rows[1:]:
        cells = row.split("|")
        for tid in range(n_threads):
            cell = cells[tid].strip() if tid < len(cells) else ""
            if cell:
                per_thread_lines[tid].append(cell)

    # Resolve register initialisations: values may be integers or the name
    # of a shared variable (meaning its address).
    sources = []
    for tid in range(n_threads):
        resolved: dict[str, int] = {}
        for reg, value in reg_inits.get(tid, {}).items():
            reg_name = normalise_register(reg, arch)
            text_value = str(value)
            if re.fullmatch(r"-?\d+", text_value):
                resolved[reg_name] = int(text_value)
            else:
                resolved[reg_name] = env[text_value]
        sources.append(ThreadSource("\n".join(per_thread_lines[tid]), resolved))

    program = assemble_program(
        sources, arch, initial=initial, env=env, name=name, unroll_bound=unroll_bound
    )

    condition = parse_condition(cond_text, {n: env[n] for n in _location_names(env)})
    condition = _normalise_registers_in_condition(condition, arch)
    quantifier = {"~exists": "not-exists", "exists": "exists", "forall": "forall"}[quant_text]
    if quantifier == "forall":
        condition = Not(condition)
    test = LitmusTest(name, program, condition, {}, f"parsed litmus ({quantifier})")
    return ParsedLitmus(test, arch, quantifier)


def _location_names(env: LocationEnv) -> list[str]:
    return [name for _loc, name in sorted(env.names().items())]


def _normalise_registers_in_condition(condition: Condition, arch: Arch) -> Condition:
    """Rewrite ``1:X0`` style register references to canonical names.

    A register the target architecture cannot name is a malformed litmus
    file, not something to pass through: an un-normalised reference would
    never match the assembled program's registers, silently evaluating to
    the initial value 0 *and* corrupting the job fingerprint relative to
    an otherwise-identical test written with canonical names.
    """
    from ..isa.armv8 import Armv8ParseError
    from ..isa.riscv import RiscvParseError
    from .conditions import And, Not as NotCond, Or, RegEq

    def rewrite(cond: Condition) -> Condition:
        if isinstance(cond, RegEq):
            try:
                return RegEq(cond.tid, normalise_register(cond.reg, arch), cond.value)
            except (Armv8ParseError, RiscvParseError) as exc:
                raise LitmusFormatError(
                    f"malformed register reference {cond.tid}:{cond.reg} "
                    f"in condition: {exc}"
                ) from exc
        if isinstance(cond, And):
            return And(tuple(rewrite(p) for p in cond.parts))
        if isinstance(cond, Or):
            return Or(tuple(rewrite(p) for p in cond.parts))
        if isinstance(cond, NotCond):
            return NotCond(rewrite(cond.part))
        return cond

    return rewrite(condition)


def format_litmus(test: LitmusTest, arch: Arch, threads_asm: list[str], condition: str) -> str:
    """Render a litmus file from assembly fragments (used by the examples)."""
    arch_name = "AArch64" if arch is Arch.ARM else "RISCV"
    init_parts = []
    for loc, name in sorted(test.program.loc_names.items()):
        init_parts.append(f"{name}={test.program.initial_value(loc)};")
    header = " ".join(f"P{tid}" for tid in range(len(threads_asm)))
    columns = " | ".join(f"P{tid}" for tid in range(len(threads_asm)))
    body_rows = []
    split = [asm.splitlines() for asm in threads_asm]
    height = max(len(s) for s in split) if split else 0
    for i in range(height):
        cells = [s[i] if i < len(s) else "" for s in split]
        body_rows.append(" | ".join(cell.ljust(18) for cell in cells) + " ;")
    del header
    return "\n".join(
        [f"{arch_name} {test.name}", "{ " + " ".join(init_parts) + " }", columns + " ;"]
        + body_rows
        + [f"exists ({condition})", ""]
    )


__all__ = ["LitmusFormatError", "ParsedLitmus", "parse_litmus", "format_litmus"]
