"""Generated litmus-test families for the agreement experiment.

The paper validates the executable model against the axiomatic models on
thousands of generated litmus tests.  The classic two/three-thread shapes
(MP, LB, SB, S, WRC) exposed here are thin wrappers over the cycle core
(:mod:`repro.litmus.cycles` + :mod:`repro.litmus.synth`): each family is a
relaxation-edge cycle whose program-order slots range over the requested
:class:`Linkage` sets, and the program plus final-state condition are
derived from the cycle.  The much larger battery of cycle families
(including 4-thread and 3-location shapes and internal rf/co/fr variants)
lives in :func:`repro.litmus.synth.generate_cycle_battery`.

Tests generated here carry no expected verdict — they are used to compare
the promising and axiomatic implementations against each other, which is
exactly how the paper uses its litmus batteries.  (The cycle battery can
additionally attach axiomatic-oracle verdicts via
:func:`repro.litmus.synth.attach_expected`.)
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

from ..lang import DMB_SY
from .cycles import (
    Coe,
    Cycle,
    Fre,
    LINKS_RR,
    LINKS_RW,
    LINKS_WW,
    Linkage,
    READ,
    Rfe,
    WRITE,
    po,
)
from .synth import synthesize
from .test import LitmusTest

#: Linkages applicable between a load and a following access.
READ_LINKAGES: tuple[Linkage, ...] = LINKS_RR

#: Linkages applicable between a load and a following *store* (adds data).
READ_TO_WRITE_LINKAGES: tuple[Linkage, ...] = LINKS_RW

#: Linkages applicable between a store and a following access.
WRITE_LINKAGES: tuple[Linkage, ...] = LINKS_WW

_DMB = Linkage("dmb", barrier=DMB_SY)


def generate_mp(read_links: Sequence[Linkage] = READ_LINKAGES,
                write_links: Sequence[Linkage] = WRITE_LINKAGES) -> Iterator[LitmusTest]:
    """MP variants: writer edge × reader edge."""
    for wl, rl in itertools.product(write_links, read_links):
        yield synthesize(Cycle(
            f"MP+{wl.name}+{rl.name}",
            (po(WRITE, WRITE, wl), Rfe, po(READ, READ, rl), Fre),
            family="MP",
        ))


def generate_lb(links: Sequence[Linkage] = READ_TO_WRITE_LINKAGES) -> Iterator[LitmusTest]:
    """LB variants: the R→W edge on each thread."""
    for l0, l1 in itertools.product(links, links):
        yield synthesize(Cycle(
            f"LB+{l0.name}+{l1.name}",
            (po(READ, WRITE, l0), Rfe, po(READ, WRITE, l1), Rfe),
            family="LB",
        ))


def generate_sb(links: Sequence[Linkage] = WRITE_LINKAGES) -> Iterator[LitmusTest]:
    """SB variants: the W→R edge on each thread."""
    for l0, l1 in itertools.product(links, links):
        yield synthesize(Cycle(
            f"SB+{l0.name}+{l1.name}",
            (po(WRITE, READ, l0), Fre, po(WRITE, READ, l1), Fre),
            family="SB",
        ))


def generate_s(read_links: Sequence[Linkage] = READ_TO_WRITE_LINKAGES) -> Iterator[LitmusTest]:
    """S variants: writer uses dmb; the reader R→W edge varies."""
    for rl in read_links:
        yield synthesize(Cycle(
            f"S+dmb+{rl.name}",
            (po(WRITE, WRITE, _DMB), Rfe, po(READ, WRITE, rl), Coe),
            family="S",
        ))


def generate_wrc(read_links: Sequence[Linkage] = READ_LINKAGES) -> Iterator[LitmusTest]:
    """WRC variants: the two reader edges vary."""
    for l1, l2 in itertools.product(read_links, read_links):
        yield synthesize(Cycle(
            f"WRC+{l1.name}+{l2.name}",
            (Rfe, po(READ, WRITE, l1), Rfe, po(READ, READ, l2), Fre),
            family="WRC",
        ))


def generate_battery(max_tests: Optional[int] = None) -> list[LitmusTest]:
    """A deterministic battery drawn from all generated families."""
    battery: list[LitmusTest] = []
    for family in (generate_mp(), generate_sb(), generate_lb(), generate_s(), generate_wrc()):
        battery.extend(family)
    if max_tests is not None:
        battery = battery[:max_tests]
    return battery


__all__ = [
    "Linkage",
    "READ_LINKAGES",
    "READ_TO_WRITE_LINKAGES",
    "WRITE_LINKAGES",
    "generate_mp",
    "generate_lb",
    "generate_sb",
    "generate_s",
    "generate_wrc",
    "generate_battery",
]
