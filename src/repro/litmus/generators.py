"""Generated litmus-test families for the agreement experiment.

The paper validates the executable model against the axiomatic models on
thousands of generated litmus tests.  This module plays the role of the
diy-style generator: it produces systematic families of tests by taking a
basic shape (MP, LB, SB, S, R, 2+2W, WRC) and decorating each thread-local
edge with an ordering mechanism (nothing, address/data/control dependency,
control+isb, one of the barriers, release/acquire annotations).

Generated tests carry no expected verdict — they are used to compare the
promising and axiomatic implementations against each other, which is
exactly how the paper uses its litmus batteries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..lang import (
    DMB_LD,
    DMB_ST,
    DMB_SY,
    Isb,
    LocationEnv,
    R,
    ReadKind,
    Stmt,
    WriteKind,
    dependency_idiom,
    if_,
    load,
    make_program,
    seq,
    store,
)
from .conditions import MemEq, RegEq, cond_and
from .test import LitmusTest


@dataclass(frozen=True)
class Linkage:
    """How two consecutive accesses of a thread are ordered (or not).

    ``barrier`` is inserted between the accesses; ``addr``/``data``/``ctrl``
    request the corresponding syntactic dependency from the first access's
    destination register; ``acquire``/``release`` strengthen the access
    kinds themselves.
    """

    name: str
    barrier: Optional[Stmt] = None
    addr: bool = False
    data: bool = False
    ctrl: bool = False
    isb: bool = False
    acquire_first: bool = False
    release_second: bool = False

    def __repr__(self) -> str:
        return self.name


#: Linkages applicable between a load and a following access.
READ_LINKAGES: tuple[Linkage, ...] = (
    Linkage("po"),
    Linkage("addr", addr=True),
    Linkage("ctrl", ctrl=True),
    Linkage("ctrlisb", ctrl=True, isb=True),
    Linkage("dmb.sy", barrier=DMB_SY),
    Linkage("dmb.ld", barrier=DMB_LD),
    Linkage("acq", acquire_first=True),
)

#: Linkages applicable between a load and a following *store* (adds data).
READ_TO_WRITE_LINKAGES: tuple[Linkage, ...] = READ_LINKAGES + (
    Linkage("data", data=True),
    Linkage("rel", release_second=True),
)

#: Linkages applicable between a store and a following access.
WRITE_LINKAGES: tuple[Linkage, ...] = (
    Linkage("po"),
    Linkage("dmb.sy", barrier=DMB_SY),
    Linkage("dmb.st", barrier=DMB_ST),
    Linkage("rel", release_second=True),
)


def _reader_then(env: LocationEnv, first_loc: str, second: Callable, link: Linkage,
                 reg: str, second_is_store: bool) -> Stmt:
    """Build ``load reg, [first]; <link>; second`` for a reader-first thread."""
    kind = ReadKind.ACQ if link.acquire_first else ReadKind.PLN
    first = load(reg, env[first_loc], kind=kind)
    tail = second(link)
    parts = [first]
    if link.barrier is not None:
        parts.append(link.barrier)
    if link.ctrl:
        inner = seq(Isb(), tail) if link.isb else tail
        parts.append(if_(R(reg).ge(0), inner, inner))
        return seq(*parts)
    parts.append(tail)
    return seq(*parts)


def _writer_then(env: LocationEnv, first_loc: str, first_val: int,
                 second: Callable, link: Linkage) -> Stmt:
    """Build ``store [first] val; <link>; second`` for a writer-first thread."""
    first = store(env[first_loc], first_val)
    tail = second(link)
    parts = [first]
    if link.barrier is not None:
        parts.append(link.barrier)
    parts.append(tail)
    return seq(*parts)


def _second_load(env: LocationEnv, loc: str, reg: str, dep_reg: Optional[str]):
    def build(link: Linkage) -> Stmt:
        addr = dependency_idiom(env[loc], dep_reg) if (link.addr and dep_reg) else env[loc]
        return load(reg, addr)

    return build


def _second_store(env: LocationEnv, loc: str, value: int, dep_reg: Optional[str]):
    def build(link: Linkage) -> Stmt:
        addr = dependency_idiom(env[loc], dep_reg) if (link.addr and dep_reg) else env[loc]
        data = (value + (R(dep_reg) - R(dep_reg))) if (link.data and dep_reg) else value
        kind = WriteKind.REL if link.release_second else WriteKind.PLN
        return store(addr, data, kind=kind)

    return build


def generate_mp(read_links: Sequence[Linkage] = READ_LINKAGES,
                write_links: Sequence[Linkage] = WRITE_LINKAGES) -> Iterator[LitmusTest]:
    """MP variants: writer edge × reader edge."""
    for wl, rl in itertools.product(write_links, read_links):
        env = LocationEnv()
        writer = _writer_then(env, "x", 1, _second_store(env, "y", 1, None), wl)
        reader = _reader_then(env, "y", _second_load(env, "x", "r2", "r1"), rl, "r1", False)
        name = f"MP+{wl.name}+{rl.name}"
        program = make_program([writer, reader], env=env, name=name)
        yield LitmusTest(name, program, cond_and(RegEq(1, "r1", 1), RegEq(1, "r2", 0)))


def generate_lb(links: Sequence[Linkage] = READ_TO_WRITE_LINKAGES) -> Iterator[LitmusTest]:
    """LB variants: the R→W edge on each thread."""
    for l0, l1 in itertools.product(links, links):
        env = LocationEnv()
        t0 = _reader_then(env, "x", _second_store(env, "y", 1, "r1"), l0, "r1", True)
        t1 = _reader_then(env, "y", _second_store(env, "x", 1, "r2"), l1, "r2", True)
        name = f"LB+{l0.name}+{l1.name}"
        program = make_program([t0, t1], env=env, name=name)
        yield LitmusTest(name, program, cond_and(RegEq(0, "r1", 1), RegEq(1, "r2", 1)))


def generate_sb(links: Sequence[Linkage] = WRITE_LINKAGES) -> Iterator[LitmusTest]:
    """SB variants: the W→R edge on each thread."""
    for l0, l1 in itertools.product(links, links):
        env = LocationEnv()
        t0 = _writer_then(env, "x", 1, _second_load(env, "y", "r1", None), l0)
        t1 = _writer_then(env, "y", 1, _second_load(env, "x", "r2", None), l1)
        name = f"SB+{l0.name}+{l1.name}"
        program = make_program([t0, t1], env=env, name=name)
        yield LitmusTest(name, program, cond_and(RegEq(0, "r1", 0), RegEq(1, "r2", 0)))


def generate_s(read_links: Sequence[Linkage] = READ_TO_WRITE_LINKAGES) -> Iterator[LitmusTest]:
    """S variants: writer uses dmb; the reader R→W edge varies."""
    for rl in read_links:
        env = LocationEnv()
        writer = seq(store(env["x"], 2), DMB_SY, store(env["y"], 1))
        reader = _reader_then(env, "y", _second_store(env, "x", 1, "r1"), rl, "r1", True)
        name = f"S+dmb+{rl.name}"
        program = make_program([writer, reader], env=env, name=name)
        yield LitmusTest(
            name, program, cond_and(RegEq(1, "r1", 1), MemEq(env["x"], 2, "x"))
        )


def generate_wrc(read_links: Sequence[Linkage] = READ_LINKAGES) -> Iterator[LitmusTest]:
    """WRC variants: the two reader edges vary."""
    for l1, l2 in itertools.product(read_links, read_links):
        env = LocationEnv()
        t0 = store(env["x"], 1)
        t1 = _reader_then(env, "x", _second_store(env, "y", 1, "r1"), l1, "r1", True)
        t2 = _reader_then(env, "y", _second_load(env, "x", "r3", "r2"), l2, "r2", False)
        name = f"WRC+{l1.name}+{l2.name}"
        program = make_program([t0, t1, t2], env=env, name=name)
        yield LitmusTest(
            name,
            program,
            cond_and(RegEq(1, "r1", 1), RegEq(2, "r2", 1), RegEq(2, "r3", 0)),
        )


def generate_battery(max_tests: Optional[int] = None) -> list[LitmusTest]:
    """A deterministic battery drawn from all generated families."""
    battery: list[LitmusTest] = []
    for family in (generate_mp(), generate_sb(), generate_lb(), generate_s(), generate_wrc()):
        battery.extend(family)
    if max_tests is not None:
        battery = battery[:max_tests]
    return battery


__all__ = [
    "Linkage",
    "READ_LINKAGES",
    "READ_TO_WRITE_LINKAGES",
    "WRITE_LINKAGES",
    "generate_mp",
    "generate_lb",
    "generate_sb",
    "generate_s",
    "generate_wrc",
    "generate_battery",
]
