"""Running litmus tests under the models and comparing the results.

The runner wires a :class:`~repro.litmus.test.LitmusTest` to one of the
three implementations (promising, axiomatic, flat), taking care of the
projection onto the observables mentioned by the test condition, and of
keeping condition-observed locations shared when the promising explorer's
local-location optimisation is enabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..lang.kinds import Arch
from ..outcomes import OutcomeSet
from ..promising.exhaustive import ExploreConfig, explore, explore_naive
from ..axiomatic.model import AxiomaticConfig, enumerate_axiomatic_outcomes
from .test import LitmusTest, Verdict


@dataclass
class RunResult:
    """Result of running one litmus test under one model."""

    test: LitmusTest
    model: str
    arch: Arch
    outcomes: OutcomeSet
    verdict: Verdict
    expected: Optional[Verdict]
    elapsed_seconds: float

    @property
    def matches_expectation(self) -> Optional[bool]:
        if self.expected is None:
            return None
        return self.verdict is self.expected

    def describe(self) -> str:
        expectation = (
            "?" if self.expected is None else ("ok" if self.matches_expectation else "MISMATCH")
        )
        return (
            f"{self.test.name:28s} {self.model:10s} {self.arch.value:7s} "
            f"{self.verdict.value:9s} [{expectation}] {self.elapsed_seconds:.3f}s"
        )


def _projected(test: LitmusTest, outcomes: OutcomeSet) -> OutcomeSet:
    regs = {tid: sorted(names) for tid, names in test.observable_registers().items()}
    locs = sorted(test.observable_locations())
    return outcomes.project(regs, locs)


def run_promising(
    test: LitmusTest,
    arch: Arch = Arch.ARM,
    config: Optional[ExploreConfig] = None,
    naive: bool = False,
) -> RunResult:
    """Run a litmus test under the promising exhaustive explorer."""
    base = config or ExploreConfig()
    cfg = ExploreConfig(
        arch=arch,
        loop_bound=base.loop_bound,
        cert_fuel=base.cert_fuel,
        max_states=base.max_states,
        localise=base.localise,
        shared_locations=tuple(sorted(set(base.shared_locations) | test.observable_locations())),
    )
    start = time.perf_counter()
    result = (explore_naive if naive else explore)(test.program, cfg)
    elapsed = time.perf_counter() - start
    outcomes = _projected(test, result.outcomes)
    return RunResult(
        test=test,
        model="promising-naive" if naive else "promising",
        arch=arch,
        outcomes=outcomes,
        verdict=test.evaluate(outcomes),
        expected=test.expected_verdict(arch),
        elapsed_seconds=elapsed,
    )


def run_axiomatic(
    test: LitmusTest,
    arch: Arch = Arch.ARM,
    config: Optional[AxiomaticConfig] = None,
) -> RunResult:
    """Run a litmus test under the axiomatic enumerator (the herd role)."""
    base = config or AxiomaticConfig()
    cfg = AxiomaticConfig(
        arch=arch,
        loop_bound=base.loop_bound,
        max_preexec_states=base.max_preexec_states,
        max_candidates=base.max_candidates,
        domain_iterations=base.domain_iterations,
    )
    start = time.perf_counter()
    result = enumerate_axiomatic_outcomes(test.program, cfg)
    elapsed = time.perf_counter() - start
    outcomes = _projected(test, result.outcomes)
    return RunResult(
        test=test,
        model="axiomatic",
        arch=arch,
        outcomes=outcomes,
        verdict=test.evaluate(outcomes),
        expected=test.expected_verdict(arch),
        elapsed_seconds=elapsed,
    )


def run_flat(test: LitmusTest, arch: Arch = Arch.ARM, **kwargs) -> RunResult:
    """Run a litmus test under the Flat-style baseline model."""
    from ..flat.explorer import FlatConfig, explore_flat

    start = time.perf_counter()
    result = explore_flat(test.program, FlatConfig(arch=arch, **kwargs))
    elapsed = time.perf_counter() - start
    outcomes = _projected(test, result.outcomes)
    return RunResult(
        test=test,
        model="flat",
        arch=arch,
        outcomes=outcomes,
        verdict=test.evaluate(outcomes),
        expected=test.expected_verdict(arch),
        elapsed_seconds=elapsed,
    )


@dataclass
class AgreementReport:
    """Summary of a model-vs-model litmus agreement run (§7)."""

    total: int = 0
    agreeing: int = 0
    disagreements: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def agreement_rate(self) -> float:
        return self.agreeing / self.total if self.total else 1.0

    def describe(self) -> str:
        lines = [
            f"{self.agreeing}/{self.total} tests agree "
            f"({self.agreement_rate * 100:.1f}%) in {self.elapsed_seconds:.1f}s"
        ]
        lines.extend(f"  disagreement: {name}" for name in self.disagreements)
        return "\n".join(lines)


def check_agreement(
    tests: Sequence[LitmusTest],
    arch: Arch = Arch.ARM,
    promising_config: Optional[ExploreConfig] = None,
    axiomatic_config: Optional[AxiomaticConfig] = None,
) -> AgreementReport:
    """Compare promising and axiomatic outcome sets on a battery of tests.

    This is the reproduction of the paper's experimental-equivalence check
    (the 6,500-test ARM / 7,000-test RISC-V agreement of §7): the two
    models must produce identical *projected* outcome sets on every test.
    """
    report = AgreementReport()
    start = time.perf_counter()
    for test in tests:
        report.total += 1
        promising = run_promising(test, arch, promising_config)
        axiomatic = run_axiomatic(test, arch, axiomatic_config)
        if set(promising.outcomes) == set(axiomatic.outcomes):
            report.agreeing += 1
        else:
            report.disagreements.append(test.name)
    report.elapsed_seconds = time.perf_counter() - start
    return report


__all__ = [
    "RunResult",
    "run_promising",
    "run_axiomatic",
    "run_flat",
    "AgreementReport",
    "check_agreement",
]
