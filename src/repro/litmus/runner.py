"""Running litmus tests under the models and comparing the results.

The runner wires a :class:`~repro.litmus.test.LitmusTest` to one of the
three implementations (promising, axiomatic, flat) through the sweep
harness (:mod:`repro.harness`), which takes care of the projection onto
the observables mentioned by the test condition, of keeping
condition-observed locations shared when the promising explorer's
local-location optimisation is enabled, and — for batteries — of worker
pools, per-job timeouts, and the persistent result cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from ..lang.kinds import Arch
from ..outcomes import OutcomeSet
from ..promising.exhaustive import ExploreConfig
from ..axiomatic.model import AxiomaticConfig
from ..harness.jobs import Job, JobResult, execute_job
from ..harness.scheduler import run_jobs
from ..harness.cache import ResultCache
from .test import LitmusTest, Verdict


@dataclass
class RunResult:
    """Result of running one litmus test under one model."""

    test: LitmusTest
    model: str
    arch: Arch
    outcomes: OutcomeSet
    verdict: Verdict
    expected: Optional[Verdict]
    elapsed_seconds: float
    #: Explorer diagnostics (states, dedup/cert-memo counters, truncation).
    stats: dict = field(default_factory=dict)

    @property
    def truncated(self) -> bool:
        """True when the exploration hit a budget: verdict unverified."""
        return bool(self.stats.get("truncated"))

    @property
    def matches_expectation(self) -> Optional[bool]:
        if self.expected is None or self.truncated:
            return None
        return self.verdict is self.expected

    def describe(self) -> str:
        expectation = (
            "?" if self.expected is None else ("ok" if self.matches_expectation else "MISMATCH")
        )
        return (
            f"{self.test.name:28s} {self.model:10s} {self.arch.value:7s} "
            f"{self.verdict.value:9s} [{expectation}] {self.elapsed_seconds:.3f}s"
            f"{' [TRUNCATED]' if self.truncated else ''}"
        )


def _run_result(test: LitmusTest, result: JobResult) -> RunResult:
    return RunResult(
        test=test,
        model=result.model,
        arch=result.arch,
        outcomes=result.outcomes,
        verdict=result.verdict,
        expected=result.expected,
        elapsed_seconds=result.elapsed_seconds,
        stats=dict(result.stats),
    )


def run_promising(
    test: LitmusTest,
    arch: Arch = Arch.ARM,
    config: Optional[ExploreConfig] = None,
    naive: bool = False,
) -> RunResult:
    """Run a litmus test under the promising exhaustive explorer."""
    job = Job(
        test=test,
        model="promising-naive" if naive else "promising",
        arch=arch,
        explore_config=config,
    )
    return _run_result(test, execute_job(job, capture_errors=False))


def run_axiomatic(
    test: LitmusTest,
    arch: Arch = Arch.ARM,
    config: Optional[AxiomaticConfig] = None,
) -> RunResult:
    """Run a litmus test under the axiomatic enumerator (the herd role)."""
    job = Job(test=test, model="axiomatic", arch=arch, axiomatic_config=config)
    return _run_result(test, execute_job(job, capture_errors=False))


def run_flat(test: LitmusTest, arch: Arch = Arch.ARM, **kwargs) -> RunResult:
    """Run a litmus test under the Flat-style baseline model."""
    from ..flat.explorer import FlatConfig

    job = Job(test=test, model="flat", arch=arch, flat_config=FlatConfig(arch=arch, **kwargs))
    return _run_result(test, execute_job(job, capture_errors=False))


@dataclass
class AgreementReport:
    """Summary of a model-vs-model litmus agreement run (§7)."""

    total: int = 0
    agreeing: int = 0
    disagreements: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def agreement_rate(self) -> float:
        return self.agreeing / self.total if self.total else 1.0

    def describe(self) -> str:
        lines = [
            f"{self.agreeing}/{self.total} tests agree "
            f"({self.agreement_rate * 100:.1f}%) in {self.elapsed_seconds:.1f}s"
        ]
        lines.extend(f"  disagreement: {name}" for name in self.disagreements)
        return "\n".join(lines)


def check_agreement(
    tests: Sequence[LitmusTest],
    arch: Arch = Arch.ARM,
    promising_config: Optional[ExploreConfig] = None,
    axiomatic_config: Optional[AxiomaticConfig] = None,
    *,
    workers: int = 1,
    timeout: Optional[float] = None,
    cache: Union[None, str, Path, ResultCache] = None,
) -> AgreementReport:
    """Compare promising and axiomatic outcome sets on a battery of tests.

    This is the reproduction of the paper's experimental-equivalence check
    (the 6,500-test ARM / 7,000-test RISC-V agreement of §7): the two
    models must produce identical *projected* outcome sets on every test.

    The battery is dispatched through the sweep harness: ``workers`` runs
    it on a process pool (the report is identical to the serial run),
    ``cache`` reuses previously computed outcome sets across runs, and a
    per-job ``timeout`` turns a runaway test into a recorded disagreement
    instead of a hung sweep.
    """
    tests = list(tests)  # tolerate iterator inputs: we traverse twice
    jobs: list[Job] = []
    for test in tests:
        jobs.append(Job(test=test, model="promising", arch=arch, explore_config=promising_config))
        jobs.append(Job(test=test, model="axiomatic", arch=arch, axiomatic_config=axiomatic_config))

    report = AgreementReport()
    start = time.perf_counter()
    results = run_jobs(jobs, workers=workers, timeout=timeout, cache=cache)
    for index, test in enumerate(tests):
        promising, axiomatic = results[2 * index], results[2 * index + 1]
        report.total += 1
        if not (promising.ok and axiomatic.ok):
            statuses = f"{promising.status}/{axiomatic.status}"
            report.disagreements.append(f"{test.name} ({statuses})")
        elif promising.sampled:
            # A sampled promising run under-approximates: containment is
            # the strongest relation the equivalence check can demand of
            # it (equality would flag every outcome the walks missed).
            if set(promising.outcomes) <= set(axiomatic.outcomes):
                report.agreeing += 1
            else:
                report.disagreements.append(f"{test.name} (sampled outcomes not contained)")
        elif set(promising.outcomes) == set(axiomatic.outcomes):
            report.agreeing += 1
        else:
            report.disagreements.append(test.name)
    report.elapsed_seconds = time.perf_counter() - start
    return report


__all__ = [
    "RunResult",
    "run_promising",
    "run_axiomatic",
    "run_flat",
    "AgreementReport",
    "check_agreement",
]
