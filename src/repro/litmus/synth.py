"""Synthesize executable litmus tests from relaxation cycles.

Given a :class:`~repro.litmus.cycles.Cycle`, :func:`synthesize` derives the
whole test the way diy does:

* **events** — edge *i* runs from event *i* to event *i+1* (mod *n*); the
  direction of event *i* is edge *i*'s source direction;
* **threads** — external edges advance to the next thread, so the events
  between two external edges form one thread;
* **locations** — communication edges stay on their location, ``po`` edges
  with a location change rotate through the cycle's location pool
  (``x``, ``y``, ``z``, …), returning to the start at the wrap-around;
* **values** — per location, the writes along its (contiguous) arc of the
  cycle are its coherence order and receive values 1, 2, …;
* **condition** — each read pinned by an incoming ``rf`` edge must return
  the source write's value; each read with an outgoing ``fr`` edge must
  return the value coherence-before the target write; each location with
  two or more writes must end with its coherence-final value.  The
  conjunction is satisfiable iff the cycle is observable, so the test's
  verdict is exactly the §7 question asked of each model.  Cycles whose
  per-location constraints are contradictory (a co-closed single-location
  cycle, or a read whose rf source is not the coherence predecessor of
  its fr target) cannot be witnessed by any final state and are rejected
  with a :class:`~repro.litmus.cycles.CycleError`.

The derived expected verdict is *not* hardcoded: :func:`attach_expected`
runs the axiomatic model (the paper's reference) through the sweep harness
and records its verdict per architecture, giving every generated test an
oracle the differential fuzzing battery can check the operational models
against.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence, Union

from ..lang import (
    Isb,
    LocationEnv,
    R,
    ReadKind,
    Stmt,
    WriteKind,
    dependency_idiom,
    if_,
    load,
    make_program,
    seq,
    store,
)
from ..lang.kinds import Arch
from .conditions import MemEq, RegEq, cond_and
from .cycles import (
    Cycle,
    CycleError,
    FAMILIES,
    Family,
    READ,
    WRITE,
    get_family,
)
from .test import LitmusTest, Verdict

#: Location names in rotation order (extended with ``l<i>`` if exhausted).
_LOC_POOL = ("x", "y", "z", "w", "v", "u")


def _loc_name(index: int) -> str:
    return _LOC_POOL[index] if index < len(_LOC_POOL) else f"l{index}"


def synthesize(cycle: Cycle) -> LitmusTest:
    """Derive the litmus test observing ``cycle``.

    Deterministic: the same cycle always produces a byte-identical
    program, register assignment, and condition.
    """
    edges = cycle.edges
    n = len(edges)
    dirs = [edge.src for edge in edges]

    # -- threads: external edges advance to the next thread -----------------
    tids = []
    tid = 0
    for edge in edges:
        tids.append(tid)
        if edge.external:
            tid += 1
    n_threads = tid

    # -- locations: loc-changing edges rotate through the pool --------------
    n_locs = cycle.n_locations
    env = LocationEnv()
    for index in range(n_locs):
        env.loc(_loc_name(index))
    loc_index = [0] * n
    for i in range(1, n):
        loc_index[i] = (loc_index[i - 1] + (1 if edges[i - 1].loc_change else 0)) % n_locs
    locs = [env[_loc_name(index)] for index in loc_index]

    # -- values: per-location coherence order along the location's arc ------
    # Each location's events form one contiguous arc of the cycle (it is
    # entered by exactly one location-changing edge); the writes along the
    # arc are its coherence chain and get values 1, 2, ….
    values: dict[int, int] = {}
    for index in range(n_locs):
        arc = _location_arc(edges, loc_index, index)
        value = 0
        for event in arc:
            if dirs[event] == WRITE:
                value += 1
                values[event] = value

    # -- consistency: the derived condition must actually pin the cycle -----
    # A single-location cycle closed by a co edge demands a cyclic
    # coherence order (e.g. CoWW: W —coe→ W —coe→ back) — no execution
    # exhibits it, and the final-value condition could not witness it.
    if n_locs == 1 and edges[-1].kind == "co":
        raise CycleError(
            f"{cycle.name}: a single-location cycle closed by a co edge "
            "demands a cyclic coherence order; the final state cannot "
            "observe it"
        )
    # A read pinned by an incoming rf *and* an outgoing fr must be given
    # one value satisfying both: the rf source has to be the coherence
    # predecessor of the fr target.
    for i in range(n):
        if dirs[i] != READ:
            continue
        incoming = edges[i - 1] if i > 0 else edges[-1]
        outgoing = edges[i]
        if incoming.kind == "rf" and outgoing.kind == "fr":
            rf_value = values[(i - 1) % n]
            fr_value = values[(i + 1) % n] - 1
            if rf_value != fr_value:
                raise CycleError(
                    f"{cycle.name}: event {i} must read {rf_value} (its rf "
                    f"source) and {fr_value} (coherence-before its fr "
                    "target) at once; the cycle's constraints contradict"
                )

    # -- registers: reads take r1, r2, … in cycle order ----------------------
    regs: dict[int, str] = {}
    for i in range(n):
        if dirs[i] == READ:
            regs[i] = f"r{len(regs) + 1}"

    # -- access kinds from the linkage annotations ---------------------------
    read_kinds = {i: ReadKind.PLN for i in range(n) if dirs[i] == READ}
    write_kinds = {i: WriteKind.PLN for i in range(n) if dirs[i] == WRITE}
    for i, edge in enumerate(edges):
        if edge.is_comm:
            continue
        if edge.link.acquire_first and dirs[i] == READ:
            read_kinds[i] = ReadKind.ACQ
        tgt = (i + 1) % n
        if edge.link.release_second and dirs[tgt] == WRITE:
            write_kinds[tgt] = WriteKind.REL

    # -- per-thread statements ------------------------------------------------
    threads: list[Stmt] = []
    for t in range(n_threads):
        events = [i for i in range(n) if tids[i] == t]
        parts: list[Stmt] = []
        for offset, i in enumerate(events):
            incoming = edges[i - 1] if i > 0 else edges[-1]
            link = incoming.link if (offset > 0 and not incoming.is_comm) else None
            dep_reg = regs.get(events[offset - 1]) if offset > 0 else None
            if link is not None and link.barrier is not None:
                parts.append(link.barrier)
            stmt = _access(i, dirs, locs, regs, values, read_kinds, write_kinds, link, dep_reg)
            if link is not None and link.ctrl and dep_reg is not None:
                inner = seq(Isb(), stmt) if link.isb else stmt
                stmt = if_(R(dep_reg).ge(0), inner, inner)
            parts.append(stmt)
        threads.append(seq(*parts))

    program = make_program(threads, env=env, name=cycle.name)

    # -- condition: the observation pinning the cycle -------------------------
    reg_conds = []
    for i in range(n):
        if dirs[i] != READ:
            continue
        incoming = edges[i - 1] if i > 0 else edges[-1]
        outgoing = edges[i]
        if incoming.kind == "rf":
            observed = values[i - 1 if i > 0 else n - 1]
        elif outgoing.kind == "fr":
            observed = values[(i + 1) % n] - 1
        else:
            continue  # read not constrained by the cycle
        reg_conds.append(RegEq(tids[i], regs[i], observed))
    mem_conds = []
    for index in range(n_locs):
        writers = [i for i in range(n) if loc_index[i] == index and dirs[i] == WRITE]
        if len(writers) >= 2:
            name = _loc_name(index)
            mem_conds.append(MemEq(env[name], max(values[i] for i in writers), name))
    condition = cond_and(*reg_conds, *mem_conds)

    return LitmusTest(
        cycle.name,
        program,
        condition,
        {},
        f"cycle {cycle.family or cycle.name}: {cycle.spec()}",
    )


def _location_arc(edges, loc_index: list[int], index: int) -> list[int]:
    """The events of location ``index`` in arc (coherence-chain) order."""
    n = len(edges)
    members = [i for i in range(n) if loc_index[i] == index]
    if len(members) == n:  # single-location cycle: walk order from event 0
        return members
    # The arc starts at the unique event entered by a location change.
    start = next(i for i in members if loc_index[(i - 1) % n] != index)
    arc = []
    event = start
    while loc_index[event] == index:
        arc.append(event)
        event = (event + 1) % n
        if event == start:
            break
    return arc


def _access(i, dirs, locs, regs, values, read_kinds, write_kinds, link, dep_reg) -> Stmt:
    """The load/store statement of event ``i`` with dependency idioms."""
    addr = locs[i]
    if link is not None and link.addr and dep_reg is not None:
        addr = dependency_idiom(addr, dep_reg)
    if dirs[i] == READ:
        return load(regs[i], addr, kind=read_kinds[i])
    data = values[i]
    if link is not None and link.data and dep_reg is not None:
        data = dependency_idiom(data, dep_reg)
    return store(addr, data, kind=write_kinds[i])


def canonical_fingerprint(test: LitmusTest) -> str:
    """Content key identifying a generated test up to renaming nothing.

    Two tests with the same threads, initial memory, and condition are the
    same test regardless of their cycle names; the battery uses this to
    drop duplicates (e.g. a degenerate linkage collapsing onto ``po``).
    """
    return "\x1f".join(
        (
            repr(test.program.threads),
            repr(sorted(test.program.initial.items())),
            test.condition.canonical(),
        )
    )


def generate_cycles(
    families: Optional[Sequence[Union[str, Family]]] = None,
    *,
    max_per_family: Optional[int] = 64,
) -> Iterable[Cycle]:
    """All cycles of the requested families in deterministic order."""
    resolved = [
        get_family(f) if isinstance(f, str) else f for f in (families or FAMILIES)
    ]
    for family in resolved:
        yield from family.expand(max_cycles=max_per_family)


def generate_cycle_battery(
    families: Optional[Sequence[Union[str, Family]]] = None,
    *,
    max_tests: Optional[int] = None,
    max_per_family: Optional[int] = 64,
) -> list[LitmusTest]:
    """The deterministic, duplicate-free cycle-generated battery.

    Tests appear family by family in expansion order; duplicates by
    :func:`canonical_fingerprint` are dropped (first occurrence wins), so
    no two returned tests are the same program+condition.  ``max_tests``
    truncation is a plain prefix and therefore deterministic as well.
    """
    battery: list[LitmusTest] = []
    seen: set[str] = set()
    for cycle in generate_cycles(families, max_per_family=max_per_family):
        if max_tests is not None and len(battery) >= max_tests:
            break
        test = synthesize(cycle)
        key = canonical_fingerprint(test)
        if key in seen:
            continue
        seen.add(key)
        battery.append(test)
    return battery


def attach_expected(
    tests: Sequence[LitmusTest],
    archs: Sequence[Arch] = (Arch.ARM, Arch.RISCV),
    *,
    workers: int = 1,
    timeout: Optional[float] = None,
    cache=None,
    axiomatic_config=None,
) -> list[LitmusTest]:
    """Return copies of ``tests`` with axiomatic-oracle expected verdicts.

    The oracle runs through the sweep harness (worker pool + result
    cache), so computing expectations for a large corpus costs one
    axiomatic sweep — which the differential battery reuses via the cache.
    Tests whose oracle job fails, times out, or hits an enumeration budget
    (a truncated run has an incomplete outcome set, so its verdict cannot
    be trusted) keep no expectation for that architecture.
    """
    from ..harness.jobs import Job
    from ..harness.scheduler import run_jobs

    jobs = [
        Job(test=test, model="axiomatic", arch=arch, axiomatic_config=axiomatic_config)
        for test in tests
        for arch in archs
    ]
    results = run_jobs(jobs, workers=workers, timeout=timeout, cache=cache)
    attached = []
    for index, test in enumerate(tests):
        expected: dict[Arch, Verdict] = dict(test.expected)
        for offset, arch in enumerate(archs):
            result = results[index * len(archs) + offset]
            if (result.ok and result.verdict is not None and not result.stats.get("truncated")):
                expected[arch] = result.verdict
        attached.append(dataclasses.replace(test, expected=expected))
    return attached


__all__ = [
    "synthesize",
    "canonical_fingerprint",
    "generate_cycles",
    "generate_cycle_battery",
    "attach_expected",
]
