"""Litmus tests: a program, an interesting final-state condition, verdicts.

A :class:`LitmusTest` packages a concurrent program with an ``exists``
condition (the relaxed outcome of interest) and, optionally, the verdicts
expected from the architecture models.  Verdicts come from the published
ARMv8/RISC-V memory models (as reproduced in the paper's examples and the
standard litmus literature) and are what the test-suite and the agreement
experiment check the implementations against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..lang.kinds import Arch
from ..lang.program import Program
from ..outcomes import OutcomeSet
from .conditions import Condition


class Verdict(enum.Enum):
    """Whether the condition's outcome is architecturally allowed."""

    ALLOWED = "allowed"
    FORBIDDEN = "forbidden"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus test."""

    name: str
    program: Program
    condition: Condition
    #: Expected verdict per architecture; tests without an entry for an
    #: architecture are simply not checked against an expectation there.
    expected: Mapping[Arch, Verdict] = field(default_factory=dict)
    #: Free-form description (which relaxation the test probes).
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "expected", dict(self.expected))

    def expected_verdict(self, arch: Arch) -> Optional[Verdict]:
        return self.expected.get(arch)

    def observable_registers(self) -> dict[int, set[str]]:
        """Registers mentioned by the condition, grouped by thread."""
        result: dict[int, set[str]] = {tid: set() for tid in self.program.thread_ids}
        for tid, reg in self.condition.registers():
            result.setdefault(tid, set()).add(reg)
        return result

    def observable_locations(self) -> set[int]:
        """Memory locations mentioned by the condition."""
        return set(self.condition.locations())

    def evaluate(self, outcomes: OutcomeSet) -> Verdict:
        """Verdict of a model run: is the condition satisfiable?"""
        observed = outcomes.any_satisfies(self.condition.holds)
        return Verdict.ALLOWED if observed else Verdict.FORBIDDEN

    def matches_expectation(self, outcomes: OutcomeSet, arch: Arch) -> Optional[bool]:
        """Compare a model run against the expected verdict (None if unknown)."""
        expected = self.expected_verdict(arch)
        if expected is None:
            return None
        return self.evaluate(outcomes) is expected

    def __repr__(self) -> str:
        return f"LitmusTest({self.name!r}, {self.program.n_threads} threads)"


def allowed(arm: bool = True, riscv: Optional[bool] = None) -> dict[Arch, Verdict]:
    """Helper building the expected-verdict map.

    ``allowed()`` means allowed on both architectures, ``allowed(False)``
    means forbidden on both; pass ``riscv=`` when the verdicts differ.
    """
    if riscv is None:
        riscv = arm
    return {
        Arch.ARM: Verdict.ALLOWED if arm else Verdict.FORBIDDEN,
        Arch.RISCV: Verdict.ALLOWED if riscv else Verdict.FORBIDDEN,
    }


__all__ = ["Verdict", "LitmusTest", "allowed"]
