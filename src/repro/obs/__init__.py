"""Unified observability layer: metrics, structured logging, tracing.

Stdlib-only by design — the repo's zero-dependency constraint extends to
its instrumentation.  See the sibling modules:

* :mod:`repro.obs.metrics` — process-wide registry of labeled counters,
  gauges, and fixed-bucket histograms; snapshots merge across the
  multiprocessing boundary; renders Prometheus text exposition.
* :mod:`repro.obs.logging` — JSON/text structured log formatters with
  contextvars-based correlation (request id, job fingerprint, worker id).
* :mod:`repro.obs.tracing` — nested wall-time spans plus a
  per-run phase accumulator for hot loops.
"""

from .logging import (
    LOG_FORMATS,
    JsonFormatter,
    TextFormatter,
    bind,
    bind_global,
    configure_logging,
    current_context,
    get_logger,
    log_event,
    new_request_id,
    sanitize_request_id,
)
from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    OBS_DISABLED_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    diff_snapshots,
    gauge,
    get_registry,
    histogram,
)
from .tracing import PhaseAccumulator, Span, current_span_path, span

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "LOG_FORMATS",
    "OBS_DISABLED_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "PhaseAccumulator",
    "TextFormatter",
    "Span",
    "bind",
    "bind_global",
    "configure_logging",
    "counter",
    "current_context",
    "current_span_path",
    "diff_snapshots",
    "gauge",
    "get_logger",
    "get_registry",
    "histogram",
    "log_event",
    "new_request_id",
    "sanitize_request_id",
    "span",
]
