"""Structured logging with contextvars-based correlation.

One ``logging`` tree (rooted at ``"repro"``) serves the whole stack; the
only choice a process makes is the output shape:

* ``json`` — one JSON object per line: timestamp, level, logger, event,
  plus every bound context field (request id, job fingerprint, worker
  id) and any ``extra=`` fields on the call.  This is what
  ``--log-format json`` gives the CLI and service, and what CI parses
  line-by-line.
* ``text`` — a compact human form of the same record.

Correlation uses a single :class:`contextvars.ContextVar` holding an
immutable dict; :func:`bind` layers fields for the duration of a scope
(a request, a job, a span) and restores the previous context on exit, so
async tasks and threads each see their own chain.  Logs go to *stderr*:
stdout stays reserved for user-facing results, which is what lets CI
assert that every stderr line of a JSON-mode sweep parses as JSON.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
import time
import uuid
from contextlib import contextmanager
from typing import Iterator, Optional

ROOT_LOGGER = "repro"

#: Correlation fields visible to every log record in the current context.
_CONTEXT: contextvars.ContextVar[dict] = contextvars.ContextVar("repro_log_context", default={})

#: ``logging.LogRecord`` attributes that are plumbing, not payload.
_RECORD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def new_request_id() -> str:
    """A short unique correlation id (12 hex chars — log-friendly)."""
    return uuid.uuid4().hex[:12]


def current_context() -> dict:
    """The correlation fields bound in the current context (a copy)."""
    return dict(_CONTEXT.get())


@contextmanager
def bind(**fields) -> Iterator[dict]:
    """Layer correlation fields onto the current logging context."""
    merged = {**_CONTEXT.get(), **fields}
    token = _CONTEXT.set(merged)
    try:
        yield merged
    finally:
        _CONTEXT.reset(token)


def bind_global(**fields) -> None:
    """Set correlation fields for the rest of this context's lifetime.

    Used where there is no scope to unwind — e.g. a worker process binds
    its worker id once at startup.
    """
    _CONTEXT.set({**_CONTEXT.get(), **fields})


def _extra_fields(record: logging.LogRecord) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RECORD_ATTRS and not key.startswith("_")
    }


class JsonFormatter(logging.Formatter):
    """One JSON object per line; merges bound context and call extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(_CONTEXT.get())
        payload.update(_extra_fields(record))
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class TextFormatter(logging.Formatter):
    """Compact human-readable rendering of the same record shape."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        fields = {**_CONTEXT.get(), **_extra_fields(record)}
        suffix = "".join(f" {key}={value}" for key, value in sorted(fields.items()))
        line = f"{stamp} {record.levelname.lower():7s} {record.name}: {record.getMessage()}{suffix}"
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + self.formatException(record.exc_info)
        return line


LOG_FORMATS = ("text", "json")


def configure_logging(
    log_format: str = "text",
    level: str = "info",
    stream=None,
) -> logging.Logger:
    """Install a single handler on the ``repro`` logger tree.

    Idempotent: calling again replaces the previous handler (so tests
    and long-lived processes can reconfigure).  Returns the root
    ``repro`` logger.
    """
    if log_format not in LOG_FORMATS:
        raise ValueError(f"log_format must be one of {LOG_FORMATS}, got {log_format!r}")
    logger = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if log_format == "json" else TextFormatter())
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper(), logging.INFO))
    logger.propagate = False
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` tree (``get_logger("harness.sweep")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(logger: logging.Logger, event: str, level: int = logging.INFO, **fields) -> None:
    """Emit ``event`` with structured ``fields`` (sugar over ``extra=``).

    Field names colliding with ``LogRecord`` plumbing attributes
    (``name``, ``args``, ``msg``, ...) are prefixed with ``field_``
    instead of crashing ``makeRecord``.
    """
    safe = {
        (f"field_{key}" if key in _RECORD_ATTRS else key): value
        for key, value in fields.items()
    }
    logger.log(level, event, extra=safe)


def sanitize_request_id(raw: Optional[str], limit: int = 64) -> Optional[str]:
    """A client-supplied request id, made safe to echo into a header."""
    if not raw:
        return None
    cleaned = "".join(ch for ch in raw if ch.isalnum() or ch in "-_.")[:limit]
    return cleaned or None


__all__ = [
    "LOG_FORMATS",
    "ROOT_LOGGER",
    "JsonFormatter",
    "TextFormatter",
    "bind",
    "bind_global",
    "configure_logging",
    "current_context",
    "get_logger",
    "log_event",
    "new_request_id",
    "sanitize_request_id",
]
