"""Process-wide metrics registry: counters, gauges, histograms.

Stdlib-only, OpenTelemetry/Prometheus-shaped.  Every layer of the stack
(kernel, worker pool, cache tiers, service) registers named instruments
here; a series is one ``(name, label values)`` pair, e.g.
``cache_requests_total{layer="lru", outcome="hit"}``.

Design constraints, in priority order:

* **Cheap.**  An increment is one dict lookup plus a float add, and the
  hot loops (the search kernel) accumulate locally and flush *once per
  run*, so instrumentation overhead on a sweep stays within the bound
  guarded by ``BENCH_obs.json``.
* **Mergeable.**  Worker processes run their own registry; a
  :meth:`MetricsRegistry.snapshot` travels back over the multiprocessing
  boundary (attached to ``JobResult``) and folds into the parent's
  registry via :meth:`MetricsRegistry.merge` — counters and histogram
  buckets add, gauges take the incoming value.
* **Scrapeable.**  :meth:`MetricsRegistry.render_prometheus` emits the
  text exposition format (the service's ``GET /metrics``).

A process-wide default registry is module state (:func:`get_registry`);
setting ``REPRO_OBS_DISABLED=1`` in the environment swaps every
instrument for a shared no-op, which is what the overhead benchmark's
baseline leg runs under.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Iterable, Mapping, Optional, Sequence

#: Default histogram bucket upper bounds, in seconds (latency-shaped).
DEFAULT_SECONDS_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: Separator joining label values into a series key (never appears in a
#: sane label value; escaped rendering handles the rest).
_KEY_SEP = "\x1f"


def _series_key(values: Sequence[str]) -> str:
    return _KEY_SEP.join(values)


def _split_key(key: str) -> tuple[str, ...]:
    return tuple(key.split(_KEY_SEP)) if key else ()


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared plumbing of the three instrument kinds."""

    kind = "?"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        #: series key -> per-kind value object
        self._series: dict = {}
        self._lock = threading.Lock()

    def _label_values(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _child(self, key: str):
        child = self._series.get(key)
        if child is None:
            with self._lock:
                child = self._series.setdefault(key, self._new_child())
        return child

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child series for one set of label values (memoised)."""
        return self._child(_series_key(self._label_values(labels)))

    def series(self) -> dict:
        """``{label values tuple: child}`` — test/introspection helper."""
        return {_split_key(key): child for key, child in self._series.items()}


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; inc() takes a non-negative amount")
        self.value += amount


class Counter(_Instrument):
    """Monotonically increasing total (e.g. ``cache_hits_total``)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: str) -> float:
        return self.labels(**labels).value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Instrument):
    """A value that can go up and down (e.g. ``pool_workers``)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).dec(amount)

    def value(self, **labels: str) -> float:
        return self.labels(**labels).value


class _HistogramChild:
    __slots__ = ("counts", "sum", "count", "_buckets")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self._buckets = buckets
        #: one slot per finite bucket plus the implicit +Inf overflow
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # Prometheus bucket semantics: upper bounds are inclusive (an
        # observation equal to an edge lands in that bucket).
        index = len(self._buckets)
        for i, bound in enumerate(self._buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1


class Histogram(_Instrument):
    """Fixed-bucket distribution (e.g. ``pool_compute_seconds``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a non-empty ascending sequence")
        self.buckets = tuple(float(b) for b in buckets)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)


class _NullChild:
    """No-op series: the disabled registry hands this out everywhere."""

    value = 0.0
    sum = 0.0
    count = 0
    counts: list = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullInstrument:
    """No-op instrument returned by a disabled registry."""

    kind = "null"
    buckets: tuple = ()
    _CHILD = _NullChild()

    def __init__(self, name: str) -> None:
        self.name = name
        self.help = ""
        self.label_names = ()

    def labels(self, **labels: str) -> _NullChild:
        return self._CHILD

    def series(self) -> dict:
        return {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0


class MetricsRegistry:
    """Named instruments with get-or-create registration."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------
    def _register(self, cls, name: str, help: str, labels: Iterable[str], **kwargs):
        if not self.enabled:
            return _NullInstrument(name)
        label_names = tuple(labels)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.label_names}"
                    )
                return existing
            instrument = cls(name, help, label_names, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def clear(self) -> None:
        """Drop every instrument (tests only)."""
        with self._lock:
            self._instruments.clear()

    # -- snapshot / merge ----------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict, picklable copy of every series' current value."""
        snap: dict = {}
        for name, instrument in list(self._instruments.items()):
            entry: dict = {
                "kind": instrument.kind,
                "help": instrument.help,
                "labels": list(instrument.label_names),
            }
            if instrument.kind == "histogram":
                entry["buckets"] = list(instrument.buckets)
                entry["series"] = {
                    key: {
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                    }
                    for key, child in instrument._series.items()
                }
            else:
                entry["series"] = {
                    key: child.value for key, child in instrument._series.items()
                }
            snap[name] = entry
        return snap

    def merge(self, snapshot: Optional[Mapping]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last writer wins).  Unknown instruments are created from
        the snapshot's own metadata, so a parent process needs no prior
        knowledge of what its workers measured.
        """
        if not snapshot or not self.enabled:
            return
        for name, entry in snapshot.items():
            kind = entry.get("kind")
            labels = tuple(entry.get("labels", ()))
            help_text = entry.get("help", "")
            if kind == "counter":
                instrument = self.counter(name, help_text, labels)
            elif kind == "gauge":
                instrument = self.gauge(name, help_text, labels)
            elif kind == "histogram":
                instrument = self.histogram(
                    name, help_text, labels, buckets=tuple(entry.get("buckets", ()))
                )
            else:
                continue
            for key, value in entry.get("series", {}).items():
                child = instrument._child(key)
                if kind == "counter":
                    child.value += value
                elif kind == "gauge":
                    child.value = value
                else:
                    counts = value.get("counts", [])
                    for i, n in enumerate(counts[: len(child.counts)]):
                        child.counts[i] += n
                    child.sum += value.get("sum", 0.0)
                    child.count += value.get("count", 0)

    # -- rendering -----------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for key in sorted(instrument._series):
                child = instrument._series[key]
                values = _split_key(key)
                label_str = ",".join(
                    f'{label}="{_escape_label_value(value)}"'
                    for label, value in zip(instrument.label_names, values)
                )
                if instrument.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(
                        list(instrument.buckets) + [math.inf], child.counts
                    ):
                        cumulative += count
                        bucket_labels = (
                            label_str + "," if label_str else ""
                        ) + f'le="{_format_value(bound)}"'
                        lines.append(f"{name}_bucket{{{bucket_labels}}} {cumulative}")
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{name}_sum{suffix} {_format_value(child.sum)}")
                    lines.append(f"{name}_count{suffix} {child.count}")
                else:
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{name}{suffix} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"


def diff_snapshots(before: Mapping, after: Mapping) -> dict:
    """The delta ``after - before`` as a mergeable snapshot.

    This is how a long-lived worker process attributes metrics to one
    job: snapshot around the job, ship the difference.  Gauges keep the
    ``after`` value (a delta is meaningless for a level).
    """
    delta: dict = {}
    for name, entry in after.items():
        base = before.get(name, {})
        base_series = base.get("series", {})
        kind = entry.get("kind")
        out_series: dict = {}
        for key, value in entry.get("series", {}).items():
            prior = base_series.get(key)
            if kind == "counter":
                changed = value - (prior or 0.0)
                if changed:
                    out_series[key] = changed
            elif kind == "gauge":
                if prior is None or prior != value:
                    out_series[key] = value
            else:
                prior = prior or {"counts": [], "sum": 0.0, "count": 0}
                prior_counts = list(prior["counts"]) + [0] * (
                    len(value["counts"]) - len(prior["counts"])
                )
                counts = [n - p for n, p in zip(value["counts"], prior_counts)]
                if any(counts):
                    out_series[key] = {
                        "counts": counts,
                        "sum": value["sum"] - prior["sum"],
                        "count": value["count"] - prior["count"],
                    }
        if out_series:
            delta[name] = {**{k: v for k, v in entry.items() if k != "series"},
                           "series": out_series}
    return delta


#: Kill-switch honoured at import time: the overhead benchmark's baseline
#: leg (and any deployment that wants zero instrumentation) sets this.
OBS_DISABLED_ENV = "REPRO_OBS_DISABLED"

_REGISTRY = MetricsRegistry(enabled=os.environ.get(OBS_DISABLED_ENV, "") not in ("1", "true"))


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
    return _REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
    return _REGISTRY.gauge(name, help, labels)


def histogram(
    name: str,
    help: str = "",
    labels: Iterable[str] = (),
    buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
) -> Histogram:
    return _REGISTRY.histogram(name, help, labels, buckets=buckets)


__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "OBS_DISABLED_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "diff_snapshots",
    "gauge",
    "get_registry",
    "histogram",
]
