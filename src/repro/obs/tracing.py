"""Lightweight nested spans over the metrics registry and log stream.

``span("certify")`` wraps a phase of work, measures wall time with
``perf_counter``, and on exit (a) observes the ``span_seconds`` histogram
labeled by the span's dotted path and (b) emits a DEBUG log record with
the duration and any attached fields.  Nesting is tracked through a
contextvar, so spans compose across async tasks and threads:

    with span("batch_compute", jobs=len(batch)):
        with span("certify"):
            ...   # recorded as "batch_compute.certify"

For *per-state* hot loops even a contextmanager is too heavy; those call
sites accumulate ``perf_counter`` deltas in a :class:`PhaseAccumulator`
and flush once per run into a phase-labeled counter.
"""

from __future__ import annotations

import contextvars
import logging
import time
from contextlib import contextmanager
from typing import Iterator

from . import metrics
from .logging import get_logger, log_event

#: Dotted path of enclosing spans in the current context.
_SPAN_STACK: contextvars.ContextVar[tuple[str, ...]] = contextvars.ContextVar(
    "repro_span_stack", default=()
)

_SPAN_SECONDS = metrics.histogram(
    "span_seconds", "Wall time per traced span.", labels=("span",)
)

_log = get_logger("trace")


class Span:
    """Handle yielded by :func:`span` — exposes path and elapsed time."""

    __slots__ = ("name", "path", "fields", "_start", "seconds")

    def __init__(self, name: str, path: str, fields: dict) -> None:
        self.name = name
        self.path = path
        self.fields = fields
        self._start = time.perf_counter()
        self.seconds = 0.0

    def stop(self) -> float:
        self.seconds = time.perf_counter() - self._start
        return self.seconds


def current_span_path() -> str:
    """Dotted path of the innermost active span ("" outside any span)."""
    return ".".join(_SPAN_STACK.get())


@contextmanager
def span(name: str, /, **fields) -> Iterator[Span]:
    """Trace one phase of work; see module docstring."""
    stack = _SPAN_STACK.get()
    token = _SPAN_STACK.set(stack + (name,))
    handle = Span(name, ".".join(stack + (name,)), fields)
    try:
        yield handle
    finally:
        _SPAN_STACK.reset(token)
        elapsed = handle.stop()
        _SPAN_SECONDS.observe(elapsed, span=handle.path)
        if _log.isEnabledFor(logging.DEBUG):
            log_event(
                _log,
                "span",
                level=logging.DEBUG,
                span=handle.path,
                seconds=round(elapsed, 6),
                **handle.fields,
            )


class PhaseAccumulator:
    """Per-run phase timing for hot loops: accumulate locally, flush once.

    The explorers call ``add(phase, dt)`` with raw ``perf_counter``
    deltas from inside their inner loops (two clock reads per phase, no
    allocation, no dict-of-labels lookup), then ``flush`` the totals to
    a phase-labeled seconds counter after the run completes.
    """

    __slots__ = ("totals",)

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds

    def flush(self, counter: metrics.Counter, **labels: str) -> None:
        for phase, seconds in self.totals.items():
            counter.inc(seconds, phase=phase, **labels)
        self.totals.clear()


__all__ = ["PhaseAccumulator", "Span", "current_span_path", "span"]
