"""Execution outcomes shared by all models.

An :class:`Outcome` is what a programmer observes of a finished execution:
the final register state of every thread and the final value of every
memory location.  All three models (promising, axiomatic, flat) report
sets of outcomes, which makes cross-model comparison and litmus-condition
checking uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from .lang.expr import Reg, Value
from .lang.program import Loc, TId

RegAssignment = tuple[tuple[Reg, Value], ...]


def _freeze_regs(regs: Mapping[Reg, Value]) -> RegAssignment:
    return tuple(sorted(regs.items()))


@dataclass(frozen=True)
class Outcome:
    """Final state of one complete execution."""

    registers: tuple[RegAssignment, ...]
    memory: tuple[tuple[Loc, Value], ...]

    @classmethod
    def make(
        cls,
        registers: Sequence[Mapping[Reg, Value]],
        memory: Mapping[Loc, Value],
    ) -> "Outcome":
        return cls(
            tuple(_freeze_regs(regs) for regs in registers),
            tuple(sorted(memory.items())),
        )

    # -- accessors ----------------------------------------------------------
    @property
    def n_threads(self) -> int:
        return len(self.registers)

    def reg(self, tid: TId, name: Reg, default: Value = 0) -> Value:
        """Final value of register ``name`` on thread ``tid``."""
        for reg, value in self.registers[tid]:
            if reg == name:
                return value
        return default

    def regs_of(self, tid: TId) -> dict[Reg, Value]:
        return dict(self.registers[tid])

    def mem(self, loc: Loc, default: Value = 0) -> Value:
        """Final value of memory location ``loc``."""
        for location, value in self.memory:
            if location == loc:
                return value
        return default

    def memory_dict(self) -> dict[Loc, Value]:
        return dict(self.memory)

    # -- projections ---------------------------------------------------------
    def project(
        self,
        registers: Optional[Mapping[TId, Iterable[Reg]]] = None,
        locations: Optional[Iterable[Loc]] = None,
    ) -> "Outcome":
        """Restrict the outcome to the given observables.

        Projections are what makes outcome sets from different models (or
        from the same model with and without the local-location
        optimisation) comparable: models may use different scratch
        registers, but must agree on the observables.
        """
        regs: list[dict[Reg, Value]] = []
        for tid in range(self.n_threads):
            if registers is None:
                regs.append(self.regs_of(tid))
            else:
                wanted = set(registers.get(tid, ()))
                regs.append({r: self.reg(tid, r) for r in wanted})
        if locations is None:
            memory = self.memory_dict()
        else:
            memory = {loc: self.mem(loc) for loc in locations}
        return Outcome.make(regs, memory)

    def describe(self, loc_names: Optional[Mapping[Loc, str]] = None) -> str:
        parts = []
        for tid, regs in enumerate(self.registers):
            for reg, value in regs:
                if reg.startswith("_"):
                    continue
                parts.append(f"{tid}:{reg}={value}")
        for loc, value in self.memory:
            name = (loc_names or {}).get(loc, f"[{loc}]")
            parts.append(f"{name}={value}")
        return " ".join(parts) if parts else "<empty>"

    def __repr__(self) -> str:
        return f"Outcome({self.describe()})"


class OutcomeSet:
    """A set of outcomes with convenience queries and set semantics."""

    def __init__(self, outcomes: Iterable[Outcome] = ()) -> None:
        self._outcomes: set[Outcome] = set(outcomes)

    def add(self, outcome: Outcome) -> None:
        self._outcomes.add(outcome)

    def __iter__(self) -> Iterator[Outcome]:
        return iter(self._outcomes)

    def __len__(self) -> int:
        return len(self._outcomes)

    def __contains__(self, outcome: Outcome) -> bool:
        return outcome in self._outcomes

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OutcomeSet):
            return self._outcomes == other._outcomes
        if isinstance(other, (set, frozenset)):
            return self._outcomes == other
        return NotImplemented

    def __bool__(self) -> bool:
        return bool(self._outcomes)

    def project(
        self,
        registers: Optional[Mapping[TId, Iterable[Reg]]] = None,
        locations: Optional[Iterable[Loc]] = None,
    ) -> "OutcomeSet":
        return OutcomeSet(o.project(registers, locations) for o in self._outcomes)

    def any_satisfies(self, predicate) -> bool:
        """Does any outcome satisfy ``predicate`` (a callable on outcomes)?"""
        return any(predicate(o) for o in self._outcomes)

    def all_satisfy(self, predicate) -> bool:
        """Do all outcomes satisfy ``predicate``?"""
        return all(predicate(o) for o in self._outcomes)

    def filter(self, predicate) -> "OutcomeSet":
        return OutcomeSet(o for o in self._outcomes if predicate(o))

    def describe(self, loc_names: Optional[Mapping[Loc, str]] = None) -> str:
        lines = [o.describe(loc_names) for o in self._outcomes]
        return "\n".join(sorted(lines))

    def __repr__(self) -> str:
        return f"OutcomeSet({len(self._outcomes)} outcomes)"


__all__ = ["Outcome", "OutcomeSet", "RegAssignment"]
