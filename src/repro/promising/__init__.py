"""Promising-ARM/RISC-V operational model, certification and exploration."""

from .state import ExclBank, Forward, Memory, Msg, Timestamp, TState, View, initial_tstate, vmax
from .steps import (
    ThreadStep,
    is_terminated,
    non_promise_steps,
    normal_write_steps,
    normalise,
    promise_step,
    sequential_steps,
    thread_local_steps,
)
from .certification import (
    DEFAULT_FUEL,
    CertificationCache,
    CertificationResult,
    can_complete_without_promising,
    certified,
    certify_thread,
    find_and_certify,
)
from .intern import Interner, InternPool
from .machine import MachineState, MachineTransition, Thread, machine_transitions, run_deterministic
from .exhaustive import (
    ExplorationResult,
    ExplorationStats,
    ExploreConfig,
    explore,
    explore_naive,
)
from .interactive import InteractiveSession, TraceEntry, find_witness

__all__ = [
    "ExclBank",
    "Forward",
    "Memory",
    "Msg",
    "Timestamp",
    "TState",
    "View",
    "initial_tstate",
    "vmax",
    "ThreadStep",
    "is_terminated",
    "non_promise_steps",
    "normal_write_steps",
    "normalise",
    "promise_step",
    "sequential_steps",
    "thread_local_steps",
    "DEFAULT_FUEL",
    "CertificationCache",
    "CertificationResult",
    "can_complete_without_promising",
    "certified",
    "certify_thread",
    "find_and_certify",
    "Interner",
    "InternPool",
    "MachineState",
    "MachineTransition",
    "Thread",
    "machine_transitions",
    "run_deterministic",
    "ExplorationResult",
    "ExplorationStats",
    "ExploreConfig",
    "explore",
    "explore_naive",
    "InteractiveSession",
    "TraceEntry",
    "find_witness",
]
