"""Certification and promise enumeration (§4.3, §B, Theorem 6.4).

A thread configuration ⟨T, M⟩ is *certified* when the thread, executing
sequentially (alone, with every new promise immediately fulfilled), can
reach a state with no outstanding promises.  The machine only takes steps
that lead to certified configurations.

:func:`find_and_certify` is the algorithmic counterpart used by the
executable tool: starting from a certified configuration it returns the
set of promise messages whose addition keeps the configuration certified
(exactly the promises the machine should offer, per Theorem 6.4), by
enumerating the thread's bounded sequential executions and harvesting the
writes whose pre-view and coherence view do not exceed the current
maximal timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang.ast import Stmt
from ..lang.kinds import Arch
from ..lang.program import TId
from .state import Memory, Msg, TState
from .steps import (
    ThreadStep,
    is_terminated,
    non_promise_steps,
    sequential_steps,
)

#: Default bound on the number of sequential states a single certification
#: run may visit.  Certification explores one thread in isolation, so this
#: is rarely reached except for programs with unbounded loops.
DEFAULT_FUEL = 4000


@dataclass(frozen=True)
class CertificationResult:
    """Result of :func:`find_and_certify`.

    Attributes
    ----------
    certified:
        Whether the configuration itself can fulfil all its promises.
    promises:
        Messages that may be promised next while staying certified.
    complete:
        False when the sequential search was truncated by ``fuel``; in
        that case ``certified``/``promises`` are under-approximations
        (sound for exploration, possibly missing behaviours).
    visited:
        Number of sequential states visited (for diagnostics/benchmarks).
    """

    certified: bool
    promises: frozenset[Msg]
    complete: bool
    visited: int


def _state_key(stmt: Stmt, ts: TState, memory: Memory) -> tuple:
    return (stmt, ts.key(), memory.key())


class _SequentialGraph:
    """Bounded exploration of one thread's sequential executions.

    Nodes are thread configurations reachable by sequential steps; edges
    remember the write performed (if any) so promise candidates can be
    harvested afterwards.
    """

    def __init__(self, arch: Arch, tid: TId, fuel: int) -> None:
        self.arch = arch
        self.tid = tid
        self.fuel = fuel
        self.nodes: dict[tuple, tuple[Stmt, TState, Memory]] = {}
        self.edges: dict[tuple, list[tuple[tuple, Optional[ThreadStep]]]] = {}
        self.fulfilled: set[tuple] = set()
        self.complete = True

    def build(self, stmt: Stmt, ts: TState, memory: Memory) -> tuple:
        root = _state_key(stmt, ts, memory)
        stack = [(root, stmt, ts, memory)]
        self.nodes[root] = (stmt, ts, memory)
        while stack:
            key, stmt, ts, memory = stack.pop()
            if key in self.edges:
                continue
            if not ts.prom:
                self.fulfilled.add(key)
            if len(self.nodes) >= self.fuel:
                # Truncated: leave this node unexpanded.
                self.edges[key] = []
                self.complete = False
                continue
            successors: list[tuple[tuple, Optional[ThreadStep]]] = []
            for step in sequential_steps(stmt, ts, memory, self.arch, self.tid):
                succ_key = _state_key(step.stmt, step.tstate, step.memory)
                successors.append((succ_key, step if step.kind == "write" else None))
                if succ_key not in self.nodes:
                    self.nodes[succ_key] = (step.stmt, step.tstate, step.memory)
                    stack.append((succ_key, step.stmt, step.tstate, step.memory))
            self.edges[key] = successors
        return root

    def can_reach_fulfilled(self) -> set[tuple]:
        """Keys of nodes from which a promise-free state is reachable."""
        # Backward reachability over the explored graph.
        predecessors: dict[tuple, list[tuple]] = {key: [] for key in self.nodes}
        for src, succs in self.edges.items():
            for dst, _step in succs:
                predecessors.setdefault(dst, []).append(src)
        good = set(self.fulfilled)
        worklist = list(self.fulfilled)
        while worklist:
            node = worklist.pop()
            for pred in predecessors.get(node, ()):
                if pred not in good:
                    good.add(pred)
                    worklist.append(pred)
        return good


def certified(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int = DEFAULT_FUEL,
) -> bool:
    """Is the thread configuration certified (rule r24)?

    A configuration with no outstanding promises is trivially certified;
    otherwise we search the thread's sequential executions for a state
    with an empty promise set.
    """
    if not ts.prom:
        return True
    graph = _SequentialGraph(arch, tid, fuel)
    root = graph.build(stmt, ts, memory)
    return root in graph.can_reach_fulfilled()


def find_and_certify(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int = DEFAULT_FUEL,
) -> CertificationResult:
    """Enumerate the certified promise steps of a thread (§B).

    The algorithm:

    1. enumerate the thread's sequential executions under the current
       memory (bounded by ``fuel``);
    2. keep only execution prefixes from which a promise-free state
       remains reachable;
    3. every normal write performed on such a prefix whose pre-view and
       coherence view (at its location, before the write) are at most the
       current maximal timestamp is a legal promise.
    """
    max_ts = memory.last_timestamp
    graph = _SequentialGraph(arch, tid, fuel)
    root = graph.build(stmt, ts, memory)
    good = graph.can_reach_fulfilled()
    promises: set[Msg] = set()
    for src, succs in graph.edges.items():
        if src not in good:
            continue
        for dst, step in succs:
            if step is None or dst not in good:
                continue
            if step.pre_view is None or step.coh_before is None:
                continue
            if step.pre_view <= max_ts and step.coh_before <= max_ts:
                promises.add(Msg(step.loc, step.value, tid))
    return CertificationResult(
        certified=root in good,
        promises=frozenset(promises),
        complete=graph.complete,
        visited=len(graph.nodes),
    )


def can_complete_without_promising(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int = DEFAULT_FUEL,
) -> bool:
    """Can the thread terminate, fulfilling all promises, with memory fixed?

    Used by the exhaustive explorer to decide when promise-mode may end:
    every remaining step must be a non-promise step (no new messages), the
    statement must reduce to ``skip`` and the promise set must drain.
    """
    seen: set[tuple] = set()
    stack = [(stmt, ts)]
    visited = 0
    while stack:
        cur_stmt, cur_ts = stack.pop()
        key = (cur_stmt, cur_ts.key())
        if key in seen:
            continue
        seen.add(key)
        visited += 1
        if visited > fuel:
            return False
        if is_terminated(cur_stmt) and not cur_ts.prom:
            return True
        for step in non_promise_steps(cur_stmt, cur_ts, memory, arch, tid):
            stack.append((step.stmt, step.tstate))
    return False


__all__ = [
    "DEFAULT_FUEL",
    "CertificationResult",
    "certified",
    "find_and_certify",
    "can_complete_without_promising",
]
