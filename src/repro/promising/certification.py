"""Certification and promise enumeration (§4.3, §B, Theorem 6.4).

A thread configuration ⟨T, M⟩ is *certified* when the thread, executing
sequentially (alone, with every new promise immediately fulfilled), can
reach a state with no outstanding promises.  The machine only takes steps
that lead to certified configurations.

:func:`find_and_certify` is the algorithmic counterpart used by the
executable tool: starting from a certified configuration it returns the
set of promise messages whose addition keeps the configuration certified
(exactly the promises the machine should offer, per Theorem 6.4), by
enumerating the thread's bounded sequential executions and harvesting the
writes whose pre-view and coherence view do not exceed the current
maximal timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import Stmt
from ..lang.kinds import Arch
from ..lang.program import TId
from .state import Memory, Msg, TState
from .steps import (
    ThreadStep,
    is_terminated,
    non_promise_steps,
    sequential_steps,
)

#: Default bound on the number of sequential states a single certification
#: run may visit.  Certification explores one thread in isolation, so this
#: is rarely reached except for programs with unbounded loops.
DEFAULT_FUEL = 4000


@dataclass(frozen=True)
class CertificationResult:
    """Result of :func:`find_and_certify` / :func:`certify_thread`.

    Attributes
    ----------
    certified:
        Whether the configuration itself can fulfil all its promises.
    promises:
        Messages that may be promised next while staying certified.
    complete:
        False when the sequential search was truncated by ``fuel``; in
        that case ``certified``/``promises`` are under-approximations
        (sound for exploration, possibly missing behaviours).
    visited:
        Number of sequential states visited (for diagnostics/benchmarks).
    can_complete:
        Whether the thread can also terminate with *memory fixed* (no new
        writes), i.e. the :func:`can_complete_without_promising` answer.
        Populated by :func:`certify_thread`, which derives it from the
        same sequential graph; ``None`` when the producer did not compute
        it.
    """

    certified: bool
    promises: frozenset[Msg]
    complete: bool
    visited: int
    can_complete: Optional[bool] = None


def _state_key(stmt: Stmt, ts: TState, memory: Memory) -> tuple:
    return (stmt, ts.cache_key(), memory.cache_key())


class _SequentialGraphBase:
    """Shared node/edge store and reachability passes of the two builds.

    Nodes are thread configurations reachable by sequential steps; edges
    remember the write performed (if any) so promise candidates can be
    harvested afterwards.  Node identities are hash-consed to dense
    integer ids and the reachability passes run on ints only; what
    differs between the subclasses is the node *key* (and therefore what
    gets hashed per discovered edge).
    """

    def __init__(self, arch: Arch, tid: TId, fuel: int) -> None:
        self.arch = arch
        self.tid = tid
        self.fuel = fuel
        self._ids: dict[tuple, int] = {}
        #: Edge lists indexed by node id (parallel list, not a dict).
        self.edges: list[Optional[list[tuple[int, Optional[ThreadStep]]]]] = []
        self.fulfilled: set[int] = set()
        #: Terminated *and* promise-free nodes: the accepting states of
        #: :func:`can_complete_without_promising`.
        self.finished: set[int] = set()
        self.complete = True

    @property
    def n_nodes(self) -> int:
        return len(self._ids)

    def _backward_reachable(self, targets: set[int], writes_too: bool) -> set[int]:
        """Nodes from which some target is reachable (optionally over all
        edges; otherwise only non-write edges)."""
        predecessors: list[list[int]] = [[] for _ in range(len(self._ids))]
        for src, succs in enumerate(self.edges):
            for dst, step in succs or ():
                if writes_too or step is None:
                    predecessors[dst].append(src)
        good = set(targets)
        worklist = list(targets)
        while worklist:
            node = worklist.pop()
            for pred in predecessors[node]:
                if pred not in good:
                    good.add(pred)
                    worklist.append(pred)
        return good

    def can_reach_fulfilled(self) -> set[int]:
        """Ids of nodes from which a promise-free state is reachable."""
        return self._backward_reachable(self.fulfilled, writes_too=True)

    def can_reach_finished_locally(self) -> set[int]:
        """Ids of nodes that reach a finished node via non-write edges.

        Write edges append to memory, so a path avoiding them is exactly
        a :func:`~repro.promising.steps.non_promise_steps` execution —
        the relation :func:`can_complete_without_promising` searches.
        """
        return self._backward_reachable(self.finished, writes_too=False)


class _SequentialGraph(_SequentialGraphBase):
    """The reference build: nodes keyed by deep configuration tuples.

    The full configuration key — ``(statement, thread-state snapshot,
    memory)`` — is a deep tuple whose hash walks every register, view,
    and message; interning pays that hash once per discovered edge, which
    is where most of the certification profile used to go.
    """

    def _intern(self, stmt: Stmt, ts: TState, memory: Memory) -> tuple[int, bool]:
        """Dense id for a configuration, plus whether it is new."""
        key = _state_key(stmt, ts, memory)
        nid = self._ids.get(key)
        if nid is not None:
            return nid, False
        nid = len(self._ids)
        self._ids[key] = nid
        self.edges.append(None)
        return nid, True

    def build(self, stmt: Stmt, ts: TState, memory: Memory) -> int:
        root, _ = self._intern(stmt, ts, memory)
        stack = [(root, stmt, ts, memory)]
        while stack:
            nid, stmt, ts, memory = stack.pop()
            if self.edges[nid] is not None:
                continue
            if not ts.prom:
                self.fulfilled.add(nid)
                if is_terminated(stmt):
                    self.finished.add(nid)
            if len(self._ids) >= self.fuel:
                # Truncated: leave this node unexpanded.
                self.edges[nid] = []
                self.complete = False
                continue
            successors: list[tuple[int, Optional[ThreadStep]]] = []
            for step in sequential_steps(stmt, ts, memory, self.arch, self.tid):
                succ, fresh = self._intern(step.stmt, step.tstate, step.memory)
                successors.append((succ, step if step.kind == "write" else None))
                if fresh:
                    stack.append((succ, step.stmt, step.tstate, step.memory))
            self.edges[nid] = successors
        return root


class CompiledSequentialGraph(_SequentialGraphBase):
    """The packed build: nodes keyed ``(stmt id, packed regs, mem id)``.

    Statements are dense compiled ids (no AST hashing), memories intern
    to dense ids through a caller-supplied
    :class:`~repro.promising.intern.IdInterner` (shared across the
    certification calls of one run, so a memory's messages are hashed
    once ever), and step enumeration goes through the compiled
    per-statement tables.  The rule bodies, enumeration order, node
    equivalence classes, discovery order and fuel cut-off are identical
    to :class:`_SequentialGraph` by construction, so both builds produce
    the same :class:`CertificationResult` — the conformance suite holds
    them to that.
    """

    def __init__(
        self, compiled, arch: Arch, tid: TId, fuel: int, mem_ids, appends=None
    ) -> None:
        super().__init__(arch, tid, fuel)
        self.compiled = compiled
        self.mem_ids = mem_ids
        #: ``(mem id, loc, value, tid)`` -> appended memory id.  Sequential
        #: write steps extend memory deterministically, so once an append
        #: has been interned its id can be replayed without hashing the
        #: messages tuple again.  The packed backend shares its run-wide
        #: append memo here, making the ids flow *through* the build:
        #: every successor memory id is derived from its predecessor's id
        #: and the written message, never from a by-value memory hash.
        self.appends: dict[tuple, int] = {} if appends is None else appends

    def _intern(self, sid: int, ts: TState, mem_id: int) -> tuple[int, bool]:
        key = (sid, ts.pack(self.compiled.registers), mem_id)
        nid = self._ids.get(key)
        if nid is not None:
            return nid, False
        nid = len(self._ids)
        self._ids[key] = nid
        self.edges.append(None)
        return nid, True

    def _memory_id(self, memory: Memory) -> int:
        return self.mem_ids.intern(memory.cache_key(), memory)

    def build(self, sid: int, ts: TState, memory: Memory, mem_id=None) -> int:
        compiled = self.compiled
        records = compiled.stmts
        appends = self.appends
        if mem_id is None:
            mem_id = self._memory_id(memory)
        root, _ = self._intern(sid, ts, mem_id)
        stack = [(root, sid, ts, memory, mem_id)]
        while stack:
            nid, sid, ts, memory, mem_id = stack.pop()
            if self.edges[nid] is not None:
                continue
            if not ts.prom:
                self.fulfilled.add(nid)
                if records[sid].terminated:
                    self.finished.add(nid)
            if len(self._ids) >= self.fuel:
                self.edges[nid] = []
                self.complete = False
                continue
            successors: list[tuple[int, Optional[ThreadStep]]] = []
            for succ_sid, step in compiled.candidate_steps(
                sid, ts, memory, self.arch, self.tid
            ):
                if step.memory is memory:
                    succ_mem = mem_id
                elif step.kind == "write":
                    akey = (mem_id, step.loc, step.value, self.tid)
                    succ_mem = appends.get(akey)
                    if succ_mem is None:
                        succ_mem = self._memory_id(step.memory)
                        appends[akey] = succ_mem
                else:
                    succ_mem = self._memory_id(step.memory)
                succ, fresh = self._intern(succ_sid, step.tstate, succ_mem)
                successors.append((succ, step if step.kind == "write" else None))
                if fresh:
                    stack.append((succ, succ_sid, step.tstate, step.memory, succ_mem))
            self.edges[nid] = successors
        return root


def certified(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int = DEFAULT_FUEL,
) -> bool:
    """Is the thread configuration certified (rule r24)?

    A configuration with no outstanding promises is trivially certified;
    otherwise we search the thread's sequential executions for a state
    with an empty promise set.
    """
    if not ts.prom:
        return True
    graph = _SequentialGraph(arch, tid, fuel)
    root = graph.build(stmt, ts, memory)
    return root in graph.can_reach_fulfilled()


def find_and_certify(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int = DEFAULT_FUEL,
) -> CertificationResult:
    """Enumerate the certified promise steps of a thread (§B).

    The algorithm:

    1. enumerate the thread's sequential executions under the current
       memory (bounded by ``fuel``);
    2. keep only execution prefixes from which a promise-free state
       remains reachable;
    3. every normal write performed on such a prefix whose pre-view and
       coherence view (at its location, before the write) are at most the
       current maximal timestamp is a legal promise.
    """
    return _certify(stmt, ts, memory, arch, tid, fuel, want_can_complete=False)


def _certify(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int,
    *,
    want_can_complete: bool,
) -> CertificationResult:
    """Shared body of :func:`find_and_certify` / :func:`certify_thread`.

    ``want_can_complete`` additionally derives the fixed-memory
    completion answer from the same graph; it is opt-in so the seed-cost
    path (the ``cert_memo=False`` ablation) does not pay for it.
    """
    fast = _certify_fastpath(stmt, ts)
    if fast is not None:
        return fast
    graph = _SequentialGraph(arch, tid, fuel)
    root = graph.build(stmt, ts, memory)
    good = graph.can_reach_fulfilled()
    return CertificationResult(
        certified=root in good,
        promises=_harvest_promises(graph, good, memory.last_timestamp, tid),
        complete=graph.complete,
        visited=graph.n_nodes,
        can_complete=(
            root in graph.can_reach_finished_locally() if want_can_complete else None
        ),
    )


def _harvest_promises(
    graph: _SequentialGraphBase, good: set[int], max_ts: int, tid: TId
) -> frozenset[Msg]:
    """Step 3 of §B: writes on certified prefixes whose views fit memory."""
    promises: set[Msg] = set()
    for src, succs in enumerate(graph.edges):
        if src not in good:
            continue
        for dst, step in succs or ():
            if step is None or dst not in good:
                continue
            if step.pre_view is None or step.coh_before is None:
                continue
            if step.pre_view <= max_ts and step.coh_before <= max_ts:
                promises.add(Msg(step.loc, step.value, tid))
    return frozenset(promises)


def certify_thread(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int = DEFAULT_FUEL,
) -> CertificationResult:
    """Answer every certification question from ONE sequential-graph build.

    The exhaustive explorer needs three answers per thread configuration:
    is it certified, which promises may it make next, and can it finish
    with memory fixed.  The seed implementation built the bounded
    sequential graph twice per configuration (:func:`find_and_certify`
    then :func:`can_complete_without_promising`); all three answers are
    derivable from the same graph, so this entry point builds it once and
    fills :attr:`CertificationResult.can_complete` alongside the §B
    promise harvest.

    On fuel truncation ``can_complete`` may be a stricter
    under-approximation than the dedicated search (the shared graph also
    spends fuel on write successors); both report ``complete=False`` in
    that case, which the explorer already surfaces as truncation.
    """
    return _certify(stmt, ts, memory, arch, tid, fuel, want_can_complete=True)


def _certify_fastpath(stmt: Stmt, ts: TState) -> Optional[CertificationResult]:
    """Terminated promise-free threads need no graph at all."""
    if not ts.prom and is_terminated(stmt):
        return _FASTPATH_RESULT
    return None


#: The (constant) fastpath answer, shared between both certify entries.
_FASTPATH_RESULT = CertificationResult(
    certified=True,
    promises=frozenset(),
    complete=True,
    visited=1,
    can_complete=True,
)


def certify_compiled(
    compiled,
    sid: int,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int,
    mem_ids,
    mem_id=None,
    appends=None,
) -> CertificationResult:
    """:func:`certify_thread` over the compiled statement tables.

    ``compiled`` is a :class:`~repro.isa.compile.CompiledProgram`,
    ``sid`` the dense id of the thread's statement, and ``mem_ids`` an
    :class:`~repro.promising.intern.IdInterner` for memories (shared
    per exploration run by the packed backend).  ``mem_id`` is the
    already-interned id of ``memory`` when the caller knows it, and
    ``appends`` an optional shared append memo (see
    :class:`CompiledSequentialGraph`); both let the build run without
    hashing a single messages tuple.  Answers all three certification
    questions from one :class:`CompiledSequentialGraph` build, with the
    same results as the reference entry — only the node keys and step
    dispatch differ.
    """
    if not ts.prom and compiled.stmts[sid].terminated:
        return _FASTPATH_RESULT
    graph = CompiledSequentialGraph(compiled, arch, tid, fuel, mem_ids, appends)
    root = graph.build(sid, ts, memory, mem_id)
    good = graph.can_reach_fulfilled()
    return CertificationResult(
        certified=root in good,
        promises=_harvest_promises(graph, good, memory.last_timestamp, tid),
        complete=graph.complete,
        visited=graph.n_nodes,
        can_complete=root in graph.can_reach_finished_locally(),
    )


class CertificationCache:
    """Per-exploration memo for :func:`certify_thread`.

    ``find_and_certify`` dominates exploration profiles and is re-invoked
    with recurring arguments: the promise-first explorer asks both the
    "which promises" and the "can it finish" question of every thread at
    every frontier state, and the naive explorer certifies the same
    thread configuration across all interleavings that only move *other*
    threads.  The memo key is the full thread configuration — ``(tid,
    statement, thread-state key, memory key)`` — which is exactly the
    input the sequential graph depends on (``arch`` and ``fuel`` are
    fixed per cache, i.e. per exploration run).

    The cache is deliberately per-run, not module-global: a sweep over
    thousands of litmus jobs must not retain certification graphs across
    tests.
    """

    __slots__ = ("arch", "fuel", "_memo", "hits", "calls")

    def __init__(self, arch: Arch, fuel: int = DEFAULT_FUEL) -> None:
        self.arch = arch
        self.fuel = fuel
        self._memo: dict[tuple, CertificationResult] = {}
        self.hits = 0
        self.calls = 0

    def certify(self, stmt: Stmt, ts: TState, memory: Memory, tid: TId) -> CertificationResult:
        key = (tid, stmt, ts.cache_key(), memory.cache_key())
        return self.certify_keyed(key, stmt, ts, memory, tid)

    def certify_keyed(
        self, key, stmt: Stmt, ts: TState, memory: Memory, tid: TId
    ) -> CertificationResult:
        """Memoised certification under a caller-supplied key.

        The key must identify the configuration at least as finely as the
        default ``(tid, stmt, ts.cache_key(), memory.cache_key())``.  The
        packed execution backend supplies its small integer-tuple keys
        here, so the memo probe never re-hashes a deep state snapshot.
        """
        self.calls += 1
        result = self._memo.get(key)
        if result is not None:
            self.hits += 1
            return result
        result = certify_thread(stmt, ts, memory, self.arch, tid, self.fuel)
        self._memo[key] = result
        return result

    def __len__(self) -> int:
        return len(self._memo)


def can_complete_without_promising(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    fuel: int = DEFAULT_FUEL,
) -> bool:
    """Can the thread terminate, fulfilling all promises, with memory fixed?

    Used by the exhaustive explorer to decide when promise-mode may end:
    every remaining step must be a non-promise step (no new messages), the
    statement must reduce to ``skip`` and the promise set must drain.
    """
    seen: set[tuple] = set()
    stack = [(stmt, ts)]
    visited = 0
    while stack:
        cur_stmt, cur_ts = stack.pop()
        key = (cur_stmt, cur_ts.cache_key())
        if key in seen:
            continue
        seen.add(key)
        visited += 1
        if visited > fuel:
            return False
        if is_terminated(cur_stmt) and not cur_ts.prom:
            return True
        for step in non_promise_steps(cur_stmt, cur_ts, memory, arch, tid):
            stack.append((step.stmt, step.tstate))
    return False


__all__ = [
    "DEFAULT_FUEL",
    "CertificationCache",
    "CertificationResult",
    "CompiledSequentialGraph",
    "certified",
    "certify_compiled",
    "certify_thread",
    "find_and_certify",
    "can_complete_without_promising",
]
