"""Exploration of Promising-ARM/RISC-V executions (§7).

Two explorers are provided, both driven by the unified search kernel
(:mod:`repro.explore`) and its pluggable strategies (``dfs``/``bfs``
exhaustive, ``sample`` seeded random walks):

* :func:`explore` — the paper's optimised strategy.  By Theorem 7.1 every
  trace can be reordered so that all promises come first; the explorer
  therefore first interleaves only (certified) promise transitions,
  enumerating all possible *final memories*, and then lets each thread run
  to completion independently under each fixed memory, without
  interleaving reads.  The §7 shared-location optimisation (treating
  locations private to one thread as registers) is applied when enabled.

* :func:`explore_naive` — the unoptimised reference: a plain search over
  all certified machine transitions (reads, writes and promises fully
  interleaved).  It produces the same outcome set and exists for
  cross-validation and for the ablation benchmark quantifying the value of
  the promise-first strategy.

Under the ``sample`` strategy the kernel walks the same transition
relation instead of enumerating it, so the outcome set is a sound
under-approximation; the per-thread run-to-completion enumeration stays
exhaustive regardless of the outer strategy (it must not invent partial
register files).

Both explorers run on a pluggable *execution backend*
(:mod:`repro.backend`, selected by ``config.backend``): the drive logic
below never touches ``TState``/``Memory`` directly — it certifies,
enumerates and steps through the backend, which owns the state
representation (reference object graphs, or compiled integer tuples)
and the intern/cert/phase accounting that goes with it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..explore import BaseSearchConfig, SearchKernel, SearchStats, strategy_for
from ..lang.program import Loc, Program
from ..lang.transform import localise_private_locations, unroll_program
from ..lang import has_loops
from ..outcomes import OutcomeSet
from .certification import DEFAULT_FUEL


@dataclass
class ExploreConfig(BaseSearchConfig):
    """Configuration of the promising explorers.

    The search-kernel fields (``arch``, ``loop_bound``, ``max_states``,
    ``deadline_seconds``, ``dedup``, ``strategy``, ``samples``,
    ``sample_depth``, ``seed``) come from :class:`BaseSearchConfig`; only
    the promising-specific knobs live here.
    """

    #: Cap on promise-mode machine states (safety valve; exploration is
    #: reported as truncated when hit).
    max_states: int = 500_000
    #: Bound on the states visited by a single certification run.
    cert_fuel: int = DEFAULT_FUEL
    #: Apply the shared-location optimisation of §7.
    localise: bool = True
    #: Locations that must be kept in memory even if thread-private
    #: (e.g. locations observed by a litmus final-state condition).
    shared_locations: tuple[Loc, ...] = ()
    #: Memoise certification (one sequential-graph build answers the
    #: certified / promises / can-complete questions per configuration).
    #: Disabling falls back to the seed's separate searches.
    cert_memo: bool = True


@dataclass
class ExplorationStats(SearchStats):
    """Diagnostics collected during exploration.

    Extends the kernel's shared :class:`~repro.explore.SearchStats`
    (truncation, deadline, strategy and sampling counters) with the
    promise-first specifics.
    """

    promise_states: int = 0
    promise_transitions: int = 0
    final_memories: int = 0
    thread_enumeration_states: int = 0
    deadlocked_states: int = 0
    localised_locations: tuple[Loc, ...] = ()
    #: Seen-set hits inside the per-thread run-to-completion enumeration
    #: (machine-level hits are the inherited ``dedup_hits``).
    thread_dedup_hits: int = 0
    #: Whole-enumeration reuse: a (thread, memory) completion set was
    #: recalled instead of recomputed.
    completion_memo_hits: int = 0
    #: Certification invocations and how many were answered by the memo.
    cert_calls: int = 0
    cert_memo_hits: int = 0
    #: Hash-consing statistics of the run's intern pool.
    interned_keys: int = 0
    intern_hits: int = 0
    #: Packed-backend step-table reuse: successor lists replayed from the
    #: integer memo instead of re-enumerated (0 on the object backend,
    #: which has no step tables).
    step_memo_hits: int = 0
    step_memo_misses: int = 0

    def describe(self) -> str:
        return (
            f"promise states: {self.promise_states}, "
            f"final memories: {self.final_memories}, "
            f"per-thread states: {self.thread_enumeration_states}, "
            f"deadlocks: {self.deadlocked_states}, "
            f"dedup hits: {self.dedup_hits + self.thread_dedup_hits}, "
            f"cert memo hits: {self.cert_memo_hits}/{self.cert_calls}, "
            f"truncated: {self.truncated}, "
            f"time: {self.elapsed_seconds:.3f}s"
        ) + self.sampling_suffix()


@dataclass
class ExplorationResult:
    """Outcome set plus statistics."""

    outcomes: OutcomeSet
    stats: ExplorationStats
    program: Program

    def describe(self) -> str:
        header = f"{len(self.outcomes)} outcomes ({self.stats.describe()})"
        return header + "\n" + self.outcomes.describe(self.program.loc_names)


def _prepare(program: Program, config: ExploreConfig) -> tuple[Program, tuple[Loc, ...]]:
    """Unroll loops and apply the shared-location optimisation."""
    prepared = program
    if any(has_loops(t) for t in program.threads):
        prepared = unroll_program(prepared, config.loop_bound)
    localised: tuple[Loc, ...] = ()
    if config.localise:
        prepared, private = localise_private_locations(
            prepared, extra_shared=config.shared_locations
        )
        localised = tuple(sorted(private))
    return prepared, localised


# ---------------------------------------------------------------------------
# Promise-first exploration
# ---------------------------------------------------------------------------


def explore(program: Program, config: Optional[ExploreConfig] = None) -> ExplorationResult:
    """Enumerate the outcomes of ``program`` (promise-first).

    Exhaustive under the ``dfs``/``bfs`` strategies; a sound sample of
    the outcome set under ``sample``.
    """
    config = config or ExploreConfig()
    start = time.perf_counter()
    stats = ExplorationStats()
    prepared, localised = _prepare(program, config)
    stats.localised_locations = localised

    # Lazy import: repro.backend imports this package's siblings, so the
    # module edge must point backend -> promising only.
    from ..backend import make_promising_backend

    backend = make_promising_backend(config.backend, prepared, config, stats)
    outcomes = OutcomeSet()

    def expand(packed) -> list:
        per_thread, can_finish = backend.certify_all(packed)

        # Can every thread finish under the current memory without any new
        # promise?  If so the current memory is a candidate final memory:
        # the backend enumerates per-thread completions and crosses them
        # into the outcome set in its own representation (decoded register
        # dicts on ``object``, interned id tuples on ``packed``).
        if all(can_finish):
            stats.final_memories += 1
            backend.accumulate_outcomes(outcomes, packed)
        elif not any(cert.promises for cert in per_thread):
            # No thread can finish and nobody can promise: a stuck state
            # (possible for ARM store exclusives, §4.3).
            stats.deadlocked_states += 1

        return backend.promise_successors(packed, per_thread)

    kernel = SearchKernel.for_backend(
        backend,
        expand,
        strategy=strategy_for(config),
        max_states=config.max_states,
        deadline_seconds=config.deadline_seconds,
        dedup=config.dedup,
    )
    kernel.run([backend.initial()])
    stats.promise_states += kernel.stats.states
    stats.promise_transitions += kernel.stats.transitions
    kernel.finish(stats)

    backend.finalise(stats, model="promising")
    stats.elapsed_seconds = time.perf_counter() - start
    return ExplorationResult(outcomes, stats, program)


# ---------------------------------------------------------------------------
# Naive (fully interleaved) exploration
# ---------------------------------------------------------------------------


def explore_naive(program: Program, config: Optional[ExploreConfig] = None) -> ExplorationResult:
    """Enumerate outcomes by interleaving *all* certified machine steps.

    Exponentially more states than :func:`explore`; used to validate the
    promise-first strategy (both must return the same outcome set) and as
    the baseline of the ablation benchmark.  Under ``sample`` this is the
    litmus-style statistical runner: each walk is one random interleaving
    of certified machine steps, run to a final (or stuck) state.
    """
    config = config or ExploreConfig()
    start = time.perf_counter()
    stats = ExplorationStats()
    prepared, localised = _prepare(program, config)
    stats.localised_locations = localised

    from ..backend import make_promising_backend

    backend = make_promising_backend(config.backend, prepared, config, stats)
    outcomes = OutcomeSet()

    def expand(packed) -> list:
        if backend.is_final(packed):
            outcomes.add(backend.outcome(packed))
            return []
        successors = backend.successors(packed)
        if not successors and backend.has_outstanding_promises(packed):
            stats.deadlocked_states += 1
        return successors

    kernel = SearchKernel.for_backend(
        backend,
        expand,
        strategy=strategy_for(config),
        max_states=config.max_states,
        deadline_seconds=config.deadline_seconds,
        dedup=config.dedup,
    )
    kernel.run([backend.initial()])
    stats.promise_states += kernel.stats.states
    stats.promise_transitions += kernel.stats.transitions
    kernel.finish(stats)

    backend.finalise(stats, model="promising_naive")
    stats.elapsed_seconds = time.perf_counter() - start
    return ExplorationResult(outcomes, stats, program)


__all__ = [
    "ExploreConfig",
    "ExplorationStats",
    "ExplorationResult",
    "explore",
    "explore_naive",
]
