"""Exploration of Promising-ARM/RISC-V executions (§7).

Two explorers are provided, both driven by the unified search kernel
(:mod:`repro.explore`) and its pluggable strategies (``dfs``/``bfs``
exhaustive, ``sample`` seeded random walks):

* :func:`explore` — the paper's optimised strategy.  By Theorem 7.1 every
  trace can be reordered so that all promises come first; the explorer
  therefore first interleaves only (certified) promise transitions,
  enumerating all possible *final memories*, and then lets each thread run
  to completion independently under each fixed memory, without
  interleaving reads.  The §7 shared-location optimisation (treating
  locations private to one thread as registers) is applied when enabled.

* :func:`explore_naive` — the unoptimised reference: a plain search over
  all certified machine transitions (reads, writes and promises fully
  interleaved).  It produces the same outcome set and exists for
  cross-validation and for the ablation benchmark quantifying the value of
  the promise-first strategy.

Under the ``sample`` strategy the kernel walks the same transition
relation instead of enumerating it, so the outcome set is a sound
under-approximation; the per-thread run-to-completion enumeration stays
exhaustive regardless of the outer strategy (it must not invent partial
register files).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..explore import BaseSearchConfig, DepthFirst, SearchKernel, SearchStats, strategy_for
from ..obs import metrics
from ..obs.tracing import PhaseAccumulator
from ..lang.ast import Stmt
from ..lang.program import Loc, Program, TId
from ..lang.transform import localise_private_locations, unroll_program
from ..lang import has_loops
from ..lang.kinds import Arch
from ..outcomes import Outcome, OutcomeSet
from .certification import (
    DEFAULT_FUEL,
    CertificationCache,
    can_complete_without_promising,
    find_and_certify,
)
from .intern import InternPool
from .machine import MachineState, machine_transitions
from .state import Memory, TState
from .steps import is_terminated, non_promise_steps, promise_step

# Phase timings stay OUT of ExplorationStats on purpose: job stats must
# compare bit-identical between serial/parallel/cached runs, so anything
# wall-clock-shaped lives in the metrics registry instead.  Accumulation
# is two perf_counter reads per phase per state (see PhaseAccumulator);
# the labeled counter is touched once per run.
_EXPLORE_PHASE_SECONDS = metrics.counter(
    "explore_phase_seconds_total",
    "Wall time spent per explorer phase (certify/enumerate/intern).",
    labels=("model", "phase"),
)


@dataclass
class ExploreConfig(BaseSearchConfig):
    """Configuration of the promising explorers.

    The search-kernel fields (``arch``, ``loop_bound``, ``max_states``,
    ``deadline_seconds``, ``dedup``, ``strategy``, ``samples``,
    ``sample_depth``, ``seed``) come from :class:`BaseSearchConfig`; only
    the promising-specific knobs live here.
    """

    #: Cap on promise-mode machine states (safety valve; exploration is
    #: reported as truncated when hit).
    max_states: int = 500_000
    #: Bound on the states visited by a single certification run.
    cert_fuel: int = DEFAULT_FUEL
    #: Apply the shared-location optimisation of §7.
    localise: bool = True
    #: Locations that must be kept in memory even if thread-private
    #: (e.g. locations observed by a litmus final-state condition).
    shared_locations: tuple[Loc, ...] = ()
    #: Memoise certification (one sequential-graph build answers the
    #: certified / promises / can-complete questions per configuration).
    #: Disabling falls back to the seed's separate searches.
    cert_memo: bool = True


@dataclass
class ExplorationStats(SearchStats):
    """Diagnostics collected during exploration.

    Extends the kernel's shared :class:`~repro.explore.SearchStats`
    (truncation, deadline, strategy and sampling counters) with the
    promise-first specifics.
    """

    promise_states: int = 0
    promise_transitions: int = 0
    final_memories: int = 0
    thread_enumeration_states: int = 0
    deadlocked_states: int = 0
    localised_locations: tuple[Loc, ...] = ()
    #: Seen-set hits inside the per-thread run-to-completion enumeration
    #: (machine-level hits are the inherited ``dedup_hits``).
    thread_dedup_hits: int = 0
    #: Whole-enumeration reuse: a (thread, memory) completion set was
    #: recalled instead of recomputed.
    completion_memo_hits: int = 0
    #: Certification invocations and how many were answered by the memo.
    cert_calls: int = 0
    cert_memo_hits: int = 0
    #: Hash-consing statistics of the run's intern pool.
    interned_keys: int = 0
    intern_hits: int = 0

    def describe(self) -> str:
        return (
            f"promise states: {self.promise_states}, "
            f"final memories: {self.final_memories}, "
            f"per-thread states: {self.thread_enumeration_states}, "
            f"deadlocks: {self.deadlocked_states}, "
            f"dedup hits: {self.dedup_hits + self.thread_dedup_hits}, "
            f"cert memo hits: {self.cert_memo_hits}/{self.cert_calls}, "
            f"truncated: {self.truncated}, "
            f"time: {self.elapsed_seconds:.3f}s"
        ) + self.sampling_suffix()


@dataclass
class ExplorationResult:
    """Outcome set plus statistics."""

    outcomes: OutcomeSet
    stats: ExplorationStats
    program: Program

    def describe(self) -> str:
        header = f"{len(self.outcomes)} outcomes ({self.stats.describe()})"
        return header + "\n" + self.outcomes.describe(self.program.loc_names)


def _prepare(program: Program, config: ExploreConfig) -> tuple[Program, tuple[Loc, ...]]:
    """Unroll loops and apply the shared-location optimisation."""
    prepared = program
    if any(has_loops(t) for t in program.threads):
        prepared = unroll_program(prepared, config.loop_bound)
    localised: tuple[Loc, ...] = ()
    if config.localise:
        prepared, private = localise_private_locations(
            prepared, extra_shared=config.shared_locations
        )
        localised = tuple(sorted(private))
    return prepared, localised


# ---------------------------------------------------------------------------
# Promise-first exploration
# ---------------------------------------------------------------------------


def _enumerate_thread_completions(
    stmt: Stmt,
    ts: TState,
    memory: Memory,
    arch: Arch,
    tid: TId,
    stats: ExplorationStats,
    max_states: int,
    pool: Optional[InternPool],
) -> set[tuple]:
    """All final register states of one thread under a fixed memory.

    Non-promise phase of §7: memory is fixed, so the thread's behaviour is
    independent of the other threads; we enumerate its executions and
    collect the register file of every run that terminates with all
    promises fulfilled.

    Always exhaustive (plain DFS through the kernel) even when the outer
    promise search is sampling: a sampled run must under-approximate the
    *reachable memories*, never fabricate partial register files.  With
    ``pool`` (dedup enabled) symmetric instruction interleavings that
    reconverge on the same thread state are enumerated once, through
    hash-consed ``(statement, thread-state)`` keys; without it the search
    degenerates to the full execution tree (ablation mode).
    """
    results: set[tuple] = set()

    def expand(node: tuple[Stmt, TState]) -> list[tuple[Stmt, TState]]:
        cur_stmt, cur_ts = node
        if is_terminated(cur_stmt) and not cur_ts.prom:
            results.add(tuple(sorted(cur_ts.register_values().items())))
            return []
        return [
            (step.stmt, step.tstate)
            for step in non_promise_steps(cur_stmt, cur_ts, memory, arch, tid)
        ]

    key_fn = None
    if pool is not None:
        key_fn = lambda node: (node[0], pool.tstates.intern(node[1].cache_key()))  # noqa: E731
    kernel = SearchKernel(
        expand, strategy=DepthFirst(), max_states=max_states, key_fn=key_fn
    )
    kernel.run([(stmt, ts)])
    stats.thread_enumeration_states += kernel.stats.states
    stats.thread_dedup_hits += kernel.stats.dedup_hits
    if kernel.stats.truncated:
        stats.truncated = True
    return results


def explore(program: Program, config: Optional[ExploreConfig] = None) -> ExplorationResult:
    """Enumerate the outcomes of ``program`` (promise-first).

    Exhaustive under the ``dfs``/``bfs`` strategies; a sound sample of
    the outcome set under ``sample``.
    """
    config = config or ExploreConfig()
    start = time.perf_counter()
    stats = ExplorationStats()
    prepared, localised = _prepare(program, config)
    stats.localised_locations = localised

    arch = config.arch
    initial = MachineState.initial(prepared, arch)
    outcomes = OutcomeSet()

    pool = InternPool() if config.dedup else None
    cert_cache = (
        CertificationCache(arch, config.cert_fuel) if config.cert_memo else None
    )

    # Memoise per-thread completion enumeration across final-memory states:
    # different promise interleavings frequently reconverge.
    completion_cache: dict[tuple, set[tuple]] = {}
    phases = PhaseAccumulator()

    def expand(state: MachineState) -> list[MachineState]:
        per_thread = []
        can_finish = []
        phase_start = time.perf_counter()
        for tid, thread in enumerate(state.threads):
            if cert_cache is not None:
                # One sequential-graph build (memoised) answers both the
                # promise enumeration and the can-finish question.
                cert = cert_cache.certify(thread.stmt, thread.tstate, state.memory, tid)
                can_finish.append(cert.can_complete)
            else:
                stats.cert_calls += 2
                cert = find_and_certify(
                    thread.stmt, thread.tstate, state.memory, arch, tid, config.cert_fuel
                )
                can_finish.append(
                    can_complete_without_promising(
                        thread.stmt, thread.tstate, state.memory, arch, tid, config.cert_fuel
                    )
                )
            if not cert.complete:
                stats.truncated = True
            per_thread.append(cert)
        phases.add("certify", time.perf_counter() - phase_start)

        # Can every thread finish under the current memory without any new
        # promise?  If so the current memory is a candidate final memory.
        if all(can_finish):
            stats.final_memories += 1
            phase_start = time.perf_counter()
            thread_results: list[set[tuple]] = []
            feasible = True
            for tid, thread in enumerate(state.threads):
                if pool is not None:
                    cache_key = (tid, thread.key(), state.memory.cache_key())
                    if cache_key in completion_cache:
                        stats.completion_memo_hits += 1
                    else:
                        completion_cache[cache_key] = _enumerate_thread_completions(
                            thread.stmt,
                            thread.tstate,
                            state.memory,
                            arch,
                            tid,
                            stats,
                            config.max_states,
                            pool,
                        )
                    regs = completion_cache[cache_key]
                else:
                    regs = _enumerate_thread_completions(
                        thread.stmt,
                        thread.tstate,
                        state.memory,
                        arch,
                        tid,
                        stats,
                        config.max_states,
                        None,
                    )
                if not regs:
                    feasible = False
                    break
                thread_results.append(regs)
            phases.add("enumerate", time.perf_counter() - phase_start)
            if feasible:
                final_memory = state.memory.final_values()
                _accumulate_outcomes(outcomes, thread_results, final_memory)
        elif not any(cert.promises for cert in per_thread):
            # No thread can finish and nobody can promise: a stuck state
            # (possible for ARM store exclusives, §4.3).
            stats.deadlocked_states += 1

        successors: list[MachineState] = []
        for tid, cert in enumerate(per_thread):
            thread = state.threads[tid]
            for msg in cert.promises:
                step = promise_step(thread.stmt, thread.tstate, state.memory, msg)
                successors.append(state.replace_thread(tid, step))
        return successors

    kernel = SearchKernel(
        expand,
        strategy=strategy_for(config),
        max_states=config.max_states,
        deadline_seconds=config.deadline_seconds,
        key_fn=_timed_key_fn(pool, phases) if pool is not None else None,
    )
    kernel.run([initial])
    stats.promise_states += kernel.stats.states
    stats.promise_transitions += kernel.stats.transitions
    kernel.finish(stats)

    _finalise_stats(stats, pool, cert_cache)
    phases.flush(_EXPLORE_PHASE_SECONDS, model="promising")
    stats.elapsed_seconds = time.perf_counter() - start
    return ExplorationResult(outcomes, stats, program)


def _timed_key_fn(pool: InternPool, phases: PhaseAccumulator):
    """The hash-consing visited-set key, timed as the "intern" phase."""

    def key_fn(state: MachineState):
        t0 = time.perf_counter()
        key = state.cache_key(pool)
        phases.add("intern", time.perf_counter() - t0)
        return key

    return key_fn


def _finalise_stats(
    stats: ExplorationStats,
    pool: Optional[InternPool],
    cert_cache: Optional[CertificationCache],
) -> None:
    """Fold the run's intern-pool and cert-memo counters into the stats."""
    if pool is not None:
        stats.interned_keys = pool.unique
        stats.intern_hits = pool.hits
    if cert_cache is not None:
        stats.cert_calls += cert_cache.calls
        stats.cert_memo_hits += cert_cache.hits


def _accumulate_outcomes(
    outcomes: OutcomeSet,
    thread_results: list[set[tuple]],
    final_memory: dict[Loc, int],
) -> None:
    """Cross product of per-thread final register states → outcomes."""

    def recurse(tid: int, acc: list[dict]) -> None:
        if tid == len(thread_results):
            outcomes.add(Outcome.make(list(acc), final_memory))
            return
        for regs in thread_results[tid]:
            acc.append(dict(regs))
            recurse(tid + 1, acc)
            acc.pop()

    recurse(0, [])


# ---------------------------------------------------------------------------
# Naive (fully interleaved) exploration
# ---------------------------------------------------------------------------


def explore_naive(program: Program, config: Optional[ExploreConfig] = None) -> ExplorationResult:
    """Enumerate outcomes by interleaving *all* certified machine steps.

    Exponentially more states than :func:`explore`; used to validate the
    promise-first strategy (both must return the same outcome set) and as
    the baseline of the ablation benchmark.  Under ``sample`` this is the
    litmus-style statistical runner: each walk is one random interleaving
    of certified machine steps, run to a final (or stuck) state.
    """
    config = config or ExploreConfig()
    start = time.perf_counter()
    stats = ExplorationStats()
    prepared, localised = _prepare(program, config)
    stats.localised_locations = localised

    initial = MachineState.initial(prepared, config.arch)
    outcomes = OutcomeSet()
    pool = InternPool() if config.dedup else None
    cert_cache = (
        CertificationCache(config.arch, config.cert_fuel) if config.cert_memo else None
    )

    phases = PhaseAccumulator()

    def expand(state: MachineState) -> list[MachineState]:
        if state.is_final:
            outcomes.add(state.outcome())
            return []
        # Certification happens inside machine_transitions here, so the
        # naive explorer's step enumeration and certify time are one
        # phase by construction.
        phase_start = time.perf_counter()
        transitions = machine_transitions(state, config.cert_fuel, cert_cache=cert_cache)
        phases.add("enumerate", time.perf_counter() - phase_start)
        if not transitions and state.has_outstanding_promises:
            stats.deadlocked_states += 1
        return [transition.state for transition in transitions]

    kernel = SearchKernel(
        expand,
        strategy=strategy_for(config),
        max_states=config.max_states,
        deadline_seconds=config.deadline_seconds,
        key_fn=_timed_key_fn(pool, phases) if pool is not None else None,
    )
    kernel.run([initial])
    stats.promise_states += kernel.stats.states
    stats.promise_transitions += kernel.stats.transitions
    kernel.finish(stats)

    _finalise_stats(stats, pool, cert_cache)
    phases.flush(_EXPLORE_PHASE_SECONDS, model="promising_naive")
    stats.elapsed_seconds = time.perf_counter() - start
    return ExplorationResult(outcomes, stats, program)


__all__ = [
    "ExploreConfig",
    "ExplorationStats",
    "ExplorationResult",
    "explore",
    "explore_naive",
]
