"""Interactive exploration: step through model-allowed executions (§7, §8).

The paper's tool (integrated in rmem) lets the user step through an
execution transition by transition to pin down the source of an unexpected
behaviour.  :class:`InteractiveSession` provides the same workflow as a
Python API / REPL object:

>>> session = InteractiveSession(program, Arch.ARM)
>>> session.show()                # current state and enabled transitions
>>> session.step(0)               # take transition number 0
>>> session.undo()                # go back one step
>>> session.run_trace([2, 0, 1])  # replay a trace

A *witness trace* produced by :func:`find_witness` can be replayed to
demonstrate how a particular (often buggy) outcome arises — this is the
"witnessing trace" workflow of the Michael–Scott queue case study in §8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..lang.kinds import Arch
from ..lang.program import Program
from ..lang.transform import unroll_program
from ..lang import has_loops
from ..outcomes import Outcome
from .certification import DEFAULT_FUEL
from .machine import MachineState, MachineTransition, machine_transitions


@dataclass
class TraceEntry:
    """One entry of an execution trace: the transition taken and its index."""

    index: int
    transition: MachineTransition

    def __repr__(self) -> str:
        return f"[{self.index}] {self.transition.description}"


class InteractiveSession:
    """Step through executions of the promising machine interactively."""

    def __init__(
        self,
        program: Program,
        arch: Arch = Arch.ARM,
        loop_bound: int = 2,
        cert_fuel: int = DEFAULT_FUEL,
    ) -> None:
        prepared = program
        if any(has_loops(t) for t in program.threads):
            prepared = unroll_program(program, loop_bound)
        self.program = prepared
        self.arch = arch
        self.cert_fuel = cert_fuel
        self._history: list[tuple[MachineState, TraceEntry]] = []
        self.state = MachineState.initial(prepared, arch)
        self._enabled: Optional[list[MachineTransition]] = None

    # -- inspection ---------------------------------------------------------
    @property
    def enabled(self) -> list[MachineTransition]:
        """Transitions enabled in the current state (computed lazily)."""
        if self._enabled is None:
            self._enabled = machine_transitions(self.state, self.cert_fuel)
        return self._enabled

    @property
    def finished(self) -> bool:
        return self.state.is_final

    @property
    def stuck(self) -> bool:
        """No transition enabled but the execution is not final (deadlock)."""
        return not self.enabled and not self.finished

    @property
    def trace(self) -> list[TraceEntry]:
        return [entry for _state, entry in self._history]

    def show(self) -> str:
        """Render the current state and the menu of enabled transitions."""
        lines = [self.state.describe(), ""]
        if self.finished:
            lines.append("execution finished")
            lines.append(f"outcome: {self.outcome().describe(self.program.loc_names)}")
        elif self.stuck:
            lines.append("execution is stuck (unfulfilled promises)")
        else:
            lines.append("enabled transitions:")
            for i, transition in enumerate(self.enabled):
                lines.append(f"  [{i}] {transition.description}")
        return "\n".join(lines)

    def outcome(self) -> Outcome:
        if not self.finished:
            raise RuntimeError("execution has not finished")
        return self.state.outcome()

    # -- stepping -----------------------------------------------------------
    def step(self, index: int) -> MachineTransition:
        """Take the enabled transition number ``index``."""
        transitions = self.enabled
        if not 0 <= index < len(transitions):
            raise IndexError(f"transition index {index} out of range (0..{len(transitions) - 1})")
        transition = transitions[index]
        self._history.append((self.state, TraceEntry(index, transition)))
        self.state = transition.state
        self._enabled = None
        return transition

    def undo(self) -> None:
        """Return to the state before the last :meth:`step`."""
        if not self._history:
            raise RuntimeError("nothing to undo")
        self.state, _entry = self._history.pop()
        self._enabled = None

    def reset(self) -> None:
        """Return to the initial state."""
        self._history.clear()
        self.state = MachineState.initial(self.program, self.arch)
        self._enabled = None

    def run_trace(self, indices: Sequence[int]) -> None:
        """Replay a trace given as a sequence of transition indices."""
        for index in indices:
            self.step(index)

    def run_until(self, predicate: Callable[[MachineState], bool], max_steps: int = 10_000) -> bool:
        """Greedily take the first enabled transition until ``predicate`` holds."""
        for _ in range(max_steps):
            if predicate(self.state):
                return True
            if not self.enabled:
                return False
            self.step(0)
        return False


def find_witness(
    program: Program,
    predicate: Callable[[Outcome], bool],
    arch: Arch = Arch.ARM,
    loop_bound: int = 2,
    cert_fuel: int = DEFAULT_FUEL,
    max_states: int = 200_000,
) -> Optional[list[TraceEntry]]:
    """Search for a machine trace whose final outcome satisfies ``predicate``.

    Returns the trace as a list of :class:`TraceEntry` (replayable through
    :meth:`InteractiveSession.run_trace` via their indices), or ``None`` if
    no such execution exists within the search bounds.
    """
    prepared = program
    if any(has_loops(t) for t in program.threads):
        prepared = unroll_program(program, loop_bound)
    initial = MachineState.initial(prepared, arch)
    visited = {initial.key()}
    stack: list[tuple[MachineState, list[TraceEntry]]] = [(initial, [])]
    states = 0
    while stack:
        state, trace = stack.pop()
        states += 1
        if states > max_states:
            return None
        if state.is_final and predicate(state.outcome()):
            return trace
        for index, transition in enumerate(machine_transitions(state, cert_fuel)):
            key = transition.state.key()
            if key in visited:
                continue
            visited.add(key)
            stack.append((transition.state, trace + [TraceEntry(index, transition)]))
    return None


__all__ = ["InteractiveSession", "TraceEntry", "find_witness"]
