"""Hash-consing (interning) tables for explorer state keys.

The explorers dedup machine states, thread configurations, and
certification arguments through hashable *canonical keys*
(:meth:`TState.cache_key`, :meth:`Memory.cache_key`,
:meth:`MachineState.cache_key`).  Structurally equal keys are produced
over and over along different interleavings; interning collapses them to
one shared representative so

* the visited/memo tables hold one tuple per distinct state instead of
  one per visit (memory), and
* repeated lookups hash an already-seen object (the table's own key),
  keeping dict probes cheap on the hot exploration paths.

A pool is created per exploration run (not module-global) so a long
sweep over thousands of litmus jobs never accumulates keys across
tests; its counters feed the ``intern_hits`` / ``interned_keys`` fields
of :class:`~repro.promising.exhaustive.ExplorationStats`.
"""

from __future__ import annotations

from typing import Hashable, TypeVar

K = TypeVar("K", bound=Hashable)


class Interner:
    """One hash-consing table: maps every key to its first-seen equal."""

    __slots__ = ("_table", "hits")

    def __init__(self) -> None:
        self._table: dict = {}
        self.hits: int = 0

    def intern(self, key: K) -> K:
        """Return the canonical representative equal to ``key``.

        The first occurrence becomes the representative; later equal
        keys are counted as hits and dropped in favour of it.
        """
        canonical = self._table.setdefault(key, key)
        if canonical is not key:
            self.hits += 1
        return canonical

    @property
    def unique(self) -> int:
        """Number of distinct keys seen."""
        return len(self._table)

    def __len__(self) -> int:
        return len(self._table)


class IdInterner:
    """Maps hashable keys to *dense integer ids* with a side table of
    canonical decoded objects.

    The packed execution backend's degenerate interner: where
    :class:`Interner` canonicalises deep tuples, an :class:`IdInterner`
    replaces them with small ints, so downstream visited/memo tables key
    on tuples of ids whose ``cache_key()`` is the identity function.
    ``objects[id]`` holds the object supplied at first intern — the
    canonical decoded form the backend hands back to the reference step
    functions.
    """

    __slots__ = ("_ids", "objects", "hits")

    def __init__(self) -> None:
        self._ids: dict = {}
        self.objects: list = []
        self.hits: int = 0

    def intern(self, key: Hashable, obj) -> int:
        """Return the dense id of ``key``, registering ``obj`` if new."""
        nid = self._ids.get(key)
        if nid is not None:
            self.hits += 1
            return nid
        nid = len(self.objects)
        self._ids[key] = nid
        self.objects.append(obj)
        return nid

    @property
    def unique(self) -> int:
        """Number of distinct keys seen."""
        return len(self.objects)

    def __len__(self) -> int:
        return len(self.objects)


class InternPool:
    """The interners one exploration run shares across its tables.

    Thread-state keys, memory keys, and whole-machine keys are interned
    separately (they live in different tables and have different reuse
    profiles).
    """

    __slots__ = ("tstates", "memories", "machines")

    def __init__(self) -> None:
        self.tstates = Interner()
        self.memories = Interner()
        self.machines = Interner()

    @property
    def hits(self) -> int:
        return self.tstates.hits + self.memories.hits + self.machines.hits

    @property
    def unique(self) -> int:
        return self.tstates.unique + self.memories.unique + self.machines.unique


__all__ = ["IdInterner", "Interner", "InternPool"]
