"""Machine states and certified machine steps (Fig. 5, bottom).

The machine state is a thread pool plus memory.  A machine step picks a
thread, lets it take a thread step (an execute step or a promise), and
requires the resulting thread configuration to be certified (rule r24).

This module is the reference, un-optimised semantics.  The interactive
debugger (:mod:`repro.promising.interactive`) and the naive exhaustive
explorer are built directly on it; the fast explorer
(:mod:`repro.promising.exhaustive`) uses the promise-first strategy
instead but produces the same outcomes (Theorem 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import Stmt
from ..lang.kinds import Arch
from ..lang.program import Program, TId
from ..outcomes import Outcome
from .certification import (
    DEFAULT_FUEL,
    CertificationCache,
    certified,
    find_and_certify,
)
from .intern import InternPool
from .state import Memory, TState, initial_tstate
from .steps import (
    ThreadStep,
    is_terminated,
    normal_write_steps,
    normalise,
    promise_step,
    thread_local_steps,
)


@dataclass(frozen=True)
class Thread:
    """A thread of the machine: remaining statement plus thread state."""

    stmt: Stmt
    tstate: TState

    def key(self) -> tuple:
        return (self.stmt, self.tstate.cache_key())

    @property
    def terminated(self) -> bool:
        return is_terminated(self.stmt)

    @property
    def has_promises(self) -> bool:
        return self.tstate.has_promises


class MachineState:
    """A state ⟨T⃗, M⟩ of the whole machine."""

    __slots__ = ("threads", "memory", "arch", "_key")

    def __init__(self, threads: tuple[Thread, ...], memory: Memory, arch: Arch) -> None:
        self.threads = threads
        self.memory = memory
        self.arch = arch
        self._key: Optional[tuple] = None

    @classmethod
    def initial(cls, program: Program, arch: Arch) -> "MachineState":
        threads = tuple(
            Thread(normalise(stmt), initial_tstate()) for stmt in program.threads
        )
        return cls(threads, Memory(program.initial), arch)

    # -- queries ----------------------------------------------------------
    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def thread(self, tid: TId) -> Thread:
        return self.threads[tid]

    @property
    def is_final(self) -> bool:
        """All threads terminated with no outstanding promises."""
        return all(t.terminated and not t.has_promises for t in self.threads)

    @property
    def has_outstanding_promises(self) -> bool:
        return any(t.has_promises for t in self.threads)

    def outcome(self) -> Outcome:
        """The outcome of a final state."""
        return Outcome.make(
            [t.tstate.register_values() for t in self.threads],
            self.memory.final_values(),
        )

    def key(self) -> tuple:
        if self._key is None:
            self._key = (
                tuple(t.key() for t in self.threads),
                self.memory.cache_key(),
            )
        return self._key

    def cache_key(self, pool: Optional[InternPool] = None) -> tuple:
        """Canonical hashable identity, optionally hash-consed.

        With a pool, the per-thread keys and the whole-state key are
        interned so equal states across different interleavings share one
        representative tuple (and the pool's counters record the reuse).
        """
        if pool is None:
            return self.key()
        if self._key is None:
            self._key = (
                tuple(pool.tstates.intern(t.key()) for t in self.threads),
                pool.memories.intern(self.memory.cache_key()),
            )
        return pool.machines.intern(self._key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MachineState) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    # -- stepping ---------------------------------------------------------
    def replace_thread(self, tid: TId, step: ThreadStep) -> "MachineState":
        threads = list(self.threads)
        threads[tid] = Thread(step.stmt, step.tstate)
        return MachineState(tuple(threads), step.memory, self.arch)

    def describe(self) -> str:
        lines = [f"memory: {self.memory!r}"]
        for tid, thread in enumerate(self.threads):
            status = "terminated" if thread.terminated else f"next: {thread.stmt!r}"
            lines.append(f"thread {tid}: {status}")
            lines.append("  " + thread.tstate.describe().replace("\n", "\n  "))
        return "\n".join(lines)


@dataclass(frozen=True)
class MachineTransition:
    """A certified machine step: which thread did what, and the new state."""

    tid: TId
    step: ThreadStep
    state: MachineState

    @property
    def description(self) -> str:
        return self.step.description

    def __repr__(self) -> str:
        return f"<T{self.tid} {self.step.kind}: {self.step.description}>"


def thread_candidate_steps(
    thread: Thread, memory: Memory, arch: Arch, tid: TId
) -> list[ThreadStep]:
    """The non-promise machine-step candidates of one thread.

    Thread-local steps plus normal writes, in the order the machine-step
    rule enumerates them; each still needs the certification filter.
    Shared by :func:`machine_transitions` and the execution backends
    (:mod:`repro.backend`) so both enumerate candidates identically.
    """
    return thread_local_steps(
        thread.stmt, thread.tstate, memory, arch, tid
    ) + normal_write_steps(thread.stmt, thread.tstate, memory, arch, tid)


def machine_transitions(
    state: MachineState,
    fuel: int = DEFAULT_FUEL,
    include_promises: bool = True,
    cert_cache: Optional[CertificationCache] = None,
) -> list[MachineTransition]:
    """All certified machine transitions from ``state`` (rule machine-step).

    Execute steps and normal writes are filtered by the certification
    check; promise steps come from :func:`find_and_certify` and are
    certified by construction (Theorem 6.4).

    With a :class:`CertificationCache`, every certification question goes
    through the shared memo — successor configurations checked here are
    typically re-certified when they are explored as states of their own,
    and thread configurations recur across interleavings that only move
    *other* threads, so the naive explorer hits the memo constantly.
    """
    transitions: list[MachineTransition] = []
    for tid, thread in enumerate(state.threads):
        for step in thread_candidate_steps(thread, state.memory, state.arch, tid):
            if cert_cache is not None:
                ok = cert_cache.certify(step.stmt, step.tstate, step.memory, tid).certified
            else:
                ok = certified(step.stmt, step.tstate, step.memory, state.arch, tid, fuel)
            if not ok:
                continue
            transitions.append(MachineTransition(tid, step, state.replace_thread(tid, step)))
        if include_promises:
            if cert_cache is not None:
                result = cert_cache.certify(thread.stmt, thread.tstate, state.memory, tid)
            else:
                result = find_and_certify(
                    thread.stmt, thread.tstate, state.memory, state.arch, tid, fuel
                )
            for msg in sorted(result.promises, key=lambda m: (m.loc, m.val)):
                step = promise_step(thread.stmt, thread.tstate, state.memory, msg)
                transitions.append(MachineTransition(tid, step, state.replace_thread(tid, step)))
    return transitions


def run_deterministic(
    state: MachineState, choose, max_steps: int = 10_000, fuel: int = DEFAULT_FUEL
) -> MachineState:
    """Run the machine, using ``choose(transitions)`` to pick each step.

    A small utility for tests and examples: ``choose`` may be
    ``lambda ts: ts[0]`` for a deterministic schedule or a random pick for
    simulation runs.  Stops at a final state, when no transition is
    enabled, or after ``max_steps``.
    """
    for _ in range(max_steps):
        if state.is_final:
            return state
        transitions = machine_transitions(state, fuel)
        if not transitions:
            return state
        chosen = choose(transitions)
        state = chosen.state
    return state


__all__ = [
    "Thread",
    "MachineState",
    "MachineTransition",
    "machine_transitions",
    "run_deterministic",
    "thread_candidate_steps",
]
