"""State of the Promising-ARM/RISC-V model (Fig. 2 / Fig. 4 of the paper).

* timestamps and views are natural numbers (0 = the initial writes),
* memory is a list of write messages, indexed from 1,
* a thread state carries the promise set, the view-annotated register
  file, the per-location coherence views, the six ordering views
  (``vrOld, vwOld, vrNew, vwNew, vCAP, vRel``), the forwarding bank and
  the exclusives bank.

Everything here is immutable (or copy-on-write via :meth:`TState.copy`) so
states can be hashed and deduplicated by the explorers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, NamedTuple, Optional, Sequence

from ..lang.expr import BinOp, Const, Expr, OPERATORS, RegE, Reg, Value
from ..lang.program import Loc, TId

#: Timestamps and views.  Timestamp 0 denotes the initial writes.
Timestamp = int
View = int


def vmax(*views: View) -> View:
    """Join (⊔) of views: the maximum timestamp."""
    return max(views) if views else 0


@dataclass(frozen=True, slots=True)
class Msg:
    """A write message ⟨loc := val⟩_tid in memory."""

    loc: Loc
    val: Value
    tid: TId

    def __repr__(self) -> str:
        return f"<[{self.loc}]:={self.val}>@T{self.tid}"


class Memory:
    """The global memory: an immutable list of write messages.

    The paper treats memory as initially empty, holding value 0 for every
    location; litmus tests may override initial values, so the memory also
    carries an ``initial`` mapping consulted when reading at timestamp 0.
    """

    __slots__ = ("messages", "initial", "_hash")

    def __init__(
        self,
        initial: Optional[Mapping[Loc, Value]] = None,
        messages: Sequence[Msg] = (),
    ) -> None:
        self.messages: tuple[Msg, ...] = tuple(messages)
        self.initial: dict[Loc, Value] = dict(initial or {})
        self._hash: Optional[int] = None

    # -- construction -----------------------------------------------------
    def append(self, msg: Msg) -> tuple["Memory", Timestamp]:
        """Append ``msg``; return the new memory and the message's timestamp."""
        new = Memory.__new__(Memory)
        new.messages = self.messages + (msg,)
        new.initial = self.initial
        new._hash = None
        return new, len(new.messages)

    # -- queries ----------------------------------------------------------
    @property
    def last_timestamp(self) -> Timestamp:
        """The largest timestamp present (0 if memory is empty)."""
        return len(self.messages)

    def msg(self, t: Timestamp) -> Msg:
        """The message at timestamp ``t`` (1-based)."""
        if not 1 <= t <= len(self.messages):
            raise IndexError(f"no message at timestamp {t}")
        return self.messages[t - 1]

    def initial_value(self, loc: Loc) -> Value:
        return self.initial.get(loc, 0)

    def read(self, loc: Loc, t: Timestamp) -> Optional[Value]:
        """``read(M, l, t)`` of the paper: value read at timestamp ``t``.

        Timestamp 0 reads the initial value; other timestamps return the
        message value if the message is a write to ``loc`` and ``None``
        otherwise.
        """
        if t == 0:
            return self.initial_value(loc)
        msg = self.msg(t)
        return msg.val if msg.loc == loc else None

    def writes_to(self, loc: Loc) -> list[Timestamp]:
        """Timestamps (including 0) of all writes to ``loc``."""
        result = [0]
        result.extend(
            t for t, msg in enumerate(self.messages, start=1) if msg.loc == loc
        )
        return result

    def no_write_to_in(self, loc: Loc, lower: Timestamp, upper: Timestamp) -> bool:
        """True iff no message to ``loc`` exists with ``lower < t ≤ upper``."""
        lo = max(lower, 0)
        hi = min(upper, self.last_timestamp)
        return all(self.messages[t - 1].loc != loc for t in range(lo + 1, hi + 1))

    def final_values(self) -> dict[Loc, Value]:
        """Final value of every location ever mentioned (last write wins)."""
        values = dict(self.initial)
        for msg in self.messages:
            values[msg.loc] = msg.val
        return values

    def locations(self) -> frozenset[Loc]:
        return frozenset(self.initial) | frozenset(m.loc for m in self.messages)

    # -- identity ---------------------------------------------------------
    def key(self) -> tuple:
        """Hashable identity (the initial map is constant per program)."""
        return self.messages

    def cache_key(self) -> tuple:
        """Canonical hashable identity for dedup/memo tables.

        Identical to :meth:`key` (the message tuple; the initial map is a
        per-program constant so it never discriminates within one
        exploration), named separately so call sites that feed visited
        sets, certification memos, and interning tables are greppable.
        """
        return self.messages

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Memory)
            and self.messages == other.messages
            and self.initial == other.initial
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.messages, tuple(sorted(self.initial.items()))))
        return self._hash

    def __len__(self) -> int:
        return len(self.messages)

    def __repr__(self) -> str:
        body = "; ".join(f"{t}:{m!r}" for t, m in enumerate(self.messages, start=1))
        return f"[{body}]"


class Forward(NamedTuple):
    """Forwarding-bank entry: last own write to a location (r13–r16)."""

    time: Timestamp
    view: View
    xcl: bool


#: Initial forwarding-bank entry for every location.
FWD_INIT = Forward(0, 0, False)


class ExclBank(NamedTuple):
    """Exclusives-bank entry: the last load exclusive (ρ8–ρ10)."""

    time: Timestamp
    view: View


class TState:
    """Per-thread state (the record ``ts`` of Fig. 2/Fig. 4).

    Mutable in place only through :meth:`copy`-then-update, which is what
    the step functions do; :meth:`key` provides a canonical hashable
    snapshot for state-space deduplication.
    """

    __slots__ = (
        "prom",
        "regs",
        "coh",
        "vrOld",
        "vwOld",
        "vrNew",
        "vwNew",
        "vCAP",
        "vRel",
        "fwdb",
        "xclb",
        "_ckey",
    )

    def __init__(self) -> None:
        self.prom: frozenset[Timestamp] = frozenset()
        self.regs: dict[Reg, tuple[Value, View]] = {}
        self.coh: dict[Loc, View] = {}
        self.vrOld: View = 0
        self.vwOld: View = 0
        self.vrNew: View = 0
        self.vwNew: View = 0
        self.vCAP: View = 0
        self.vRel: View = 0
        self.fwdb: dict[Loc, Forward] = {}
        self.xclb: Optional[ExclBank] = None
        self._ckey: Optional[tuple] = None

    # -- lookups ----------------------------------------------------------
    def reg(self, name: Reg) -> tuple[Value, View]:
        """Register lookup; unwritten registers hold ``0`` with view 0."""
        return self.regs.get(name, (0, 0))

    def coh_view(self, loc: Loc) -> View:
        return self.coh.get(loc, 0)

    def forward(self, loc: Loc) -> Forward:
        return self.fwdb.get(loc, FWD_INIT)

    def eval(self, expr: Expr) -> tuple[Value, View]:
        """Expression interpretation ⟦e⟧ over value–view pairs (Fig. 5).

        Constants carry view 0; register reads return the stored pair; an
        operator merges the operand views (rule r9).
        """
        if isinstance(expr, Const):
            return expr.value, 0
        if isinstance(expr, RegE):
            return self.reg(expr.reg)
        if isinstance(expr, BinOp):
            v1, n1 = self.eval(expr.left)
            v2, n2 = self.eval(expr.right)
            return OPERATORS[expr.op](v1, v2), vmax(n1, n2)
        raise TypeError(f"not an expression: {expr!r}")

    def register_values(self) -> dict[Reg, Value]:
        """Plain value view of the register file (views stripped)."""
        return {name: val for name, (val, _view) in self.regs.items()}

    @property
    def has_promises(self) -> bool:
        return bool(self.prom)

    # -- copying / identity -------------------------------------------------
    def copy(self) -> "TState":
        new = TState.__new__(TState)
        new.prom = self.prom
        new.regs = dict(self.regs)
        new.coh = dict(self.coh)
        new.vrOld = self.vrOld
        new.vwOld = self.vwOld
        new.vrNew = self.vrNew
        new.vwNew = self.vwNew
        new.vCAP = self.vCAP
        new.vRel = self.vRel
        new.fwdb = dict(self.fwdb)
        new.xclb = self.xclb
        new._ckey = None
        return new

    def pack(self, registers: Sequence[Reg]) -> tuple:
        """Flat-tuple encoding over a fixed register universe.

        Bijective with the :meth:`key` equivalence classes as long as
        every register this state mentions appears in ``registers`` (the
        compiled program's sorted universe): the register file becomes a
        dense tuple with ``None`` for never-written registers, which
        preserves the absent-vs-``(0, 0)`` distinction :meth:`key` makes.
        Used by the packed execution backend, whose visited/memo tables
        key on these tuples instead of interned deep keys.
        """
        regs = self.regs
        return (
            tuple(sorted(self.prom)),
            tuple(regs.get(r) for r in registers),
            tuple(sorted(self.coh.items())),
            self.vrOld,
            self.vwOld,
            self.vrNew,
            self.vwNew,
            self.vCAP,
            self.vRel,
            tuple(sorted(self.fwdb.items())),
            tuple(self.xclb) if self.xclb is not None else None,
        )

    @classmethod
    def unpack(cls, packed: tuple, registers: Sequence[Reg]) -> "TState":
        """Inverse of :meth:`pack` (round-trip law: ``unpack(pack(ts)) == ts``)."""
        new = cls.__new__(cls)
        (
            prom,
            regs,
            coh,
            new.vrOld,
            new.vwOld,
            new.vrNew,
            new.vwNew,
            new.vCAP,
            new.vRel,
            fwdb,
            xclb,
        ) = packed
        new.prom = frozenset(prom)
        new.regs = {r: v for r, v in zip(registers, regs) if v is not None}
        new.coh = dict(coh)
        new.fwdb = {loc: Forward(*f) for loc, f in fwdb}
        new.xclb = ExclBank(*xclb) if xclb is not None else None
        new._ckey = None
        return new

    def key(self) -> tuple:
        """Canonical hashable snapshot of the thread state."""
        return (
            self.prom,
            tuple(sorted(self.regs.items())),
            tuple(sorted(self.coh.items())),
            self.vrOld,
            self.vwOld,
            self.vrNew,
            self.vwNew,
            self.vCAP,
            self.vRel,
            tuple(sorted(self.fwdb.items())),
            self.xclb,
        )

    def cache_key(self) -> tuple:
        """The :meth:`key` snapshot, computed once and cached.

        Intended for the explorers and certification, which follow the
        copy-then-update discipline (every mutation happens on a fresh
        :meth:`copy` before the state is first keyed); ``copy()`` resets
        the cache on the new instance, and the per-object cache removes
        the repeated dict sorts from the hot search paths.  Code that
        mutates a state in place after keying it (tests, ad-hoc setup)
        must use :meth:`key` / ``==`` instead, which always recompute.
        """
        ck = self._ckey
        if ck is None:
            ck = self._ckey = self.key()
        return ck

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TState) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        regs = {r: v for r, (v, _n) in sorted(self.regs.items())}
        return (
            f"TState(prom={sorted(self.prom)}, regs={regs}, "
            f"vrOld={self.vrOld}, vwOld={self.vwOld}, vrNew={self.vrNew}, "
            f"vwNew={self.vwNew}, vCAP={self.vCAP}, vRel={self.vRel})"
        )

    # -- debugging helpers --------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable dump used by the interactive tool."""
        lines = [
            f"promises : {sorted(self.prom)}",
            "registers: "
            + ", ".join(f"{r}={v}@{n}" for r, (v, n) in sorted(self.regs.items())),
            f"views    : vrOld={self.vrOld} vwOld={self.vwOld} "
            f"vrNew={self.vrNew} vwNew={self.vwNew} vCAP={self.vCAP} vRel={self.vRel}",
            "coherence: "
            + ", ".join(f"[{l}]={v}" for l, v in sorted(self.coh.items())),
        ]
        if self.xclb is not None:
            lines.append(f"xclb     : time={self.xclb.time} view={self.xclb.view}")
        return "\n".join(lines)


def initial_tstate() -> TState:
    """The initial thread state: everything zero / empty."""
    return TState()


__all__ = [
    "Timestamp",
    "View",
    "vmax",
    "Msg",
    "Memory",
    "Forward",
    "FWD_INIT",
    "ExclBank",
    "TState",
    "initial_tstate",
]
