"""Thread-local and thread steps of Promising-ARM/RISC-V (Fig. 5 / §A.3).

The functions here enumerate the successor configurations of a single
thread.  A *thread* is a pair of a statement (the remaining program, used
as program counter) and a :class:`~repro.promising.state.TState`.

Step kinds
----------

``read``
    A load reads a write message (or the initial value) respecting its
    pre-view and coherence view; may forward from the thread's own last
    write (rules r1–r16, ρ1–ρ4, ρ13).
``fulfil``
    A store fulfils one of the thread's outstanding promises (r17–r23,
    ρ1, ρ11–ρ14).
``write``
    A "normal write": a promise immediately followed by its fulfilment
    (rule r20).  This is the only way new messages are created during
    sequential (certification) execution.
``promise``
    A bare promise step appending an arbitrary message of the thread
    (used by the machine/explorer, which restricts it to certified
    promises).
``xcl-fail``
    A store exclusive that has not executed yet fails (ρ10).
``assign`` / ``branch`` / ``fence`` / ``isb``
    The remaining silent (memory-invariant) statements.

The paper's (skip), (seq) and (while) administrative rules are folded into
statement normalisation (:func:`normalise`), which is semantically neutral
and keeps the explored state space small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..lang.ast import (
    Assign,
    Fence,
    If,
    Isb,
    Load,
    Seq,
    Skip,
    Stmt,
    Store,
    While,
)
from ..lang.kinds import Arch, FenceSet, VFAIL, VSUCC
from ..lang.program import Loc, TId
from ..lang.expr import Value
from .state import ExclBank, Forward, Memory, Msg, Timestamp, TState, View, vmax


# ---------------------------------------------------------------------------
# Statement normalisation (administrative rules)
# ---------------------------------------------------------------------------


def normalise(stmt: Stmt) -> Stmt:
    """Remove leading ``skip`` and unfold a leading ``while`` into ``if``.

    This implements the (skip), (seq) and (while) rules of Fig. 5 as a
    deterministic, view-preserving simplification so the explorers never
    have to schedule administrative steps.
    """
    while True:
        if isinstance(stmt, Seq):
            first = normalise(stmt.first)
            if isinstance(first, Skip):
                stmt = stmt.second
                continue
            if first is stmt.first:
                return stmt
            return Seq(first, stmt.second)
        if isinstance(stmt, While):
            return If(stmt.cond, Seq(stmt.body, stmt), Skip())
        return stmt


def is_terminated(stmt: Stmt) -> bool:
    """True when the thread has no more statements to execute."""
    return isinstance(normalise(stmt), Skip)


# ---------------------------------------------------------------------------
# Step records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThreadStep:
    """One successor configuration of a thread.

    Attributes
    ----------
    kind:
        One of ``read``, ``fulfil``, ``write``, ``promise``, ``xcl-fail``,
        ``assign``, ``branch``, ``fence``, ``isb``.
    stmt / tstate / memory:
        The successor thread configuration.  ``memory`` is unchanged for
        thread-local steps and extended for ``write``/``promise`` steps.
    timestamp:
        The timestamp read from / written to, when applicable.
    loc / value:
        Location and value of the memory access, when applicable.
    description:
        Human-readable rendering for the interactive tool and traces.
    """

    kind: str
    stmt: Stmt
    tstate: TState
    memory: Memory
    timestamp: Optional[Timestamp] = None
    loc: Optional[Loc] = None
    value: Optional[Value] = None
    description: str = ""
    #: Pre-view of the access (reads and writes); used by find_and_certify
    #: to decide which writes are promotable to promises (§B step 3).
    pre_view: Optional[View] = None
    #: Coherence view of the accessed location *before* the step.
    coh_before: Optional[View] = None

    @property
    def writes_memory(self) -> bool:
        return self.kind in ("write", "promise")

    @property
    def is_promise(self) -> bool:
        return self.kind == "promise"

    def __repr__(self) -> str:
        return f"<{self.kind} {self.description}>"


# ---------------------------------------------------------------------------
# Individual rules
# ---------------------------------------------------------------------------


def _read_view(arch: Arch, rk, fwd: Forward, t: Timestamp) -> View:
    """``read-view(a, rk, f, t)`` — forwarding gives the smaller view.

    Forwarding from an exclusive write is only permitted for plain loads
    on ARM (rule ρ13); otherwise the read view is the message timestamp.
    """
    if fwd.time == t and (not fwd.xcl or (arch is Arch.ARM and rk.value == 0)):
        return fwd.view
    return t


def _atomic(memory: Memory, loc: Loc, tid: TId, tr: Timestamp, tw: Timestamp) -> bool:
    """``atomic(M, l, tid, tr, tw)`` — exclusivity check for store exclusives.

    If the paired load exclusive read a write to ``loc`` (timestamp ``tr``;
    timestamp 0, the initial write, always writes every location), then no
    other thread may have written ``loc`` strictly between ``tr`` and ``tw``.
    """
    if tr != 0 and memory.msg(tr).loc != loc:
        return True
    for t in range(tr + 1, tw):
        msg = memory.msg(t)
        if msg.loc == loc and msg.tid != tid:
            return False
    return True


def read_steps(
    stmt: Load, cont: Stmt, ts: TState, memory: Memory, arch: Arch, tid: TId
) -> Iterator[ThreadStep]:
    """All instances of the (read) rule for a load at the head.

    ``cont`` is the (already normalised) continuation after the head —
    precomputed once by the caller (:func:`thread_local_steps`, or the
    compiled per-statement tables of :mod:`repro.isa.compile`) instead of
    re-derived per enumerated step.
    """
    loc, v_addr = ts.eval(stmt.addr)
    rk = stmt.kind
    v_pre = vmax(v_addr, ts.vrNew, ts.vRel if rk.is_strong_acquire else 0)
    bound = vmax(v_pre, ts.coh_view(loc))
    for t in memory.writes_to(loc):
        value = memory.read(loc, t)
        if value is None:
            continue
        # Must not read a write superseded by a newer "seen" same-address
        # write: no same-address message in (t, bound].
        if t < bound and not memory.no_write_to_in(loc, t, bound):
            continue
        v_post = vmax(v_pre, _read_view(arch, rk, ts.forward(loc), t))
        new = ts.copy()
        new.regs[stmt.reg] = (value, v_post)
        new.coh[loc] = vmax(ts.coh_view(loc), v_post)
        new.vrOld = vmax(ts.vrOld, v_post)
        if rk.is_acquire:
            new.vrNew = vmax(ts.vrNew, v_post)
            new.vwNew = vmax(ts.vwNew, v_post)
        new.vCAP = vmax(ts.vCAP, v_addr)
        if stmt.exclusive:
            new.xclb = ExclBank(t, v_post)
        yield ThreadStep(
            kind="read",
            stmt=cont,
            tstate=new,
            memory=memory,
            timestamp=t,
            loc=loc,
            value=value,
            description=f"T{tid}: {stmt.reg} := load [{loc}] = {value} @t{t}",
        )


def fulfil_steps(
    stmt: Store, cont: Stmt, ts: TState, memory: Memory, arch: Arch, tid: TId
) -> Iterator[ThreadStep]:
    """All instances of the (fulfil) rule for a store at the head."""
    loc, v_addr = ts.eval(stmt.addr)
    value, v_data = ts.eval(stmt.data)
    wk = stmt.kind
    if stmt.exclusive and ts.xclb is None:
        return
    v_pre = vmax(
        v_addr,
        v_data,
        ts.vwNew,
        ts.vCAP,
        vmax(ts.vrOld, ts.vwOld) if wk.is_release else 0,
        ts.xclb.view if (arch is Arch.RISCV and stmt.exclusive and ts.xclb) else 0,
    )
    for t in sorted(ts.prom):
        if t > memory.last_timestamp:
            continue
        msg = memory.msg(t)
        if msg != Msg(loc, value, tid):
            continue
        if vmax(v_pre, ts.coh_view(loc)) >= t:
            continue
        if stmt.exclusive and not _atomic(memory, loc, tid, ts.xclb.time, t):
            continue
        v_post = t
        new = ts.copy()
        new.prom = ts.prom - {t}
        if stmt.exclusive and stmt.succ_reg is not None:
            v_succ = v_post if arch is Arch.RISCV else 0
            new.regs[stmt.succ_reg] = (VSUCC, v_succ)
        new.coh[loc] = vmax(ts.coh_view(loc), v_post)
        new.vwOld = vmax(ts.vwOld, v_post)
        new.vCAP = vmax(ts.vCAP, v_addr)
        if wk.is_strong_release:
            new.vRel = vmax(ts.vRel, v_post)
        new.fwdb[loc] = Forward(t, vmax(v_addr, v_data), stmt.exclusive)
        if stmt.exclusive:
            new.xclb = None
        yield ThreadStep(
            kind="fulfil",
            stmt=cont,
            tstate=new,
            memory=memory,
            timestamp=t,
            loc=loc,
            value=value,
            description=f"T{tid}: store [{loc}] {value} fulfils promise @t{t}",
            pre_view=v_pre,
            coh_before=ts.coh_view(loc),
        )


def exclusive_fail_step(
    stmt: Store, cont: Stmt, ts: TState, memory: Memory, tid: TId
) -> ThreadStep:
    """The (exclusive-failure) rule: a store exclusive may always fail."""
    new = ts.copy()
    if stmt.succ_reg is not None:
        new.regs[stmt.succ_reg] = (VFAIL, 0)
    new.xclb = None
    return ThreadStep(
        kind="xcl-fail",
        stmt=cont,
        tstate=new,
        memory=memory,
        description=f"T{tid}: store exclusive fails",
    )


def fence_step(
    stmt: Fence, cont: Stmt, ts: TState, memory: Memory, tid: TId
) -> ThreadStep:
    """The (fence) rule for the two-argument fences."""
    v1 = vmax(
        ts.vrOld if stmt.before.includes(FenceSet.R) else 0,
        ts.vwOld if stmt.before.includes(FenceSet.W) else 0,
    )
    new = ts.copy()
    if stmt.after.includes(FenceSet.R):
        new.vrNew = vmax(ts.vrNew, v1)
    if stmt.after.includes(FenceSet.W):
        new.vwNew = vmax(ts.vwNew, v1)
    return ThreadStep(
        kind="fence",
        stmt=cont,
        tstate=new,
        memory=memory,
        description=f"T{tid}: {stmt!r}",
    )


def isb_step(cont: Stmt, ts: TState, memory: Memory, tid: TId) -> ThreadStep:
    """The (isb) rule: vrNew absorbs vCAP (ρ7)."""
    new = ts.copy()
    new.vrNew = vmax(ts.vrNew, ts.vCAP)
    return ThreadStep(
        kind="isb",
        stmt=cont,
        tstate=new,
        memory=memory,
        description=f"T{tid}: isb",
    )


def assign_step(
    stmt: Assign, cont: Stmt, ts: TState, memory: Memory, tid: TId
) -> ThreadStep:
    """The (register) rule."""
    value, view = ts.eval(stmt.expr)
    new = ts.copy()
    new.regs[stmt.reg] = (value, view)
    return ThreadStep(
        kind="assign",
        stmt=cont,
        tstate=new,
        memory=memory,
        value=value,
        description=f"T{tid}: {stmt.reg} := {value}",
    )


def branch_step(
    stmt: If, then_cont: Stmt, else_cont: Stmt, ts: TState, memory: Memory, tid: TId
) -> ThreadStep:
    """The (branch) rule: resolve the condition, merge its view into vCAP.

    ``then_cont`` / ``else_cont`` are the two branch-rule continuations,
    precomputed by :func:`branch_continuations` (or read from the
    compiled successor table).
    """
    value, view = ts.eval(stmt.cond)
    new = ts.copy()
    new.vCAP = vmax(ts.vCAP, view)
    return ThreadStep(
        kind="branch",
        stmt=then_cont if value != 0 else else_cont,
        tstate=new,
        memory=memory,
        value=value,
        description=f"T{tid}: branch on {value}",
    )


def branch_continuations(head: If, rest: Optional[Stmt]) -> tuple[Stmt, Stmt]:
    """The (then, else) continuations of a branch head, normalised."""
    return tuple(  # type: ignore[return-value]
        normalise(taken if rest is None else Seq(taken, rest))
        for taken in (head.then, head.orelse)
    )


def _continue(rest: Optional[Stmt]) -> Stmt:
    """The statement remaining after the head statement finished."""
    return normalise(rest) if rest is not None else Skip()


# ---------------------------------------------------------------------------
# Head decomposition and step enumeration
# ---------------------------------------------------------------------------


def split_head(stmt: Stmt) -> tuple[Stmt, Optional[Stmt]]:
    """Split a normalised statement into its head and the remainder.

    Public because the program compilation pass
    (:mod:`repro.isa.compile`) mirrors the step rules statically: the
    statements reachable from a program are exactly the continuations
    this decomposition (plus the branch rule) produces.
    """
    stmt = normalise(stmt)
    if isinstance(stmt, Seq):
        head, rest = split_head(stmt.first)
        tail = stmt.second if rest is None else Seq(rest, stmt.second)
        return head, tail
    return stmt, None


#: Backwards-compatible private alias (pre-seam internal name).
_split_head = split_head


def thread_local_steps(
    stmt: Stmt, ts: TState, memory: Memory, arch: Arch, tid: TId
) -> list[ThreadStep]:
    """Enumerate the non-promise thread-local steps of Fig. 5.

    These never append to memory: reads, register assignments, branches,
    fences, isb, fulfilments of existing promises, and store-exclusive
    failures.
    """
    head, rest = _split_head(stmt)
    if isinstance(head, Skip):
        return []
    if isinstance(head, If):
        then_cont, else_cont = branch_continuations(head, rest)
        return [branch_step(head, then_cont, else_cont, ts, memory, tid)]
    cont = _continue(rest)
    if isinstance(head, Load):
        return list(read_steps(head, cont, ts, memory, arch, tid))
    if isinstance(head, Store):
        steps = list(fulfil_steps(head, cont, ts, memory, arch, tid))
        if head.exclusive:
            steps.append(exclusive_fail_step(head, cont, ts, memory, tid))
        return steps
    if isinstance(head, Fence):
        return [fence_step(head, cont, ts, memory, tid)]
    if isinstance(head, Isb):
        return [isb_step(cont, ts, memory, tid)]
    if isinstance(head, Assign):
        return [assign_step(head, cont, ts, memory, tid)]
    raise TypeError(f"cannot step statement head {head!r}")


def promise_step(stmt: Stmt, ts: TState, memory: Memory, msg: Msg) -> ThreadStep:
    """The (promise) thread step: append ``msg`` and record the obligation."""
    new_memory, t = memory.append(msg)
    new = ts.copy()
    new.prom = ts.prom | {t}
    return ThreadStep(
        kind="promise",
        stmt=normalise(stmt),
        tstate=new,
        memory=new_memory,
        timestamp=t,
        loc=msg.loc,
        value=msg.val,
        description=f"T{msg.tid}: promise [{msg.loc}] := {msg.val} @t{t}",
    )


def normal_write_steps(
    stmt: Stmt, ts: TState, memory: Memory, arch: Arch, tid: TId
) -> list[ThreadStep]:
    """"Normal write" steps: promise a fresh message and fulfil it at once.

    Rule r20: a write that is not executed early is modelled by promising
    it just before the store fulfils it.  The fresh timestamp ``|M|+1`` is
    strictly larger than every view, so the pre-view condition of the
    fulfilment holds automatically — we still go through the full (fulfil)
    rule so that the exclusivity check and all view updates are shared.
    """
    head, rest = _split_head(stmt)
    if not isinstance(head, Store):
        return []
    return write_steps(head, _continue(rest), ts, memory, arch, tid)


def write_steps(
    head: Store, cont: Stmt, ts: TState, memory: Memory, arch: Arch, tid: TId
) -> list[ThreadStep]:
    """The normal-write steps of a store head with continuation ``cont``.

    Body of :func:`normal_write_steps` once the head decomposition is
    known; called directly by the compiled candidate tables.
    """
    steps: list[ThreadStep] = []
    loc, _v_addr = ts.eval(head.addr)
    value, _v_data = ts.eval(head.data)
    new_memory, t = memory.append(Msg(loc, value, tid))
    promised = ts.copy()
    promised.prom = ts.prom | {t}
    for fulfil in fulfil_steps(head, cont, promised, new_memory, arch, tid):
        if fulfil.timestamp != t:
            continue
        steps.append(
            ThreadStep(
                kind="write",
                stmt=fulfil.stmt,
                tstate=fulfil.tstate,
                memory=new_memory,
                timestamp=t,
                loc=loc,
                value=value,
                description=f"T{tid}: store [{loc}] := {value} @t{t}",
                pre_view=fulfil.pre_view,
                coh_before=fulfil.coh_before,
            )
        )
    return steps


def sequential_steps(
    stmt: Stmt, ts: TState, memory: Memory, arch: Arch, tid: TId
) -> list[ThreadStep]:
    """Steps available to a thread executing *sequentially* (§4.3).

    Sequential execution means the thread runs alone and every new promise
    is immediately fulfilled, i.e. only thread-local steps and normal
    writes are taken.  This is the step relation used by certification.
    """
    return thread_local_steps(stmt, ts, memory, arch, tid) + normal_write_steps(
        stmt, ts, memory, arch, tid
    )


def non_promise_steps(
    stmt: Stmt, ts: TState, memory: Memory, arch: Arch, tid: TId
) -> list[ThreadStep]:
    """Steps that neither promise nor otherwise extend memory.

    Used by the explorer's non-promise phase (§7): once all writes have
    been promised, memory is fixed and threads run independently using
    only these steps.
    """
    return thread_local_steps(stmt, ts, memory, arch, tid)


__all__ = [
    "ThreadStep",
    "normalise",
    "is_terminated",
    "split_head",
    "branch_continuations",
    "thread_local_steps",
    "promise_step",
    "normal_write_steps",
    "sequential_steps",
    "non_promise_steps",
    # Continuation-parameterised rule bodies (compiled candidate tables).
    "read_steps",
    "fulfil_steps",
    "exclusive_fail_step",
    "fence_step",
    "isb_step",
    "assign_step",
    "branch_step",
    "write_steps",
]
