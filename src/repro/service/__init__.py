"""Long-lived exploration service (the ``promising-arm serve`` layer).

Every CLI invocation pays interpreter start-up, imports, and cold caches
before the first transition fires — fatal under many small requests.
This package keeps all of that resident: an asyncio HTTP/JSON front-end
(:mod:`~repro.service.http`) feeds a batching engine
(:mod:`~repro.service.core`) that answers from a process-resident LRU
over the persistent result cache, coalesces identical in-flight
requests, and dispatches cold micro-batches to a warm
:class:`~repro.harness.scheduler.WorkerPool`.
:mod:`~repro.service.client` is the matching blocking client.
"""

from .core import (
    SERVICE_SCHEMA_VERSION,
    ExplorationService,
    NormalizedRequest,
    ServiceConfig,
    ServiceError,
    ServiceStats,
    TokenBuckets,
    percentile,
    states_explored,
)
from .http import (
    API_PREFIX,
    MAX_BODY_BYTES,
    PROMETHEUS_CONTENT_TYPE,
    ServiceServer,
    run_server,
)
from .client import ServiceClient, ServiceClientError

__all__ = [
    "API_PREFIX",
    "SERVICE_SCHEMA_VERSION",
    "ExplorationService",
    "NormalizedRequest",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "TokenBuckets",
    "percentile",
    "states_explored",
    "MAX_BODY_BYTES",
    "PROMETHEUS_CONTENT_TYPE",
    "ServiceServer",
    "run_server",
    "ServiceClient",
    "ServiceClientError",
]
