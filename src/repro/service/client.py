"""Pooled keep-alive HTTP client for the exploration service (API v1).

Used by the test suite, the CI smoke jobs, ``scripts/bench_service.py``,
and — through :class:`~repro.distrib.http_backend.HttpWorkBackend` — by
every ``promising-arm work`` fleet member on an HTTP queue.  Pure stdlib
(``http.client``), with three properties the one-shot PR 4 client lacked:

* **connection pooling** — responses are read to completion and their
  connections parked in a bounded LIFO pool, so sequential requests ride
  one TCP connection (the server's keep-alive path) and concurrent
  threads each get their own;
* **bounded retries with jitter** — ``429``/``503`` answers are retried
  up to ``max_retries`` times with exponential backoff, honouring the
  server's ``Retry-After`` header when present (never sleeping less than
  it asks);
* **stale-connection recovery** — a parked connection the server closed
  while idle fails fast on reuse and is transparently replaced, never
  surfacing to the caller.

``api_prefix=""`` produces a legacy (unversioned) client; the server
still answers those paths, tagged with a ``Deprecation`` header.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from typing import Optional, Sequence, Union

#: Version prefix every endpoint helper targets by default.
API_PREFIX = "/v1"

#: Statuses that mean "try again later", not "you are wrong".
RETRYABLE_STATUSES = (429, 503)


class ServiceClientError(Exception):
    """A request the service rejected (carries the HTTP status).

    ``retry_after`` is the server's ``Retry-After`` suggestion in seconds
    (``None`` when the response carried none).
    """

    def __init__(
        self, message: str, status: int = 0, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return max(0.0, seconds)


class ServiceClient:
    """Talk to a running ``promising-arm serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 120.0,
        *,
        api_prefix: str = API_PREFIX,
        client_id: Optional[str] = None,
        pool_size: int = 8,
        max_retries: int = 4,
        retry_base_delay: float = 0.05,
        retry_max_delay: float = 5.0,
        rng: Optional[random.Random] = None,
        keep_alive: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.api_prefix = api_prefix
        #: Sent as ``X-Client-Id`` — the identity the server's per-client
        #: token quotas key on (``None`` = the shared anonymous bucket).
        self.client_id = client_id
        #: ``False`` = pre-v2 behaviour: every request carries
        #: ``Connection: close`` and pays a fresh TCP handshake.  Kept as
        #: an explicit mode so the benchmark can measure both policies
        #: side by side on the same machine.
        self.keep_alive = keep_alive
        self.pool_size = pool_size
        self.max_retries = max_retries
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self._rng = rng or random.Random()
        self._pool: list[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()
        #: ``X-Request-Id`` echoed by the most recent response (the
        #: correlation handle for the service's structured logs).
        self.last_request_id: Optional[str] = None
        #: Observable retry accounting (asserted by the conformance tests).
        self.retries = 0

    # -- connection pool -----------------------------------------------------
    def _acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        """A connection plus whether it is fresh (never used before)."""
        with self._pool_lock:
            if self._pool:
                return self._pool.pop(), False
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout), True

    def _release(self, connection: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(connection)
                return
        connection.close()

    def close(self) -> None:
        """Drop every pooled connection (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------------
    def _retry_delay(self, attempt: int, retry_after: Optional[float]) -> float:
        delay = self.retry_base_delay * (2**attempt)
        if retry_after is not None:
            delay = max(delay, retry_after)
        delay = min(delay, self.retry_max_delay)
        # Full jitter on the backoff share only: never sleep *less* than
        # the server's Retry-After, never stampede in lockstep either.
        return delay + self._rng.uniform(0, self.retry_base_delay)

    def _send_once(
        self, method: str, path: str, body: Optional[str], headers: dict
    ) -> tuple[int, dict, bytes]:
        """One request over a pooled or fresh connection.

        A parked connection the server already closed raises immediately
        on reuse; those are discarded and the send repeats on the next
        connection (fresh ones do not get this grace — their failure is
        the caller's error).
        """
        while True:
            connection, fresh = self._acquire()
            try:
                if fresh:
                    # http.client writes headers and body as two separate
                    # sends; with Nagle on, the body segment can stall
                    # behind the headers' ACK.  The server side already
                    # runs with TCP_NODELAY (asyncio's default).
                    connection.connect()
                    connection.sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, socket.error, http.client.HTTPException) as exc:
                connection.close()
                if not fresh:
                    continue
                raise ServiceClientError(
                    f"request to {self.host}:{self.port} failed: {exc}"
                ) from exc
            response_headers = {k.lower(): v for k, v in response.getheaders()}
            if response.will_close:
                connection.close()
            else:
                self._release(connection)
            return response.status, response_headers, raw

    def _raw_request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        request_id: Optional[str] = None,
        *,
        retry: bool = True,
    ) -> tuple[int, dict, bytes]:
        """One request (plus retries); returns ``(status, headers, body)``."""
        body = None if payload is None else json.dumps(payload)
        headers = {} if body is None else {"Content-Type": "application/json"}
        if not self.keep_alive:
            headers["Connection"] = "close"
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        attempt = 0
        while True:
            status, response_headers, raw = self._send_once(method, path, body, headers)
            self.last_request_id = response_headers.get("x-request-id")
            if retry and status in RETRYABLE_STATUSES and attempt < self.max_retries:
                retry_after = _parse_retry_after(response_headers.get("retry-after"))
                time.sleep(self._retry_delay(attempt, retry_after))
                attempt += 1
                self.retries += 1
                continue
            return status, response_headers, raw

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        request_id: Optional[str] = None,
        *,
        retry: bool = True,
    ) -> dict:
        status, headers, raw = self._raw_request(
            method, path, payload, request_id, retry=retry
        )
        data = json.loads(raw.decode() or "null")
        if status >= 400:
            error = (data or {}).get("error", f"HTTP {status}")
            raise ServiceClientError(
                error,
                status=status,
                retry_after=_parse_retry_after(headers.get("retry-after")),
            )
        return data

    def _path(self, endpoint: str) -> str:
        return f"{self.api_prefix}{endpoint}"

    def wait_until_ready(self, deadline: float = 30.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the service answers (or raise)."""
        end = time.monotonic() + deadline
        last_error: Optional[Exception] = None
        while time.monotonic() < end:
            try:
                health = self.healthz()
                if health.get("status") == "ok":
                    return health
            except (ConnectionError, socket.error, ServiceClientError) as exc:
                last_error = exc
            time.sleep(interval)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not ready after {deadline}s: {last_error}"
        )

    # -- endpoints -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", self._path("/healthz"), retry=False)

    def stats(self) -> dict:
        return self._request("GET", self._path("/stats"))

    def metrics_text(self) -> str:
        """The raw ``GET /metrics`` payload (Prometheus text format)."""
        status, _headers, raw = self._raw_request("GET", self._path("/metrics"))
        if status >= 400:
            raise ServiceClientError(f"HTTP {status}", status=status)
        return raw.decode()

    def explore(
        self,
        *,
        test: Optional[str] = None,
        source: Optional[str] = None,
        arch: Optional[str] = None,
        models: Union[str, Sequence[str], None] = None,
        options: Optional[dict] = None,
        request_id: Optional[str] = None,
        retry: bool = True,
    ) -> dict:
        """Run one litmus test; mirrors the ``POST /v1/explore`` body.

        ``request_id`` (optional) is sent as ``X-Request-Id``; the
        service echoes it on the response header and in its logs.
        ``retry=False`` surfaces 429/503 immediately instead of backing
        off (what admission-control probes want).
        """
        payload: dict = {}
        if test is not None:
            payload["test"] = test
        if source is not None:
            payload["source"] = source
        if arch is not None:
            payload["arch"] = arch
        if models is not None:
            payload["models"] = list(models) if not isinstance(models, str) else models
        if options is not None:
            payload["options"] = options
        return self._request(
            "POST", self._path("/explore"), payload, request_id=request_id, retry=retry
        )

    def queue_op(self, op: str, payload: dict, *, retry: bool = True) -> dict:
        """One ``POST /v1/queue/<op>`` — the fleet protocol's wire call."""
        return self._request("POST", self._path(f"/queue/{op}"), payload, retry=retry)

    def shutdown(self) -> dict:
        """Ask the service to drain and stop; tolerates the connection dropping."""
        try:
            return self._request("POST", self._path("/shutdown"), retry=False)
        except ServiceClientError as exc:
            if exc.status:  # a real HTTP rejection, not a dropped connection
                raise
            return {"ok": True, "stopping": True}
        finally:
            self.close()


__all__ = ["API_PREFIX", "RETRYABLE_STATUSES", "ServiceClient", "ServiceClientError"]
