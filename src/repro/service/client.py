"""Blocking HTTP client for the exploration service.

Used by the test suite, the CI service-smoke job, and
``scripts/bench_service.py``.  Pure stdlib (``http.client``), one
connection per request — matching the server's ``Connection: close``
policy — so it is safe to call from multiple threads at once (the
benchmark's burst mode does exactly that).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Optional, Sequence, Union


class ServiceClientError(Exception):
    """A request the service rejected (carries the HTTP status)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to a running ``promising-arm serve`` instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {} if body is None else {"Content-Type": "application/json"}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read().decode() or "null")
            if response.status >= 400:
                error = (data or {}).get("error", f"HTTP {response.status}")
                raise ServiceClientError(error, status=response.status)
            return data
        finally:
            connection.close()

    def wait_until_ready(self, deadline: float = 30.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the service answers (or raise)."""
        end = time.monotonic() + deadline
        last_error: Optional[Exception] = None
        while time.monotonic() < end:
            try:
                health = self.healthz()
                if health.get("status") == "ok":
                    return health
            except (ConnectionError, socket.error, ServiceClientError) as exc:
                last_error = exc
            time.sleep(interval)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not ready after {deadline}s: {last_error}"
        )

    # -- endpoints -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def explore(
        self,
        *,
        test: Optional[str] = None,
        source: Optional[str] = None,
        arch: Optional[str] = None,
        models: Union[str, Sequence[str], None] = None,
        options: Optional[dict] = None,
    ) -> dict:
        """Run one litmus test; mirrors the ``POST /explore`` body."""
        payload: dict = {}
        if test is not None:
            payload["test"] = test
        if source is not None:
            payload["source"] = source
        if arch is not None:
            payload["arch"] = arch
        if models is not None:
            payload["models"] = list(models) if not isinstance(models, str) else models
        if options is not None:
            payload["options"] = options
        return self._request("POST", "/explore", payload)

    def shutdown(self) -> dict:
        """Ask the service to stop; tolerates the connection dropping."""
        try:
            return self._request("POST", "/shutdown")
        except (ConnectionError, socket.error, http.client.HTTPException):
            return {"ok": True, "stopping": True}


__all__ = ["ServiceClient", "ServiceClientError"]
