"""Blocking HTTP client for the exploration service.

Used by the test suite, the CI service-smoke job, and
``scripts/bench_service.py``.  Pure stdlib (``http.client``), one
connection per request — matching the server's ``Connection: close``
policy — so it is safe to call from multiple threads at once (the
benchmark's burst mode does exactly that).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Optional, Sequence, Union


class ServiceClientError(Exception):
    """A request the service rejected (carries the HTTP status)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to a running ``promising-arm serve`` instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: ``X-Request-Id`` echoed by the most recent response (the
        #: correlation handle for the service's structured logs).
        self.last_request_id: Optional[str] = None

    # -- plumbing ------------------------------------------------------------
    def _raw_request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        request_id: Optional[str] = None,
    ) -> tuple[int, dict, bytes]:
        """One request; returns ``(status, response headers, body bytes)``."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {} if body is None else {"Content-Type": "application/json"}
            if request_id is not None:
                headers["X-Request-Id"] = request_id
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            response_headers = {k.lower(): v for k, v in response.getheaders()}
            self.last_request_id = response_headers.get("x-request-id")
            return response.status, response_headers, raw
        finally:
            connection.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        status, _headers, raw = self._raw_request(method, path, payload, request_id)
        data = json.loads(raw.decode() or "null")
        if status >= 400:
            error = (data or {}).get("error", f"HTTP {status}")
            raise ServiceClientError(error, status=status)
        return data

    def wait_until_ready(self, deadline: float = 30.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the service answers (or raise)."""
        end = time.monotonic() + deadline
        last_error: Optional[Exception] = None
        while time.monotonic() < end:
            try:
                health = self.healthz()
                if health.get("status") == "ok":
                    return health
            except (ConnectionError, socket.error, ServiceClientError) as exc:
                last_error = exc
            time.sleep(interval)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not ready after {deadline}s: {last_error}"
        )

    # -- endpoints -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics_text(self) -> str:
        """The raw ``GET /metrics`` payload (Prometheus text format)."""
        status, _headers, raw = self._raw_request("GET", "/metrics")
        if status >= 400:
            raise ServiceClientError(f"HTTP {status}", status=status)
        return raw.decode()

    def explore(
        self,
        *,
        test: Optional[str] = None,
        source: Optional[str] = None,
        arch: Optional[str] = None,
        models: Union[str, Sequence[str], None] = None,
        options: Optional[dict] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        """Run one litmus test; mirrors the ``POST /explore`` body.

        ``request_id`` (optional) is sent as ``X-Request-Id``; the
        service echoes it on the response header and in its logs.
        """
        payload: dict = {}
        if test is not None:
            payload["test"] = test
        if source is not None:
            payload["source"] = source
        if arch is not None:
            payload["arch"] = arch
        if models is not None:
            payload["models"] = list(models) if not isinstance(models, str) else models
        if options is not None:
            payload["options"] = options
        return self._request("POST", "/explore", payload, request_id=request_id)

    def shutdown(self) -> dict:
        """Ask the service to stop; tolerates the connection dropping."""
        try:
            return self._request("POST", "/shutdown")
        except (ConnectionError, socket.error, http.client.HTTPException):
            return {"ok": True, "stopping": True}


__all__ = ["ServiceClient", "ServiceClientError"]
