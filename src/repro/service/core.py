"""The exploration service engine: normalize → cache → coalesce → batch.

This is the transport-agnostic core of the long-lived serving layer.  A
request (a JSON-shaped dict) names a litmus test — either inline litmus
``source`` or a catalogue ``test`` — plus the models to run it under and
bounded options.  The engine normalizes it into :class:`~repro.harness.jobs.Job`
objects (so every request shares the sweep harness's single execution
path and content fingerprints), then answers each job from the cheapest
layer that can:

1. the process-resident :class:`~repro.harness.cache.LruResultCache`
   (a dict lookup);
2. the persistent on-disk :class:`~repro.harness.cache.ResultCache`
   (shared with CLI sweeps; hits are promoted into the LRU);
3. an identical in-flight computation (**coalescing**: concurrent
   requests with the same fingerprint share one execution);
4. a micro-batch dispatched to a resident
   :class:`~repro.harness.scheduler.WorkerPool`, whose workers stay warm
   across requests so imports and interner pools amortize.

Per-job deadlines and truncation warnings flow through the standard
:class:`~repro.harness.jobs.JobResult` schema: a budget-capped
exploration is served with ``"truncated": true`` and its warning string,
never as a silently verified verdict.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import platform
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .. import __version__
from ..axiomatic.model import AxiomaticConfig
from ..flat.explorer import FlatConfig
from ..harness.cache import CACHE_REQUESTS, LruResultCache, open_cache
from ..harness.jobs import (
    MODELS,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    Job,
    JobResult,
    execute_job,
    result_to_json,
)
from ..harness.report import job_entry
from ..harness.scheduler import WorkerPool
from ..lang.kinds import ARCH_ALIASES, Arch, parse_arch
from ..obs import metrics
from ..obs.logging import get_logger, log_event
from ..obs.tracing import span
from ..promising.exhaustive import ExploreConfig

#: Version of the /healthz and /stats payload shapes (bumped whenever a
#: field is renamed or removed, not when purely additive).
SERVICE_SCHEMA_VERSION = 1

_log = get_logger("service.core")

_SERVICE_REQUESTS = metrics.counter(
    "service_requests_total", "Explore requests by outcome.", labels=("outcome",)
)
_SERVICE_REQUEST_SECONDS = metrics.histogram(
    "service_request_seconds", "End-to-end /explore latency."
)
_SERVICE_JOBS = metrics.counter(
    "service_jobs_total", "Jobs served, by the layer that answered.",
    labels=("served_from",),
)
_SERVICE_ERRORS = metrics.counter(
    "service_errors_total", "Failures inside the service, by kind.", labels=("kind",)
)
_SERVICE_ADMISSION = metrics.counter(
    "service_admission_total",
    "Explore admission decisions (accepted, queue_full, quota, draining).",
    labels=("outcome",),
)


def _build_info() -> dict:
    return {"version": __version__, "python": platform.python_version()}


def states_explored(stats: dict) -> int:
    """States a job's exploration visited, across model vocabularies.

    Promising counts promise-mode plus per-thread enumeration states;
    flat counts kernel states; axiomatic enumerates candidate executions
    rather than states and contributes 0.
    """
    return sum(
        int(stats.get(key) or 0)
        for key in ("promise_states", "thread_enumeration_states", "states")
    )


class ServiceError(Exception):
    """A client-visible request failure (maps to an HTTP status).

    ``retry_after`` (seconds) is set on throttling/overload rejections
    (429/503); the HTTP layer surfaces it as a ``Retry-After`` header so
    well-behaved clients can back off exactly as long as needed.
    """

    def __init__(
        self, message: str, status: int = 400, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class TokenBuckets:
    """Per-client token buckets: the /v1 explore quota ledger.

    One bucket per identity-header value, refilled continuously at
    ``refill_per_second`` up to ``capacity``.  A request costs one token
    per job it expands into; an empty bucket yields the exact time until
    enough tokens exist, which becomes the 429's ``Retry-After``.

    Only touched from the event loop, so no lock is needed.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError("quota capacity must be positive")
        if refill_per_second <= 0:
            raise ValueError("quota refill rate must be positive")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self.clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}

    def take(self, client_id: str, cost: float = 1.0) -> Optional[float]:
        """Spend ``cost`` tokens; ``None`` on success, else retry-after seconds."""
        now = self.clock()
        tokens, stamp = self._buckets.get(client_id, (self.capacity, now))
        tokens = min(self.capacity, tokens + (now - stamp) * self.refill_per_second)
        # A request costing more than the whole bucket drains a full bucket
        # instead of stalling forever: capacity is a burst cap, the refill
        # rate still bounds long-run throughput.
        cost = min(cost, self.capacity)
        if tokens >= cost:
            self._buckets[client_id] = (tokens - cost, now)
            return None
        self._buckets[client_id] = (tokens, now)
        return (cost - tokens) / self.refill_per_second


@dataclass
class ServiceConfig:
    """Tunables of one :class:`ExplorationService` instance."""

    #: Resident worker processes.  ``<= 1`` runs jobs inline on an
    #: executor thread (no pool, no enforceable per-job deadline) — the
    #: lightweight mode used by unit tests and tiny deployments.
    workers: int = 2
    #: Cold jobs are gathered for up to this long (seconds) or until
    #: ``batch_max_size`` of them are waiting, then dispatched together.
    batch_max_delay: float = 0.01
    batch_max_size: int = 16
    #: Micro-batches allowed to execute concurrently (``0`` = one per
    #: worker).  More than one prevents head-of-line blocking: a fast
    #: request arriving behind a slow batch runs on an idle worker
    #: instead of waiting the slow batch out.
    max_concurrent_batches: int = 0
    #: Capacity of the process-resident LRU result layer.
    lru_capacity: int = 4096
    #: Directory of the persistent result cache (``None`` = LRU only).
    cache_dir: Optional[str] = None
    #: Per-job deadline applied when a request does not name one.
    default_timeout: Optional[float] = 60.0
    #: Hard ceiling on any requested per-job deadline.
    max_timeout: float = 600.0
    #: Hard ceiling on any requested loop-unrolling bound.
    loop_bound_limit: int = 4
    #: Hard ceiling on any requested ``max_states`` budget.
    max_states_limit: int = 5_000_000
    #: Hard ceilings on the random walks one ``sample``-strategy job runs
    #: and on the step bound of each walk.
    max_samples_limit: int = 65_536
    max_sample_depth_limit: int = 65_536
    #: Largest accepted litmus source, in bytes.
    max_source_bytes: int = 65_536
    #: Most jobs (models) a single request may expand into.
    max_jobs_per_request: int = 8
    #: Latencies kept for the /stats percentiles (ring buffer).
    latency_window: int = 4096
    #: Admission control: once this many jobs are queued or in flight,
    #: new explore requests get ``429 + Retry-After`` instead of piling
    #: onto the dispatch queue (``0`` disables the check).
    max_pending_jobs: int = 1024
    #: ``Retry-After`` (seconds) suggested on a queue-depth 429.
    admission_retry_after: float = 1.0
    #: ``Retry-After`` (seconds) suggested on a drain-time 503.
    drain_retry_after: float = 2.0
    #: Longest a graceful drain waits for in-flight work before the
    #: server hard-stops whatever is left.
    drain_timeout: float = 30.0
    #: Per-client token-bucket capacity for explore requests, keyed on
    #: the identity header (one token per job; ``None`` = quotas off).
    quota_tokens: Optional[float] = None
    #: Tokens refilled per second per client.
    quota_refill_per_second: float = 1.0
    #: Work-queue ledger mounted at ``/v1/queue/*`` (``memory://<name>``
    #: or ``sqlite:///path``; ``None`` = a fresh in-memory queue).
    queue_url: Optional[str] = None


@dataclass
class ServiceStats:
    """Counters surfaced by ``/stats`` (and asserted by the tests)."""

    started_unix: float = field(default_factory=time.time)
    #: Uptime is a *duration*, so it is measured against the monotonic
    #: clock — an NTP step of the wall clock must never move it.
    started_monotonic: float = field(default_factory=time.monotonic)
    requests: int = 0
    bad_requests: int = 0
    jobs: int = 0
    lru_hits: int = 0
    disk_hits: int = 0
    coalesced: int = 0
    computed: int = 0
    batches: int = 0
    batched_jobs: int = 0
    max_batch_size: int = 0
    #: Error accounting: jobs that raised or timed out during batch
    #: compute, and whole batches lost to pool breakage.  A failing job
    #: must surface here (and in /metrics), never vanish.
    job_errors: int = 0
    job_timeouts: int = 0
    batch_failures: int = 0
    #: Admission accounting: requests bounced before any job ran — queue
    #: depth over the limit, an exhausted client quota, or a drain in
    #: progress — each with an explicit ``Retry-After``.
    admission_rejections: int = 0
    quota_rejections: int = 0
    drain_rejections: int = 0
    #: HTTP front-end accounting (requests ≫ connections under keep-alive).
    connections: int = 0
    http_requests: int = 0
    latencies: deque = field(default_factory=deque)

    @property
    def errors_total(self) -> int:
        return self.job_errors + self.job_timeouts + self.batch_failures

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_jobs += size
        self.max_batch_size = max(self.max_batch_size, size)

    def record_latency(self, seconds: float, window: int) -> None:
        self.latencies.append(seconds)
        while len(self.latencies) > window:
            self.latencies.popleft()


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The ``q``-quantile (0..1) of ``values`` by nearest-rank."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
    return ordered[rank - 1]


@dataclass
class NormalizedRequest:
    """A validated request: jobs plus the options that shaped them."""

    name: str
    arch: Arch
    models: tuple[str, ...]
    jobs: list[Job]
    timeout: Optional[float]
    include_outcomes: bool
    #: Deadline-tier budget baked into the job configs (None = unbounded).
    deadline_seconds: Optional[float] = None


class ExplorationService:
    """The long-lived engine behind ``promising-arm serve``.

    Lifecycle: :meth:`start` (from a running event loop), then any number
    of concurrent :meth:`handle_explore` calls, then :meth:`stop`.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.lru = LruResultCache(self.config.lru_capacity)
        self.disk = open_cache(self.config.cache_dir)
        self._pool: Optional[WorkerPool] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: deque = deque()
        self._queue_event = asyncio.Event()
        self._dispatcher: Optional[asyncio.Task] = None
        self._batch_slots: Optional[asyncio.Semaphore] = None
        self._batch_tasks: set = set()
        self._running = False
        self._draining = False
        self.quotas: Optional[TokenBuckets] = (
            TokenBuckets(self.config.quota_tokens, self.config.quota_refill_per_second)
            if self.config.quota_tokens
            else None
        )

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        if self.config.workers > 1:
            self._pool = WorkerPool(self.config.workers)
        slots = self.config.max_concurrent_batches or max(1, self.config.workers)
        self._batch_slots = asyncio.Semaphore(slots)
        self._running = True
        self._draining = False
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())

    def begin_drain(self) -> None:
        """Stop admitting new cold work; everything accepted keeps running.

        Cache hits and coalescing onto already-running computations stay
        served; only work that would *start* a new computation is bounced
        with ``503 + Retry-After``.
        """
        if not self._draining:
            self._draining = True
            log_event(_log, "drain started", queued=len(self._queue), inflight=len(self._inflight))

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown, phase one: finish queued and in-flight work.

        Returns ``True`` once nothing is pending (``False`` if ``timeout``
        expired first); :meth:`stop` afterwards finds nothing to fail, so
        no accepted request is ever answered with the bare shutdown 503.
        """
        self.begin_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._queue or self._inflight or self._batch_tasks:
            if deadline is not None and time.monotonic() >= deadline:
                log_event(
                    _log,
                    "drain timed out",
                    level=30,  # logging.WARNING
                    queued=len(self._queue),
                    inflight=len(self._inflight),
                )
                return False
            await asyncio.sleep(0.01)
        log_event(_log, "drain complete")
        return True

    async def stop(self) -> None:
        self._running = False
        self._queue_event.set()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
            self._dispatcher = None
        for task in list(self._batch_tasks):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._batch_tasks.clear()
        # Fail every pending future — queued ones *and* those whose batch
        # is still executing (the cancelled dispatcher will never resolve
        # them) — so no coalesced or computing waiter hangs forever.
        for fut in self._inflight.values():
            if not fut.done():
                fut.set_exception(ServiceError("service stopping", status=503))
        self._queue.clear()
        self._inflight.clear()
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            await asyncio.get_running_loop().run_in_executor(None, pool.close)

    # -- request validation --------------------------------------------------
    def normalize(self, payload: object) -> NormalizedRequest:
        """Validate a request dict and expand it into harness jobs.

        Raises :class:`ServiceError` (a 400) on anything malformed; the
        limits in :class:`ServiceConfig` bound every knob a client can
        turn, so one request can never wedge the service.
        """
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        source = payload.get("source")
        test_name = payload.get("test")
        if (source is None) == (test_name is None):
            raise ServiceError("exactly one of 'source' or 'test' is required")

        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ServiceError("'options' must be an object")
        loop_bound = options.get("loop_bound", 2)
        if not isinstance(loop_bound, int) or not 1 <= loop_bound <= self.config.loop_bound_limit:
            raise ServiceError(f"'loop_bound' must be an int in 1..{self.config.loop_bound_limit}")
        timeout = options.get("timeout", self.config.default_timeout)
        if timeout is not None:
            if (
                not isinstance(timeout, (int, float))
                or timeout <= 0
                or timeout > self.config.max_timeout
            ):
                raise ServiceError(
                    f"'timeout' must be a number of seconds in (0, {self.config.max_timeout}]"
                )
            timeout = float(timeout)
        include_outcomes = options.get("include_outcomes", True)
        if not isinstance(include_outcomes, bool):
            raise ServiceError("'include_outcomes' must be a boolean")
        # The deadline tier: a kernel-enforced wall-clock budget per job.
        # Unlike 'timeout' (which kills the worker process), the kernel
        # stops at the budget and returns what it found, explicitly
        # flagged truncated — a cheap, bounded answer, never a silent one.
        deadline_seconds = options.get("deadline_seconds")
        if deadline_seconds is not None:
            if (
                isinstance(deadline_seconds, bool)
                or not isinstance(deadline_seconds, (int, float))
                or deadline_seconds <= 0
                or deadline_seconds > self.config.max_timeout
            ):
                raise ServiceError(
                    "'deadline_seconds' must be a number of seconds in "
                    f"(0, {self.config.max_timeout}]"
                )
            deadline_seconds = float(deadline_seconds)
        max_states = options.get("max_states")
        if max_states is not None and (
            not isinstance(max_states, int) or not 1 <= max_states <= self.config.max_states_limit
        ):
            raise ServiceError(f"'max_states' must be an int in 1..{self.config.max_states_limit}")

        from ..explore import STRATEGIES

        strategy = options.get("strategy", "dfs")
        if strategy not in STRATEGIES:
            raise ServiceError(
                f"unknown strategy {strategy!r}; choose from {', '.join(STRATEGIES)}"
            )
        # bool is an int subclass; reject it so `"samples": true` and
        # friends fail loudly instead of running one walk.
        samples = options.get("samples", 256)
        if (
            not isinstance(samples, int)
            or isinstance(samples, bool)
            or not 1 <= samples <= self.config.max_samples_limit
        ):
            raise ServiceError(f"'samples' must be an int in 1..{self.config.max_samples_limit}")
        sample_depth = options.get("sample_depth", 4096)
        if (
            not isinstance(sample_depth, int)
            or isinstance(sample_depth, bool)
            or not 1 <= sample_depth <= self.config.max_sample_depth_limit
        ):
            raise ServiceError(
                f"'sample_depth' must be an int in 1..{self.config.max_sample_depth_limit}"
            )
        seed = options.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ServiceError("'seed' must be an integer")

        from ..explore import BACKENDS

        backend = options.get("backend", "object")
        if not isinstance(backend, str) or backend not in BACKENDS:
            raise ServiceError(f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}")

        models = payload.get("models", ["promising"])
        if isinstance(models, str):
            models = [m.strip() for m in models.split(",") if m.strip()]
        if not isinstance(models, list) or not models:
            raise ServiceError("'models' must be a non-empty list of model names")
        unknown = [m for m in models if m not in MODELS]
        if unknown:
            raise ServiceError(
                f"unknown model(s) {', '.join(map(repr, unknown))}; "
                f"choose from {', '.join(MODELS)}"
            )
        models = tuple(dict.fromkeys(models))
        if len(models) > self.config.max_jobs_per_request:
            raise ServiceError(
                f"a request may expand into at most {self.config.max_jobs_per_request} jobs"
            )

        arch_name = payload.get("arch")
        if arch_name is not None:
            arch = parse_arch(arch_name) if isinstance(arch_name, str) else None
            if arch is None:
                raise ServiceError(
                    f"unknown arch {arch_name!r}; choose from {', '.join(sorted(ARCH_ALIASES))}"
                )
        else:
            arch = None

        if source is not None:
            if not isinstance(source, str):
                raise ServiceError("'source' must be a litmus-format string")
            if len(source.encode()) > self.config.max_source_bytes:
                raise ServiceError(
                    f"'source' exceeds {self.config.max_source_bytes} bytes", status=413
                )
            from ..litmus.format import parse_litmus

            try:
                parsed = parse_litmus(source, unroll_bound=loop_bound)
            except Exception as exc:
                raise ServiceError(f"unparseable litmus source: {exc}") from exc
            test = parsed.test
            if arch is None:
                arch = parsed.arch
        else:
            if not isinstance(test_name, str):
                raise ServiceError("'test' must be a catalogue test name")
            from ..litmus import get_test

            try:
                test = get_test(test_name)
            except (KeyError, ValueError) as exc:
                raise ServiceError(f"unknown catalogue test {test_name!r}") from exc
            if arch is None:
                arch = Arch.ARM

        search_kwargs = dict(
            loop_bound=loop_bound,
            strategy=strategy,
            samples=samples,
            sample_depth=sample_depth,
            seed=seed,
            backend=backend,
        )
        if max_states is not None:
            search_kwargs["max_states"] = max_states
        if deadline_seconds is not None:
            search_kwargs["deadline_seconds"] = deadline_seconds
        # Strategy and sampling knobs are ordinary config fields, so they
        # enter each job's fingerprint: a sampled run caches, coalesces,
        # and LRU-serves under its own key, never shadowing an exhaustive
        # result for the same test.
        explore_config = ExploreConfig(**search_kwargs)
        flat_config = FlatConfig(**search_kwargs)
        jobs = [
            Job(
                test=test,
                model=model,
                arch=arch,
                explore_config=explore_config,
                axiomatic_config=AxiomaticConfig(loop_bound=loop_bound),
                flat_config=flat_config,
            )
            for model in models
        ]
        return NormalizedRequest(
            name=test.name,
            arch=arch,
            models=models,
            jobs=jobs,
            timeout=timeout,
            include_outcomes=include_outcomes,
            deadline_seconds=deadline_seconds,
        )

    # -- request handling ----------------------------------------------------
    @staticmethod
    def _rejection(exc: ServiceError) -> dict:
        body = {"ok": False, "error": str(exc)}
        if exc.retry_after is not None:
            body["retry_after"] = round(exc.retry_after, 3)
        return body

    def _admit(self, request: NormalizedRequest, client_id: Optional[str]) -> None:
        """Admission control: raises a 429 :class:`ServiceError` or returns.

        Two gates, both with explicit ``Retry-After``: the global dispatch
        queue depth (protects the service) and the per-client token bucket
        keyed on the identity header (protects everyone else's share).
        """
        if self.config.max_pending_jobs:
            depth = len(self._queue) + len(self._inflight)
            if depth >= self.config.max_pending_jobs:
                self.stats.admission_rejections += 1
                _SERVICE_ADMISSION.inc(outcome="queue_full")
                raise ServiceError(
                    f"service overloaded: {depth} jobs already pending",
                    status=429,
                    retry_after=self.config.admission_retry_after,
                )
        if self.quotas is not None:
            wait = self.quotas.take(client_id or "anonymous", cost=len(request.jobs))
            if wait is not None:
                self.stats.quota_rejections += 1
                _SERVICE_ADMISSION.inc(outcome="quota")
                raise ServiceError(
                    f"quota exhausted for client {client_id or 'anonymous'!r}",
                    status=429,
                    retry_after=wait,
                )
        _SERVICE_ADMISSION.inc(outcome="accepted")

    async def handle_explore(
        self, payload: object, client_id: Optional[str] = None
    ) -> tuple[int, dict]:
        """The full request path; returns ``(http_status, response_dict)``."""
        start = time.perf_counter()
        try:
            request = self.normalize(payload)
        except ServiceError as exc:
            self.stats.bad_requests += 1
            _SERVICE_REQUESTS.inc(outcome="bad_request")
            return exc.status, self._rejection(exc)
        try:
            self._admit(request, client_id)
        except ServiceError as exc:
            _SERVICE_REQUESTS.inc(outcome="rejected")
            return exc.status, self._rejection(exc)
        self.stats.requests += 1
        self.stats.jobs += len(request.jobs)
        # Fast path: when every job is already LRU-resident the whole
        # request is answerable without touching the event loop — no
        # coroutines, no gather, no scheduler round-trip.  This is the
        # steady state of a warm service, so it is worth keeping flat.
        fast: Optional[list[tuple[JobResult, str]]] = []
        for job in request.jobs:
            hit = self.lru.get(job)
            if hit is None:
                fast = None
                break
            fast.append((hit, "lru"))
        if fast is not None:
            self.stats.lru_hits += len(fast)
            resolved = fast
        else:
            try:
                resolved = await asyncio.gather(
                    *(self._resolve(job, request.timeout) for job in request.jobs)
                )
            except ServiceError as exc:
                if exc.retry_after is not None and exc.status == 503:
                    self.stats.drain_rejections += 1
                    _SERVICE_ADMISSION.inc(outcome="draining")
                _SERVICE_REQUESTS.inc(outcome="error")
                return exc.status, self._rejection(exc)
        rows = []
        total_cost = {"states_explored": 0, "queue_ms": 0.0, "compute_ms": 0.0}
        served_from_counts: dict[str, int] = {}
        for job, (result, served_from) in zip(request.jobs, resolved):
            _SERVICE_JOBS.inc(served_from=served_from)
            served_from_counts[served_from] = served_from_counts.get(served_from, 0) + 1
            row = job_entry(result)
            row["served_from"] = served_from
            # Per-job cost accounting: a cache hit cost nothing *now* (its
            # recorded elapsed_seconds is the original computation), so
            # only freshly computed answers bill queue/compute time.
            computed_now = served_from in ("computed", "coalesced") and not result.cached
            cost = {
                "states": states_explored(result.stats),
                "served_from": served_from,
                "queue_ms": round((result.queue_seconds or 0.0) * 1000, 3)
                if computed_now
                else 0.0,
                "compute_ms": round(result.elapsed_seconds * 1000, 3)
                if computed_now
                else 0.0,
            }
            row["cost"] = cost
            total_cost["states_explored"] += cost["states"]
            total_cost["queue_ms"] += cost["queue_ms"]
            total_cost["compute_ms"] += cost["compute_ms"]
            if request.include_outcomes:
                row["outcomes"] = result_to_json(result)["outcomes"]
            rows.append(row)
        total_cost["queue_ms"] = round(total_cost["queue_ms"], 3)
        total_cost["compute_ms"] = round(total_cost["compute_ms"], 3)
        total_cost["served_from"] = served_from_counts
        elapsed = time.perf_counter() - start
        self.stats.record_latency(elapsed, self.config.latency_window)
        _SERVICE_REQUESTS.inc(outcome="ok")
        _SERVICE_REQUEST_SECONDS.observe(elapsed)
        response = {
            "ok": all(result.ok for result, _ in resolved),
            "test": request.name,
            "arch": request.arch.value,
            "models": list(request.models),
            "elapsed_seconds": elapsed,
            "cost": total_cost,
            "results": rows,
        }
        if request.deadline_seconds is not None:
            # Deadline-tier responses say so: the budget that shaped them
            # and whether any row was cut short by it.  Per-row
            # ``truncated``/``sampled`` flags carry the fine grain.
            response["deadline_seconds"] = request.deadline_seconds
            response["truncated"] = any(result.truncated for result, _ in resolved)
        return 200, response

    async def _resolve(self, job: Job, timeout: Optional[float]) -> tuple[JobResult, str]:
        """Serve one job from the cheapest layer that can answer it."""
        hit = self.lru.get(job)
        if hit is not None:
            self.stats.lru_hits += 1
            return hit, "lru"
        if self.disk is not None:
            # File read + JSON parse happen off the event loop so a slow
            # cache volume can never stall every other connection.  The
            # in-flight check below runs *after* this await, so identical
            # concurrent misses still coalesce onto one computation.
            hit = await self._loop.run_in_executor(None, self.disk.get, job)
            if hit is not None:
                self.lru.put(job, hit)
                self.stats.disk_hits += 1
                return hit, "disk"
        fingerprint = job.fingerprint()
        inflight = self._inflight.get(fingerprint)
        if inflight is not None:
            # Coalescing: an identical computation is already running (or
            # queued); share its result instead of executing twice.  This
            # is the third cache tier, so it shares the layer-labeled
            # counter vocabulary with the LRU and disk layers.
            self.stats.coalesced += 1
            CACHE_REQUESTS.inc(layer="coalesced", outcome="hit")
            result, _label = await asyncio.shield(inflight)
            return self._rebind(result, job), "coalesced"
        if not self._running or self._draining:
            # New arrivals only: cache hits and coalesced joins above were
            # already served, and queued/in-flight work keeps running to
            # completion — the graceful-drain contract.
            raise ServiceError(
                "service draining" if self._running else "service stopping",
                status=503,
                retry_after=self.config.drain_retry_after,
            )
        future = self._loop.create_future()
        self._inflight[fingerprint] = future
        self._queue.append((job, timeout, future, time.monotonic()))
        self._queue_event.set()
        # The dispatcher resolves the future with (result, label): label
        # is "computed" normally, or "lru" for a duplicate that slipped
        # past the in-flight check and was answered at dispatch time.
        result, label = await future
        if label == "computed":
            self.stats.computed += 1
        else:
            self.stats.lru_hits += 1
        return result, label

    @staticmethod
    def _rebind(result: JobResult, job: Job) -> JobResult:
        """A coalesced waiter's copy, carrying its own job's annotations."""
        return dataclasses.replace(
            result,
            name=job.test.name,
            expected=job.test.expected_verdict(job.arch),
            stats=dict(result.stats),
        )

    # -- batching ------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Gather cold jobs into micro-batches and run them on the pool.

        Up to ``max_concurrent_batches`` batches execute at once (one per
        worker by default), so a fast request arriving behind a slow
        batch is dispatched to an idle worker instead of waiting the slow
        batch out; within that limit, jobs queueing while every slot is
        busy accumulate into larger batches, which keeps dispatch
        overhead amortised under load while an idle service dispatches a
        lone request after at most ``batch_max_delay``.
        """
        while self._running:
            await self._queue_event.wait()
            if not self._running:
                return
            if not self._queue:
                self._queue_event.clear()
                continue
            if self.config.batch_max_delay > 0 and len(self._queue) < self.config.batch_max_size:
                await asyncio.sleep(self.config.batch_max_delay)
            batch = []
            while self._queue and len(batch) < self.config.batch_max_size:
                batch.append(self._queue.popleft())
            if not self._queue:
                self._queue_event.clear()
            # A duplicate can slip past _resolve's in-flight check when
            # its disk probe overlaps the original's completion; anything
            # already in the LRU by dispatch time is served from it
            # instead of being executed again.  The membership probe
            # avoids charging the LRU a second miss for genuinely cold
            # jobs (``_resolve`` already recorded one).
            still_cold = []
            for entry in batch:
                job, _timeout, future, _enqueued = entry
                if job.fingerprint() in self.lru:
                    hit = self.lru.get(job)
                    self._inflight.pop(job.fingerprint(), None)
                    if not future.done():
                        future.set_result((hit, "lru"))
                else:
                    still_cold.append(entry)
            if not still_cold:
                continue
            self.stats.record_batch(len(still_cold))
            await self._batch_slots.acquire()
            if not self._running:
                self._batch_slots.release()
                return
            task = asyncio.ensure_future(self._run_batch(still_cold))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: list) -> None:
        """Execute one micro-batch on the pool and resolve its futures."""
        jobs = [job for job, _, _, _ in batch]
        timeouts = [timeout for _, timeout, _, _ in batch]
        dispatch = time.monotonic()
        try:
            with span("batch_compute", jobs=len(jobs)):
                results = await self._loop.run_in_executor(
                    None, self._execute_batch, jobs, timeouts
                )
        except Exception as exc:  # pool breakage: fail this batch, keep serving
            self.stats.batch_failures += 1
            _SERVICE_ERRORS.inc(kind="batch_failure")
            log_event(
                _log,
                "batch failed",
                level=40,  # logging.ERROR
                jobs=len(jobs),
                error=f"{type(exc).__name__}: {exc}",
            )
            for job, _, future, _ in batch:
                self._inflight.pop(job.fingerprint(), None)
                if not future.done():
                    future.set_exception(
                        ServiceError(f"batch execution failed: {exc}", status=500)
                    )
            return
        finally:
            self._batch_slots.release()
        for (job, _, future, enqueued), result in zip(batch, results):
            self._inflight.pop(job.fingerprint(), None)
            # Total queue time = wait in the service's dispatch queue plus
            # any wait inside the worker pool (measured by the worker).
            result.queue_seconds = max(0.0, dispatch - enqueued) + (
                result.queue_seconds or 0.0
            )
            if result.status == STATUS_ERROR:
                # A job that raised during compute must be *counted*, not
                # just passed through as a row the caller may ignore.
                self.stats.job_errors += 1
                _SERVICE_ERRORS.inc(kind="job_error")
                log_event(
                    _log,
                    "job error",
                    level=40,  # logging.ERROR
                    test=result.name,
                    model=result.model,
                    fingerprint=result.fingerprint[:12],
                    error=result.error.splitlines()[0] if result.error else "",
                )
            elif result.status == STATUS_TIMEOUT:
                self.stats.job_timeouts += 1
                _SERVICE_ERRORS.inc(kind="job_timeout")
                log_event(
                    _log,
                    "job timeout",
                    level=30,  # logging.WARNING
                    test=result.name,
                    model=result.model,
                    fingerprint=result.fingerprint[:12],
                )
            self.lru.put(job, result)
            if not future.done():
                future.set_result((result, "computed"))

    def _execute_batch(
        self, jobs: list[Job], timeouts: list[Optional[float]]
    ) -> list[JobResult]:
        """Run one micro-batch (called on an executor thread).

        With a resident pool the batch fans out across warm workers and
        per-job ``SIGALRM`` deadlines are enforced on their main threads.
        Inline mode (``workers <= 1``) executes serially on this thread,
        where deadlines are best-effort only (no ``SIGALRM`` off the main
        thread) — acceptable for tests and single-user deployments.

        Disk persistence also happens here, on this thread, streamed as
        each result lands: it never blocks the event loop, and there is
        no cancellation point between computing a result and persisting
        it, so a service stopping right after answering has already
        written its cache entries.
        """
        if self._pool is not None:

            def persist(index: int, result: JobResult) -> None:
                self.disk.put(jobs[index], result)

            return self._pool.run(
                jobs, timeouts, on_result=persist if self.disk is not None else None
            )
        results = []
        for job, timeout in zip(jobs, timeouts):
            result = execute_job(job, timeout=timeout)
            if self.disk is not None:
                self.disk.put(job, result)
            results.append(result)
        return results

    # -- introspection -------------------------------------------------------
    def healthz(self) -> dict:
        if not self._running:
            status = "stopping"
        elif self._draining:
            status = "draining"
        else:
            status = "ok"
        return {
            "status": status,
            "schema_version": SERVICE_SCHEMA_VERSION,
            "build": _build_info(),
            "uptime_seconds": time.monotonic() - self.stats.started_monotonic,
            "workers": self.config.workers,
            "pool": "resident" if self._pool is not None else "inline",
        }

    def metrics_text(self) -> str:
        """The process-wide metrics registry in Prometheus text format."""
        return metrics.get_registry().render_prometheus()

    def stats_snapshot(self) -> dict:
        """The ``/stats`` payload: cache hit rates, batching, latency."""
        stats = self.stats
        latencies = list(stats.latencies)
        served_without_execution = stats.lru_hits + stats.disk_hits + stats.coalesced
        return {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "build": _build_info(),
            "uptime_seconds": time.monotonic() - stats.started_monotonic,
            "requests": stats.requests,
            "bad_requests": stats.bad_requests,
            "jobs": stats.jobs,
            "errors": {
                "jobs": stats.job_errors,
                "timeouts": stats.job_timeouts,
                "batches": stats.batch_failures,
                "total": stats.errors_total,
            },
            "served": {
                "lru": stats.lru_hits,
                "disk": stats.disk_hits,
                "coalesced": stats.coalesced,
                "computed": stats.computed,
            },
            "cache_hit_rate": served_without_execution / stats.jobs if stats.jobs else 0.0,
            "lru": {
                "size": len(self.lru),
                "capacity": self.lru.capacity,
                "hits": self.lru.hits,
                "misses": self.lru.misses,
                "evictions": self.lru.evictions,
                "hit_rate": self.lru.hit_rate,
            },
            "disk_cache": (
                None
                if self.disk is None
                else {
                    "path": str(self.disk.path),
                    "hits": self.disk.hits,
                    "misses": self.disk.misses,
                    "store_failures": self.disk.store_failures,
                }
            ),
            "batches": {
                "count": stats.batches,
                "jobs": stats.batched_jobs,
                "max_size": stats.max_batch_size,
                "mean_size": stats.batched_jobs / stats.batches if stats.batches else 0.0,
            },
            "latency_seconds": {
                "count": len(latencies),
                "mean": sum(latencies) / len(latencies) if latencies else None,
                "p50": percentile(latencies, 0.50),
                "p95": percentile(latencies, 0.95),
            },
            "queue_depth": len(self._queue),
            "inflight": len(self._inflight),
            "workers": self.config.workers,
            "pool": "resident" if self._pool is not None else "inline",
            "http": {
                "connections": stats.connections,
                "requests": stats.http_requests,
            },
            "admission": {
                "max_pending_jobs": self.config.max_pending_jobs,
                "quota_tokens": self.config.quota_tokens,
                "quota_refill_per_second": (
                    self.config.quota_refill_per_second if self.quotas else None
                ),
                "queue_full_rejections": stats.admission_rejections,
                "quota_rejections": stats.quota_rejections,
                "drain_rejections": stats.drain_rejections,
                "draining": self._draining,
            },
        }


__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "ExplorationService",
    "NormalizedRequest",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "TokenBuckets",
    "percentile",
    "states_explored",
]
