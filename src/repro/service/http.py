"""Asyncio HTTP/JSON front-end for the exploration service (API v1).

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
frameworks, no new dependencies — serving one versioned surface:

* ``GET /v1/healthz`` — liveness (status, uptime, worker mode, build);
* ``GET /v1/stats``   — cache hit rates, batching, latency percentiles,
  admission/quota accounting, keep-alive connection reuse;
* ``GET /v1/metrics`` — the process-wide metrics registry in Prometheus
  text exposition format;
* ``POST /v1/explore`` — one litmus job request (see
  :meth:`~repro.service.core.ExplorationService.normalize` for the body);
* ``POST /v1/queue/<op>`` — the distributed work-queue protocol
  (:class:`~repro.distrib.http_backend.QueueHttpApi`): fleets of
  ``promising-arm work`` claim leased items here with no shared
  filesystem, fencing tokens intact over the wire;
* ``POST /v1/shutdown`` — graceful drain and stop (CI, the benchmark).

Unversioned paths (the PR 4 protocol) keep answering, tagged with a
``Deprecation`` header, so old clients survive the cutover.

Connections are **keep-alive** with pipelining: requests are parsed as
they arrive, each runs concurrently (bounded per connection), and
responses are written strictly in request order, as HTTP/1.1 requires.
Only the *read* of a request runs under a deadline; exploration time is
governed by per-job budgets, and an idle keep-alive connection is closed
quietly after :data:`KEEPALIVE_IDLE_TIMEOUT`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import math
import time
from dataclasses import dataclass, field
from typing import Optional, Union

from ..obs import metrics
from ..obs.logging import bind, get_logger, log_event, new_request_id, sanitize_request_id
from .core import ExplorationService, ServiceConfig

_log = get_logger("service.http")

#: Content type of the ``GET /metrics`` payload (Prometheus text
#: exposition format); JSON everywhere else.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Version prefix of the current HTTP surface.
API_PREFIX = "/v1"

#: Identity header the per-client explore quotas key on.
CLIENT_ID_HEADER = "x-client-id"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Ceiling on any request body; individual fields have tighter limits.
MAX_BODY_BYTES = 1 << 20

#: Ceiling on the request line + headers, and on the header count.
MAX_HEADER_BYTES = 16 * 1024
MAX_HEADERS = 100

#: A client gets this long (seconds) to deliver its complete request.
#: Exploration time is *not* under this clock — only the read is — so a
#: stalled or byte-dripping connection cannot pin a handler forever.
READ_TIMEOUT = 30.0

#: An idle keep-alive connection (no new request line) is closed quietly
#: after this long.
KEEPALIVE_IDLE_TIMEOUT = 120.0

#: Pipelined requests allowed in flight at once on one connection; the
#: reader stops parsing further requests (TCP backpressure) beyond this.
MAX_INFLIGHT_PER_CONNECTION = 32

_HTTP_CONNECTIONS = metrics.counter(
    "service_http_connections_total", "TCP connections accepted by the service front-end."
)
_HTTP_REQUESTS = metrics.counter(
    "service_http_requests_total",
    "HTTP requests served, by API surface (v1 or deprecated legacy paths).",
    labels=("api",),
)


@dataclass
class _Response:
    """One response awaiting its turn on the connection's write queue."""

    status: int
    payload: Union[dict, str]
    request_id: str
    headers: dict = field(default_factory=dict)
    close: bool = False


@dataclass(eq=False)
class _Connection:
    """Per-connection bookkeeping (the server's drain logic polls busy)."""

    writer: asyncio.StreamWriter
    busy: int = 0
    broken: bool = False


class ServiceServer:
    """Bind an :class:`ExplorationService` to a listening TCP socket."""

    def __init__(
        self,
        service: ExplorationService,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        queue_backend=None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._connections: set[_Connection] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        # The /v1/queue mount: an explicit backend wins (tests inject
        # clock-controlled ledgers), else the configured URL, else a
        # fresh in-memory queue private to this server.
        from ..distrib.backend import MemoryBackend, open_backend
        from ..distrib.http_backend import QueueHttpApi

        if queue_backend is None:
            if service.config.queue_url:
                queue_backend = open_backend(service.config.queue_url)
            else:
                queue_backend = MemoryBackend()
        self.queue_backend = queue_backend
        self.queue_api = QueueHttpApi(queue_backend)

    async def start(self) -> tuple[str, int]:
        """Start the service and the listener; returns ``(host, port)``.

        Binding port ``0`` picks an ephemeral port, reported back here —
        that is how the tests and the benchmark avoid port collisions.
        """
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def stop(self) -> None:
        """Graceful stop: no new connections, drain work, then tear down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Everything accepted finishes (new cold arrivals get 503 +
        # Retry-After); only a drain-timeout overrun is hard-failed by
        # service.stop() below.
        await self.service.drain(timeout=self.service.config.drain_timeout)
        # Give handlers a moment to flush responses already computed,
        # then close the (now idle) keep-alive connections under them.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and any(c.busy for c in self._connections):
            await asyncio.sleep(0.01)
        for connection in list(self._connections):
            connection.writer.close()
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=5.0)
            for task in list(self._conn_tasks):
                task.cancel()
        await self.service.stop()
        self.queue_backend.close()
        self._shutdown.set()

    # -- connection handling -------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        connection = _Connection(writer)
        self._connections.add(connection)
        self.service.stats.connections += 1
        _HTTP_CONNECTIONS.inc()
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_loop(connection, responses))
        inflight = asyncio.Semaphore(MAX_INFLIGHT_PER_CONNECTION)
        request_tasks: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        try:
            first = True
            while True:
                # Waiting for the *next* request line is the keep-alive
                # idle state: time it out quietly.  A connection that sent
                # nothing at all still gets the old explicit 400.
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(),
                        READ_TIMEOUT if first else KEEPALIVE_IDLE_TIMEOUT,
                    )
                except asyncio.TimeoutError:
                    if first:
                        await self._finish(
                            responses,
                            connection,
                            400,
                            f"request not received within {READ_TIMEOUT}s",
                        )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not request_line:
                    break  # EOF: the client hung up between requests.
                try:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader, request_line), READ_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    await self._finish(
                        responses,
                        connection,
                        400,
                        f"request not received within {READ_TIMEOUT}s",
                    )
                    break
                except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, ConnectionError):
                    await self._finish(
                        responses, connection, 400, "truncated or oversized request"
                    )
                    break
                if len(parsed) == 2:
                    # A parser error: framing is no longer trustworthy, so
                    # answer it and close.
                    status, payload = parsed
                    await self._finish(responses, connection, status, payload["error"])
                    break
                first = False
                method, path, headers, body = parsed
                close_requested = self._wants_close(parsed)
                await inflight.acquire()
                future = loop.create_future()
                connection.busy += 1
                await responses.put(future)
                request_task = asyncio.create_task(
                    self._process(method, path, headers, body, future, close_requested, inflight)
                )
                request_tasks.add(request_task)
                request_task.add_done_callback(request_tasks.discard)
                if close_requested:
                    break
        finally:
            await responses.put(None)
            with contextlib.suppress(Exception):
                await writer_task
            for request_task in request_tasks:
                request_task.cancel()
            self._connections.discard(connection)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    def _wants_close(parsed) -> bool:
        _method, _path, headers, _body = parsed
        tokens = {t.strip().lower() for t in headers.get("connection", "").split(",")}
        if "close" in tokens:
            return True
        # HTTP/1.0 requesters must opt *in* to keep-alive.
        version = headers.get("_http_version", "HTTP/1.1")
        return version == "HTTP/1.0" and "keep-alive" not in tokens

    async def _finish(
        self, responses: asyncio.Queue, connection: _Connection, status: int, error: str
    ) -> None:
        """Queue a connection-closing error response (parser failures)."""
        future = asyncio.get_running_loop().create_future()
        connection.busy += 1
        future.set_result(
            _Response(status, {"ok": False, "error": error}, new_request_id(), close=True)
        )
        await responses.put(future)

    async def _write_loop(self, connection: _Connection, responses: asyncio.Queue) -> None:
        """Write responses strictly in request order (the pipelining law)."""
        writer = connection.writer
        while True:
            future = await responses.get()
            if future is None:
                return
            try:
                response: _Response = await future
            except asyncio.CancelledError:
                connection.busy -= 1
                raise
            except Exception:
                response = _Response(
                    500, {"ok": False, "error": "internal server error"}, new_request_id()
                )
            try:
                if not connection.broken:
                    writer.write(self._encode(response))
                    await writer.drain()
            except (ConnectionError, BrokenPipeError):
                # The client vanished: swallow the rest of the pipeline's
                # writes but keep consuming futures so handlers finish.
                connection.broken = True
            finally:
                connection.busy -= 1

    def _encode(self, response: _Response) -> bytes:
        if isinstance(response.payload, str):
            body = response.payload.encode()
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(response.payload).encode()
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {response.status} {_STATUS_TEXT.get(response.status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"X-Request-Id: {response.request_id}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close" if response.close else "Connection: keep-alive")
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + body

    async def _process(
        self,
        method: str,
        path: str,
        headers: dict,
        body: bytes,
        future: asyncio.Future,
        close_requested: bool,
        inflight: asyncio.Semaphore,
    ) -> None:
        """Run one request to completion and resolve its ordered slot."""
        # A client-supplied X-Request-Id (sanitized) wins, so one id can
        # correlate client logs, service logs, and the echoed header.
        request_id = sanitize_request_id(headers.get("x-request-id")) or new_request_id()
        start = time.perf_counter()
        try:
            with bind(request_id=request_id):
                status, payload, extra = await self._route(
                    method, path, headers, body, request_id
                )
                # Per-request lines are debug: at keep-alive request rates
                # the aggregate lives in the metrics (request counter +
                # latency histogram) and only anomalies earn an info line.
                log_event(
                    _log,
                    "request",
                    level=logging.DEBUG if status < 400 else logging.INFO,
                    method=method,
                    path=path,
                    status=status,
                    seconds=round(time.perf_counter() - start, 6),
                )
        except Exception:
            status, payload, extra = 500, {"ok": False, "error": "internal server error"}, {}
        finally:
            inflight.release()
        if isinstance(payload, dict) and "retry_after" in payload:
            extra["Retry-After"] = str(max(1, math.ceil(payload["retry_after"])))
        if not future.done():
            future.set_result(_Response(status, payload, request_id, extra, close_requested))

    async def _read_request(self, reader: asyncio.StreamReader, request_line: bytes):
        """Parse request line + headers + body, with hard size caps."""
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"ok": False, "error": "malformed request line"}
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        headers = {}
        header_bytes = len(request_line)
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES or len(headers) >= MAX_HEADERS:
                return 431, {"ok": False, "error": "request headers too large"}
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if len(parts) >= 3:
            headers["_http_version"] = parts[2].upper()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, {"ok": False, "error": "malformed Content-Length"}
        if length < 0:
            return 400, {"ok": False, "error": "malformed Content-Length"}
        if length > MAX_BODY_BYTES:
            return 413, {"ok": False, "error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(
        self, method: str, path: str, headers: dict, body: bytes, request_id: str
    ) -> tuple[int, Union[dict, str], dict]:
        versioned = path == API_PREFIX or path.startswith(API_PREFIX + "/")
        base = path[len(API_PREFIX) :] if versioned else path
        _HTTP_REQUESTS.inc(api="v1" if versioned else "legacy")
        self.service.stats.http_requests += 1
        # The legacy (unversioned) surface still answers, but every
        # response carries a Deprecation marker pointing at /v1.
        extra: dict = (
            {}
            if versioned
            else {"Deprecation": "true", "Link": f'<{API_PREFIX}>; rel="successor-version"'}
        )
        if base == "/healthz":
            if method != "GET":
                return 405, {"ok": False, "error": "use GET /healthz"}, extra
            return 200, self.service.healthz(), extra
        if base == "/stats":
            if method != "GET":
                return 405, {"ok": False, "error": "use GET /stats"}, extra
            return 200, self.service.stats_snapshot(), extra
        if base == "/metrics":
            if method != "GET":
                return 405, {"ok": False, "error": "use GET /metrics"}, extra
            return 200, self.service.metrics_text(), extra
        if base == "/explore":
            if method != "POST":
                return 405, {"ok": False, "error": "use POST /explore"}, extra
            try:
                payload = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}, extra
            client_id = sanitize_request_id(headers.get(CLIENT_ID_HEADER))
            status, response = await self.service.handle_explore(payload, client_id=client_id)
            if isinstance(response, dict):
                response.setdefault("request_id", request_id)
            return status, response, extra
        if base.startswith("/queue/") and versioned:
            # The fleet protocol lives only on the versioned surface —
            # it post-dates the legacy one, so there is nothing to shim.
            if method != "POST":
                return 405, {"ok": False, "error": "queue ops use POST"}, extra
            op = base[len("/queue/") :]
            try:
                payload = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}, extra
            status, response = self.queue_api.handle(op, payload)
            return status, response, extra
        if base == "/shutdown":
            if method != "POST":
                return 405, {"ok": False, "error": "use POST /shutdown"}, extra
            # Stop admitting new cold work immediately; run_server's stop()
            # drains what was accepted before tearing the listener down.
            self.service.begin_drain()
            self._shutdown.set()
            return 200, {"ok": True, "stopping": True}, extra
        return 404, {"ok": False, "error": f"no such endpoint {path!r}"}, extra


def run_server(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    on_ready=None,
    queue_backend=None,
) -> None:
    """Blocking entry point: serve until ``POST /shutdown`` or Ctrl-C.

    ``on_ready(host, port)`` (optional) fires once the socket is bound —
    with ``port=0`` that is the only way to learn the chosen port.
    ``queue_backend`` (optional) overrides the ledger mounted at
    ``/v1/queue`` (tests inject clock-controlled ones).
    """

    async def _main() -> None:
        server = ServiceServer(
            ExplorationService(config), host, port, queue_backend=queue_backend
        )
        bound_host, bound_port = await server.start()
        print(
            f"promising-arm service listening on http://{bound_host}:{bound_port} "
            f"({server.service.healthz()['pool']} pool, "
            f"{server.service.config.workers} workers)",
            flush=True,
        )
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        try:
            await server.wait_shutdown()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


__all__ = [
    "API_PREFIX",
    "CLIENT_ID_HEADER",
    "KEEPALIVE_IDLE_TIMEOUT",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_HEADERS",
    "MAX_INFLIGHT_PER_CONNECTION",
    "PROMETHEUS_CONTENT_TYPE",
    "READ_TIMEOUT",
    "ServiceServer",
    "run_server",
]
