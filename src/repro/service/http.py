"""Asyncio HTTP/JSON front-end for the exploration service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
frameworks, no new dependencies — speaking exactly the protocol the
blocking :mod:`repro.service.client` consumes:

* ``GET /healthz`` — liveness (status, uptime, worker mode, build info);
* ``GET /stats``   — cache hit rates, batch sizes, latency percentiles;
* ``GET /metrics`` — the process-wide metrics registry in Prometheus
  text exposition format (kernel, pool, and cache-layer series);
* ``POST /explore`` — one litmus job request (see
  :meth:`~repro.service.core.ExplorationService.normalize` for the body);
* ``POST /shutdown`` — graceful stop (used by CI and the benchmark).

Connections are one-request-per-connection (``Connection: close``): the
service's economics are dominated by exploration and caching, not TCP
handshakes on localhost, and the absence of keep-alive state keeps the
parser ~100 lines and robust.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional, Union

from ..obs.logging import bind, get_logger, log_event, new_request_id, sanitize_request_id
from .core import ExplorationService, ServiceConfig

_log = get_logger("service.http")

#: Content type of the ``GET /metrics`` payload (Prometheus text
#: exposition format); JSON everywhere else.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Ceiling on any request body; individual fields have tighter limits.
MAX_BODY_BYTES = 1 << 20

#: Ceiling on the request line + headers, and on the header count.
MAX_HEADER_BYTES = 16 * 1024
MAX_HEADERS = 100

#: A client gets this long (seconds) to deliver its complete request.
#: Exploration time is *not* under this clock — only the read is — so a
#: stalled or byte-dripping connection cannot pin a handler forever.
READ_TIMEOUT = 30.0


class ServiceServer:
    """Bind an :class:`ExplorationService` to a listening TCP socket."""

    def __init__(
        self,
        service: ExplorationService,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> tuple[str, int]:
        """Start the service and the listener; returns ``(host, port)``.

        Binding port ``0`` picks an ephemeral port, reported back here —
        that is how the tests and the benchmark avoid port collisions.
        """
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()
        self._shutdown.set()

    # -- connection handling -------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_id = new_request_id()
        try:
            status, payload, request_id = await self._respond(reader, request_id)
        except Exception:
            status, payload = 500, {"ok": False, "error": "internal server error"}
        # /metrics answers Prometheus text; everything else is JSON.
        if isinstance(payload, str):
            body = payload.encode()
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"X-Request-Id: {request_id}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader, request_id: str
    ) -> tuple[int, Union[dict, str], str]:
        # Only the *read* runs under the deadline: a slow or silent
        # client is cut off, while a legitimately slow exploration in
        # _route keeps its own per-job timeout budget.
        try:
            parsed = await asyncio.wait_for(self._read_request(reader), READ_TIMEOUT)
        except asyncio.TimeoutError:
            return (
                400,
                {"ok": False, "error": f"request not received within {READ_TIMEOUT}s"},
                request_id,
            )
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, {"ok": False, "error": "truncated or oversized request"}, request_id
        if isinstance(parsed, tuple) and len(parsed) == 2:
            return (*parsed, request_id)  # an error response from the parser
        method, path, headers, body = parsed
        # A client-supplied X-Request-Id (sanitized) wins, so one id can
        # correlate client logs, service logs, and the echoed header.
        request_id = sanitize_request_id(headers.get("x-request-id")) or request_id
        start = time.perf_counter()
        with bind(request_id=request_id):
            status, payload = await self._route(method, path, body)
            if path == "/explore" and isinstance(payload, dict):
                payload.setdefault("request_id", request_id)
            log_event(
                _log,
                "request",
                method=method,
                path=path,
                status=status,
                seconds=round(time.perf_counter() - start, 6),
            )
        return status, payload, request_id

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse request line + headers + body, with hard size caps."""
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"ok": False, "error": "malformed request line"}
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        headers = {}
        header_bytes = len(request_line)
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES or len(headers) >= MAX_HEADERS:
                return 431, {"ok": False, "error": "request headers too large"}
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, {"ok": False, "error": "malformed Content-Length"}
        if length < 0:
            return 400, {"ok": False, "error": "malformed Content-Length"}
        if length > MAX_BODY_BYTES:
            return 413, {"ok": False, "error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, Union[dict, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"ok": False, "error": "use GET /healthz"}
            return 200, self.service.healthz()
        if path == "/stats":
            if method != "GET":
                return 405, {"ok": False, "error": "use GET /stats"}
            return 200, self.service.stats_snapshot()
        if path == "/metrics":
            if method != "GET":
                return 405, {"ok": False, "error": "use GET /metrics"}
            return 200, self.service.metrics_text()
        if path == "/explore":
            if method != "POST":
                return 405, {"ok": False, "error": "use POST /explore"}
            try:
                payload = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"ok": False, "error": f"invalid JSON body: {exc}"}
            return await self.service.handle_explore(payload)
        if path == "/shutdown":
            if method != "POST":
                return 405, {"ok": False, "error": "use POST /shutdown"}
            self._shutdown.set()
            return 200, {"ok": True, "stopping": True}
        return 404, {"ok": False, "error": f"no such endpoint {path!r}"}


def run_server(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    on_ready=None,
) -> None:
    """Blocking entry point: serve until ``POST /shutdown`` or Ctrl-C.

    ``on_ready(host, port)`` (optional) fires once the socket is bound —
    with ``port=0`` that is the only way to learn the chosen port.
    """

    async def _main() -> None:
        server = ServiceServer(ExplorationService(config), host, port)
        bound_host, bound_port = await server.start()
        print(
            f"promising-arm service listening on http://{bound_host}:{bound_port} "
            f"({server.service.healthz()['pool']} pool, "
            f"{server.service.config.workers} workers)",
            flush=True,
        )
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        try:
            await server.wait_shutdown()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_HEADERS",
    "READ_TIMEOUT",
    "ServiceServer",
    "run_server",
]
