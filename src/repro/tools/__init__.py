"""Command-line interface and model-comparison utilities."""

from .compare import ModelComparison, compare_models, observables
from .cli import build_parser, main

__all__ = ["ModelComparison", "compare_models", "observables", "build_parser", "main"]
