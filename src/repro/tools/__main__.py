"""``python -m repro.tools`` — the ``promising-arm`` CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
