"""Command-line interface: ``promising-arm``.

Sub-commands mirror how the paper's rmem-based tool is used:

* ``run`` — exhaustively explore a litmus file (or a catalogue test) and
  print the allowed final states;
* ``interactive`` — step through an execution transition by transition;
* ``catalogue`` — list the built-in litmus tests and their verdicts;
* ``agreement`` — compare the promising and axiomatic models on the
  generated litmus battery;
* ``sweep`` — run a battery across several models through the parallel
  sweep harness, with a persistent result cache and a JSON report;
* ``fuzz`` — differential fuzzing: run the cycle-generated corpus across
  models and architectures, reporting every cross-model disagreement as a
  counterexample with its reproducing test source;
* ``serve`` — start the long-lived exploration service: an HTTP/JSON
  front-end over a process-resident LRU, the persistent result cache,
  and a warm worker pool, with request coalescing and micro-batching;
* ``work`` — join a distributed fleet: claim leased litmus jobs from a
  shared work backend (``sweep``/``fuzz`` ``--distributed`` enqueue
  them), execute them, and write results into the shared cache.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import tempfile
from pathlib import Path

from ..harness import DEFAULT_MODELS, MODELS, run_fuzz, run_sweep
from ..lang.kinds import ARCH_ALIASES, Arch, parse_arch
from ..obs import LOG_FORMATS, configure_logging
from ..litmus import (
    all_tests,
    attach_expected,
    check_agreement,
    generate_battery,
    generate_cycle_battery,
    get_test,
    run_axiomatic,
    run_promising,
)
from ..litmus.cycles import FAMILIES_BY_NAME
from ..litmus.format import parse_litmus
from ..promising import ExploreConfig, InteractiveSession


def _arch(name: str) -> Arch:
    # Historical CLI behaviour: unknown spellings fall back to ARM (the
    # default), while the shared alias table decides what is known.
    return parse_arch(name) or Arch.ARM


def _positive_int(text: str) -> int:
    # Reject out-of-range sampling knobs at parse time (exit 2) instead
    # of letting RandomWalks raise a traceback mid-exploration.
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _load_test(args: argparse.Namespace):
    if args.file:
        text = Path(args.file).read_text()
        parsed = parse_litmus(text, unroll_bound=args.loop_bound)
        return parsed.test, parsed.arch
    return get_test(args.test), _arch(args.arch)


def _search_kwargs(args: argparse.Namespace) -> dict:
    """Kernel-level knobs shared by every explorer config the CLI builds."""
    return dict(
        loop_bound=args.loop_bound,
        dedup=not getattr(args, "no_dedup", False),
        strategy=getattr(args, "strategy", "dfs"),
        samples=getattr(args, "samples", 256),
        sample_depth=getattr(args, "sample_depth", 4096),
        seed=getattr(args, "seed", 0),
        backend=getattr(args, "backend", "object"),
    )


def _explore_config(args: argparse.Namespace) -> ExploreConfig:
    return ExploreConfig(
        cert_memo=not getattr(args, "no_cert_memo", False),
        **_search_kwargs(args),
    )


def _flat_config(args: argparse.Namespace) -> "FlatConfig":
    from ..flat import FlatConfig

    return FlatConfig(**_search_kwargs(args))


def _distrib_config(args: argparse.Namespace):
    """``--distributed`` knobs → a :class:`DistribConfig` (or ``None``)."""
    if not getattr(args, "distributed", False):
        return None
    from ..distrib import DistribConfig
    from ..harness import default_workers

    if getattr(args, "external_workers", False):
        fleet = 0
    else:
        fleet = args.workers if args.workers > 0 else default_workers()
    return DistribConfig(
        backend_url=getattr(args, "backend_url", None) or "",
        workers=fleet,
        stall_timeout=getattr(args, "stall_timeout", None),
    )


def cmd_run(args: argparse.Namespace) -> int:
    test, arch = _load_test(args)
    result = run_promising(test, arch, _explore_config(args))
    print(f"test      : {test.name}")
    print(f"model     : promising ({arch})")
    print(f"condition : {test.condition!r}")
    verdict = result.verdict.value
    if result.truncated:
        verdict += "  (WARNING: exploration truncated, verdict unverified)"
    elif result.stats.get("strategy") == "sample":
        verdict += "  (sampled: under-approximation, 'forbidden' unverified)"
    print(f"verdict   : {verdict}")
    if result.stats:
        counters = ", ".join(
            f"{k}={result.stats[k]}"
            for k in ("promise_states", "dedup_hits", "cert_memo_hits", "cert_calls")
            if k in result.stats
        )
        print(f"stats     : {counters}")
        if result.stats.get("strategy") == "sample":
            print(
                f"sampling  : {result.stats.get('samples_run', 0)} walks, "
                f"{result.stats.get('unique_sample_states', 0)} unique states, "
                f"coverage est. {result.stats.get('coverage_estimate')}"
            )
    print(f"time      : {result.elapsed_seconds:.3f}s")
    print("final states:")
    print("  " + result.outcomes.describe(test.program.loc_names).replace("\n", "\n  "))
    if args.axiomatic:
        ax = run_axiomatic(test, arch)
        if result.stats.get("strategy") == "sample":
            # A sample is a sound under-approximation: containment is the
            # strongest checkable relation (equality would cry wolf on
            # every outcome the walks happened to miss).
            contained = set(result.outcomes) <= set(ax.outcomes)
            relation = "contained in axiomatic" if contained else "NOT CONTAINED in axiomatic"
            print(f"axiomatic verdict: {ax.verdict.value} (sampled outcomes {relation})")
        else:
            agree = set(ax.outcomes) == set(result.outcomes)
            print(
                f"axiomatic verdict: {ax.verdict.value} "
                f"(outcome sets {'agree' if agree else 'DIFFER'})"
            )
    return 0


def cmd_interactive(args: argparse.Namespace) -> int:
    test, arch = _load_test(args)
    session = InteractiveSession(test.program, arch, loop_bound=args.loop_bound)
    print(f"interactive exploration of {test.name} ({arch}); commands: <n>, undo, reset, quit")
    while True:
        print()
        print(session.show())
        if session.finished or session.stuck:
            return 0
        try:
            command = input("step> ").strip()
        except EOFError:
            return 0
        if command in ("q", "quit", "exit"):
            return 0
        if command == "undo":
            session.undo()
        elif command == "reset":
            session.reset()
        elif command.isdigit():
            session.step(int(command))
        else:
            print(f"unknown command {command!r}")


def cmd_catalogue(args: argparse.Namespace) -> int:
    arch = _arch(args.arch)
    for test in all_tests():
        expected = test.expected_verdict(arch)
        print(f"{test.name:24s} {expected.value if expected else '-':10s} {test.description}")
    return 0


def cmd_agreement(args: argparse.Namespace) -> int:
    arch = _arch(args.arch)
    tests = generate_battery(max_tests=args.max_tests)
    report = check_agreement(
        tests,
        arch,
        _explore_config(args),
        workers=args.workers,
        cache=args.cache_dir,
        timeout=args.timeout,
    )
    print(report.describe())
    return 0 if not report.disagreements else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    arch = _arch(args.arch)
    models = tuple(m.strip() for m in args.models.split(",") if m.strip())
    unknown = [m for m in models if m not in MODELS]
    if unknown:
        print(f"unknown model(s) {', '.join(unknown)}; choose from {', '.join(MODELS)}")
        return 2
    if not models:
        print(f"no models given; choose from {', '.join(MODELS)}")
        return 2
    tests = generate_battery(max_tests=args.max_tests)
    if args.catalogue:
        tests = tests + [t for t in all_tests() if t.program.n_threads <= 3]
    from ..axiomatic import AxiomaticConfig

    sweep = run_sweep(
        tests,
        models,
        arch,
        workers=args.workers,
        timeout=args.timeout,
        cache=args.cache_dir,
        report_path=args.report,
        explore_config=_explore_config(args),
        axiomatic_config=AxiomaticConfig(loop_bound=args.loop_bound),
        flat_config=_flat_config(args),
        distrib=_distrib_config(args),
    )
    print(sweep.describe())
    if args.report:
        print(f"report written to {args.report}")
    return 0 if sweep.ok else 1


_ARCH_NAMES = tuple(ARCH_ALIASES)


def cmd_fuzz(args: argparse.Namespace) -> int:
    models = tuple(m.strip() for m in args.models.split(",") if m.strip())
    unknown = [m for m in models if m not in MODELS]
    if unknown:
        print(f"unknown model(s) {', '.join(unknown)}; choose from {', '.join(MODELS)}")
        return 2
    if not models:
        print(f"no models given; choose from {', '.join(MODELS)}")
        return 2
    arch_names = [a.strip() for a in args.archs.split(",") if a.strip()]
    unknown_archs = [a for a in arch_names if a.lower() not in _ARCH_NAMES]
    if unknown_archs:
        print(
            f"unknown arch(s) {', '.join(unknown_archs)}; "
            f"choose from {', '.join(_ARCH_NAMES)}"
        )
        return 2
    if not arch_names:
        print(f"no architectures given; choose from {', '.join(_ARCH_NAMES)}")
        return 2
    archs = tuple(_arch(a) for a in arch_names)
    families = None
    if args.families:
        families = [f.strip() for f in args.families.split(",") if f.strip()]
        unknown_families = [f for f in families if f not in FAMILIES_BY_NAME]
        if unknown_families:
            print(
                f"unknown cycle family(ies) {', '.join(unknown_families)}; "
                f"choose from {', '.join(FAMILIES_BY_NAME)}"
            )
            return 2
    from ..axiomatic import AxiomaticConfig

    tests = generate_cycle_battery(
        families=families, max_tests=args.max_tests, max_per_family=args.max_per_family
    )
    with contextlib.ExitStack() as stack:
        cache_dir = args.cache_dir
        if args.expected and cache_dir is None:
            # The oracle sweep and the fuzzed axiomatic jobs share their
            # fingerprints; an ephemeral cache makes the oracle free
            # instead of enumerating the whole corpus twice.
            cache_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="promising-fuzz-cache-")
            )
        if args.expected:
            # Attach the axiomatic-oracle verdict per architecture; the
            # fuzz run then also checks each model against it.  The oracle
            # uses the same config as the fuzzed axiomatic jobs, so the
            # cache computes each outcome set only once.
            tests = attach_expected(
                tests,
                archs,
                workers=args.workers,
                timeout=args.timeout,
                cache=cache_dir,
                axiomatic_config=AxiomaticConfig(loop_bound=args.loop_bound),
            )

        fuzz = run_fuzz(
            tests,
            models,
            archs,
            workers=args.workers,
            timeout=args.timeout,
            cache=cache_dir,
            report_path=args.report,
            explore_config=_explore_config(args),
            axiomatic_config=AxiomaticConfig(loop_bound=args.loop_bound),
            flat_config=_flat_config(args),
            distrib=_distrib_config(args),
        )
    print(fuzz.describe())
    if args.report:
        print(f"report written to {args.report}")
    return 0 if fuzz.ok else 1


def cmd_work(args: argparse.Namespace) -> int:
    from ..distrib import run_worker

    stats = run_worker(
        args.backend_url,
        args.cache_dir,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
        max_jobs=args.max_jobs,
        idle_exit_seconds=args.idle_exit,
    )
    print(
        f"worker {stats.worker_id}: {stats.claimed} claimed, "
        f"{stats.computed} computed, {stats.cache_hits} cache hits, "
        f"{stats.failures} failures, {stats.lost_leases} lost leases"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from ..service import ServiceConfig, run_server

    config = ServiceConfig(
        workers=args.workers,
        batch_max_delay=args.batch_delay_ms / 1000.0,
        batch_max_size=args.batch_max_size,
        lru_capacity=args.lru_capacity,
        cache_dir=args.cache_dir,
        default_timeout=args.timeout,
        max_pending_jobs=args.max_pending_jobs,
        quota_tokens=args.quota_tokens,
        quota_refill_per_second=args.quota_refill,
        queue_url=args.queue_url,
    )
    run_server(config, args.host, args.port)
    return 0


def _add_distrib_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--distributed", action="store_true",
                        help="run the batch on a distributed work backend: --workers "
                             "fleet processes are spawned locally unless "
                             "--external-workers attaches to an existing fleet")
    parser.add_argument("--backend-url", default=None,
                        help="work backend shared with the fleet (sqlite:///path or "
                             "http://host:port; default: ephemeral SQLite tmpdir)")
    parser.add_argument("--external-workers", action="store_true",
                        help="spawn no local workers; an external fleet "
                             "(promising-arm work) serves the queue")
    parser.add_argument("--stall-timeout", type=float, default=None,
                        help="abort if no distributed item completes for this long")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="promising-arm",
        description="Promising-ARM/RISC-V exhaustive and interactive exploration tool",
    )
    from ..explore import BACKENDS, STRATEGIES

    parser.add_argument("--arch", default="arm", help="arm (default) or riscv")
    parser.add_argument("--loop-bound", type=int, default=2, help="loop unrolling bound")
    parser.add_argument("--no-dedup", action="store_true",
                        help="disable state deduplication (ablation; slower, same outcomes)")
    parser.add_argument("--no-cert-memo", action="store_true",
                        help="disable certification memoisation (ablation)")
    parser.add_argument("--strategy", choices=STRATEGIES, default="dfs",
                        help="search strategy: dfs/bfs enumerate exhaustively, "
                             "sample runs seeded bounded random walks "
                             "(sound under-approximation for huge state spaces)")
    parser.add_argument("--samples", type=_positive_int, default=256,
                        help="random walks performed by --strategy sample")
    parser.add_argument("--sample-depth", type=_positive_int, default=4096,
                        help="step bound of one random walk before restart")
    parser.add_argument("--seed", type=int, default=0,
                        help="PRNG seed of --strategy sample (same seed, same outcomes)")
    parser.add_argument("--backend", choices=BACKENDS, default="object",
                        help="execution backend: object walks the reference "
                             "dataclass states; packed compiles the program once "
                             "and explores interned integer-tuple states "
                             "(same outcomes, much faster on large state spaces)")
    parser.add_argument("--log-format", choices=LOG_FORMATS, default="text",
                        help="structured log output: text (default) or json "
                             "(one JSON object per line on stderr)")
    parser.add_argument("--log-level", default="info",
                        help="log verbosity: debug, info (default), warning, error")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="exhaustively explore a litmus test")
    run_parser.add_argument("--file", help="path to a .litmus file")
    run_parser.add_argument("--test", help="name of a catalogue test", default="MP")
    run_parser.add_argument("--axiomatic", action="store_true", help="also run the axiomatic model")
    run_parser.set_defaults(func=cmd_run)

    inter_parser = sub.add_parser("interactive", help="step through executions interactively")
    inter_parser.add_argument("--file", help="path to a .litmus file")
    inter_parser.add_argument("--test", help="name of a catalogue test", default="MP")
    inter_parser.set_defaults(func=cmd_interactive)

    cat_parser = sub.add_parser("catalogue", help="list built-in litmus tests")
    cat_parser.set_defaults(func=cmd_catalogue)

    agree_parser = sub.add_parser("agreement", help="promising vs axiomatic agreement run")
    agree_parser.add_argument("--max-tests", type=int, default=40)
    agree_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (0 = one per CPU)")
    agree_parser.add_argument("--cache-dir", default=None, help="persistent result cache directory")
    agree_parser.add_argument("--timeout", type=float, default=None,
                              help="per-job timeout in seconds")
    agree_parser.set_defaults(func=cmd_agreement)

    sweep_parser = sub.add_parser(
        "sweep", help="run a litmus battery across models via the parallel harness"
    )
    sweep_parser.add_argument("--max-tests", type=int, default=40,
                              help="size of the generated battery")
    sweep_parser.add_argument("--models", default=",".join(DEFAULT_MODELS),
                              help="comma-separated: promising,axiomatic,flat,promising-naive")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (0 = one per CPU)")
    sweep_parser.add_argument("--cache-dir", default=None, help="persistent result cache directory")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              help="per-job timeout in seconds")
    sweep_parser.add_argument("--report", default=None,
                              help="write a JSON sweep report to this path")
    sweep_parser.add_argument("--catalogue", action="store_true",
                              help="also include the hand-written catalogue tests "
                                   "(those with at most 3 threads)")
    _add_distrib_args(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the cycle-generated corpus across models/archs",
    )
    fuzz_parser.add_argument("--max-tests", type=int, default=None,
                             help="truncate the generated corpus (default: full)")
    fuzz_parser.add_argument("--max-per-family", type=int, default=64,
                             help="cap per cycle family (default 64)")
    fuzz_parser.add_argument("--families", default=None,
                             help="comma-separated cycle families (default: all)")
    fuzz_parser.add_argument("--models", default="promising,axiomatic",
                             help="comma-separated: promising,axiomatic,flat,promising-naive")
    fuzz_parser.add_argument("--archs", default="arm,riscv",
                             help="comma-separated architectures (default arm,riscv)")
    fuzz_parser.add_argument("--workers", type=int, default=1,
                             help="worker processes (0 = one per CPU)")
    fuzz_parser.add_argument("--cache-dir", default=None, help="persistent result cache directory")
    fuzz_parser.add_argument("--timeout", type=float, default=None,
                             help="per-job timeout in seconds")
    fuzz_parser.add_argument("--report", default=None, help="write a JSON fuzz report to this path")
    fuzz_parser.add_argument("--expected", action="store_true",
                             help="attach axiomatic-oracle expected verdicts to the corpus")
    _add_distrib_args(fuzz_parser)
    fuzz_parser.set_defaults(func=cmd_fuzz)

    work_parser = sub.add_parser(
        "work",
        help="join a distributed fleet: claim and execute leased litmus jobs",
    )
    work_parser.add_argument("--backend-url", required=True,
                             help="shared work backend: http://host:port (a promising-arm "
                                  "serve queue, no shared filesystem needed), "
                                  "sqlite:///path/to/queue.db "
                                  "(or a bare path)")
    work_parser.add_argument("--cache-dir", default=None,
                             help="shared persistent result cache directory")
    work_parser.add_argument("--worker-id", default=None,
                             help="stable worker identity (default host-pid)")
    work_parser.add_argument("--lease-seconds", type=float, default=30.0,
                             help="claim lease length; heartbeats extend it while running")
    work_parser.add_argument("--poll-seconds", type=float, default=0.1,
                             help="idle back-off between claim attempts")
    work_parser.add_argument("--max-jobs", type=int, default=None,
                             help="exit after claiming this many items (default: serve forever)")
    work_parser.add_argument("--idle-exit", type=float, default=None,
                             help="exit after the queue has been empty this long")
    work_parser.set_defaults(func=cmd_work)

    serve_parser = sub.add_parser(
        "serve",
        help="start the long-lived exploration service (HTTP/JSON, warm worker pool)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8765,
                              help="bind port (0 = ephemeral, printed on start)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="resident worker processes (<=1 = inline executor)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="persistent result cache directory (shared with sweeps)")
    serve_parser.add_argument("--lru-capacity", type=int, default=4096,
                              help="entries kept in the in-process LRU result cache")
    serve_parser.add_argument("--batch-max-size", type=int, default=16,
                              help="most cold jobs dispatched in one micro-batch")
    serve_parser.add_argument("--batch-delay-ms", type=float, default=10.0,
                              help="micro-batch accumulation window in milliseconds")
    serve_parser.add_argument("--timeout", type=float, default=60.0,
                              help="default per-job deadline in seconds")
    serve_parser.add_argument("--max-pending-jobs", type=int, default=1024,
                              help="admission control: answer 429 + Retry-After once this "
                                   "many jobs are queued or in flight (0 = unlimited)")
    serve_parser.add_argument("--quota-tokens", type=float, default=None,
                              help="per-client token-bucket capacity for /v1/explore, keyed "
                                   "on X-Client-Id (one token per job; default: quotas off)")
    serve_parser.add_argument("--quota-refill", type=float, default=1.0,
                              help="tokens refilled per second per client")
    serve_parser.add_argument("--queue-url", default=None,
                              help="ledger mounted at /v1/queue for HTTP fleets "
                                   "(sqlite:///path or memory://name; default: fresh "
                                   "in-memory queue)")
    serve_parser.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_format, args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
