"""Cross-model comparison utilities.

The paper establishes (in Coq) that Promising-ARM/RISC-V is equivalent to
the axiomatic models, and validates the executable tool experimentally on
litmus batteries.  This module provides the experimental side for this
reproduction: run a program under two or three of the models — dispatched
through the sweep harness (:mod:`repro.harness`), so comparisons can be
parallelised and cached like any other sweep — and compare the projected
outcome sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..axiomatic import AxiomaticConfig
from ..flat import FlatConfig
from ..harness.cache import ResultCache
from ..harness.jobs import Job
from ..harness.scheduler import run_jobs
from ..lang import Program, statement_registers
from ..lang.kinds import Arch
from ..outcomes import OutcomeSet
from ..promising import ExploreConfig


@dataclass
class ModelComparison:
    """Projected outcome sets of the models on one program."""

    program: Program
    arch: Arch
    promising: OutcomeSet
    axiomatic: Optional[OutcomeSet] = None
    flat: Optional[OutcomeSet] = None
    naive: Optional[OutcomeSet] = None

    @property
    def promising_equals_axiomatic(self) -> Optional[bool]:
        if self.axiomatic is None:
            return None
        return set(self.promising) == set(self.axiomatic)

    @property
    def promising_equals_naive(self) -> Optional[bool]:
        if self.naive is None:
            return None
        return set(self.promising) == set(self.naive)

    @property
    def flat_subset_of_promising(self) -> Optional[bool]:
        """The Flat-style baseline is an approximation; we check containment."""
        if self.flat is None:
            return None
        return set(self.flat) <= set(self.promising)

    def describe(self) -> str:
        lines = [f"program {self.program.name or '<anonymous>'} on {self.arch}:"]
        lines.append(f"  promising : {len(self.promising)} outcomes")
        if self.axiomatic is not None:
            verdict = "==" if self.promising_equals_axiomatic else "!="
            lines.append(f"  axiomatic : {len(self.axiomatic)} outcomes ({verdict} promising)")
        if self.naive is not None:
            verdict = "==" if self.promising_equals_naive else "!="
            lines.append(f"  naive     : {len(self.naive)} outcomes ({verdict} promising)")
        if self.flat is not None:
            verdict = "⊆" if self.flat_subset_of_promising else "⊄"
            lines.append(f"  flat      : {len(self.flat)} outcomes ({verdict} promising)")
        return "\n".join(lines)


def observables(program: Program) -> tuple[dict[int, list[str]], list[int]]:
    """Default projection: the program's own registers and named locations."""
    regs = {
        tid: sorted(statement_registers(program.threads[tid]))
        for tid in program.thread_ids
    }
    locs = sorted(set(program.loc_names) | set(program.initial))
    return regs, locs


def compare_models(
    program: Program,
    arch: Arch = Arch.ARM,
    *,
    include_axiomatic: bool = True,
    include_flat: bool = False,
    include_naive: bool = False,
    explore_config: Optional[ExploreConfig] = None,
    axiomatic_config: Optional[AxiomaticConfig] = None,
    flat_config: Optional[FlatConfig] = None,
    workers: int = 1,
    cache: Union[None, str, ResultCache] = None,
) -> ModelComparison:
    """Run the selected models on ``program`` and project their outcomes."""
    models = ["promising"]
    if include_axiomatic:
        models.append("axiomatic")
    if include_flat:
        models.append("flat")
    if include_naive:
        models.append("promising-naive")
    jobs = [
        Job.for_program(
            program,
            model,
            arch,
            explore_config=explore_config,
            axiomatic_config=axiomatic_config,
            flat_config=flat_config,
        )
        for model in models
    ]
    results = run_jobs(jobs, workers=workers, cache=cache)
    failed = [r for r in results if not r.ok]
    if failed:
        first = failed[0]
        raise RuntimeError(f"{first.model} run {first.status} on {first.name}: {first.error}")
    by_model = {result.model: result.outcomes for result in results}
    return ModelComparison(
        program,
        arch,
        promising=by_model["promising"],
        axiomatic=by_model.get("axiomatic"),
        flat=by_model.get("flat"),
        naive=by_model.get("promising-naive"),
    )


__all__ = ["ModelComparison", "observables", "compare_models"]
