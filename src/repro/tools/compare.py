"""Cross-model comparison utilities.

The paper establishes (in Coq) that Promising-ARM/RISC-V is equivalent to
the axiomatic models, and validates the executable tool experimentally on
litmus batteries.  This module provides the experimental side for this
reproduction: run a program under two or three of the models and compare
the projected outcome sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..axiomatic import AxiomaticConfig, enumerate_axiomatic_outcomes
from ..flat import FlatConfig, explore_flat
from ..lang import Program, statement_registers
from ..lang.kinds import Arch
from ..outcomes import OutcomeSet
from ..promising import ExploreConfig, explore, explore_naive


@dataclass
class ModelComparison:
    """Projected outcome sets of the models on one program."""

    program: Program
    arch: Arch
    promising: OutcomeSet
    axiomatic: Optional[OutcomeSet] = None
    flat: Optional[OutcomeSet] = None
    naive: Optional[OutcomeSet] = None

    @property
    def promising_equals_axiomatic(self) -> Optional[bool]:
        if self.axiomatic is None:
            return None
        return set(self.promising) == set(self.axiomatic)

    @property
    def promising_equals_naive(self) -> Optional[bool]:
        if self.naive is None:
            return None
        return set(self.promising) == set(self.naive)

    @property
    def flat_subset_of_promising(self) -> Optional[bool]:
        """The Flat-style baseline is an approximation; we check containment."""
        if self.flat is None:
            return None
        return set(self.flat) <= set(self.promising)

    def describe(self) -> str:
        lines = [f"program {self.program.name or '<anonymous>'} on {self.arch}:"]
        lines.append(f"  promising : {len(self.promising)} outcomes")
        if self.axiomatic is not None:
            verdict = "==" if self.promising_equals_axiomatic else "!="
            lines.append(f"  axiomatic : {len(self.axiomatic)} outcomes ({verdict} promising)")
        if self.naive is not None:
            verdict = "==" if self.promising_equals_naive else "!="
            lines.append(f"  naive     : {len(self.naive)} outcomes ({verdict} promising)")
        if self.flat is not None:
            verdict = "⊆" if self.flat_subset_of_promising else "⊄"
            lines.append(f"  flat      : {len(self.flat)} outcomes ({verdict} promising)")
        return "\n".join(lines)


def observables(program: Program) -> tuple[dict[int, list[str]], list[int]]:
    """Default projection: the program's own registers and named locations."""
    regs = {
        tid: sorted(statement_registers(program.threads[tid]))
        for tid in program.thread_ids
    }
    locs = sorted(set(program.loc_names) | set(program.initial))
    return regs, locs


def compare_models(
    program: Program,
    arch: Arch = Arch.ARM,
    *,
    include_axiomatic: bool = True,
    include_flat: bool = False,
    include_naive: bool = False,
    explore_config: Optional[ExploreConfig] = None,
    axiomatic_config: Optional[AxiomaticConfig] = None,
    flat_config: Optional[FlatConfig] = None,
) -> ModelComparison:
    """Run the selected models on ``program`` and project their outcomes."""
    regs, locs = observables(program)
    cfg = (explore_config or ExploreConfig()).for_arch(arch)
    cfg.shared_locations = tuple(sorted(set(cfg.shared_locations) | set(locs)))
    promising = explore(program, cfg).outcomes.project(regs, locs)
    axiomatic = None
    if include_axiomatic:
        acfg = axiomatic_config or AxiomaticConfig()
        acfg.arch = arch
        axiomatic = enumerate_axiomatic_outcomes(program, acfg).outcomes.project(regs, locs)
    flat = None
    if include_flat:
        fcfg = flat_config or FlatConfig()
        fcfg.arch = arch
        flat = explore_flat(program, fcfg).outcomes.project(regs, locs)
    naive = None
    if include_naive:
        naive = explore_naive(program, cfg).outcomes.project(regs, locs)
    return ModelComparison(program, arch, promising, axiomatic, flat, naive)


__all__ = ["ModelComparison", "observables", "compare_models"]
