"""The evaluation workloads of §8 (Tables 1–3) and their registry."""

from dataclasses import dataclass
from typing import Callable

from .common import DONE_REG, NodePool, Workload, completed, done_marker, fetch_add, ll_sc_cas, spin_until_equals
from .spinlock import spinlock_asm, spinlock_cxx, spinlock_rust
from .ticketlock import ticket_lock
from .treiber import treiber_from_spec, treiber_stack
from .msqueue import ms_queue, ms_queue_from_spec
from .chaselev import chase_lev, chase_lev_from_spec
from .pcqueue import spmc_queue, spsc_queue


@dataclass(frozen=True)
class WorkloadFamily:
    """One row of Table 1: a workload family with its source language."""

    key: str
    language: str
    threads: int
    description: str
    builder: Callable[..., Workload]


#: The ten workload families of Table 1 of the paper.  ``threads`` is the
#: thread count the paper uses; the builders accept smaller configurations
#: for the scaled-down benchmark runs.
FAMILIES: dict[str, WorkloadFamily] = {
    "SLA": WorkloadFamily("SLA", "ARMv8", 2, "hand-written assembly spinlock", spinlock_asm),
    "SLC": WorkloadFamily("SLC", "C++", 3, "C++ CAS spinlock", spinlock_cxx),
    "SLR": WorkloadFamily("SLR", "Rust", 3, "Rust swap spinlock", spinlock_rust),
    "PCS": WorkloadFamily("PCS", "C++", 2, "single-producer single-consumer queue", spsc_queue),
    "PCM": WorkloadFamily("PCM", "C++", 3, "single-producer multi-consumer queue", spmc_queue),
    "TL": WorkloadFamily("TL", "C++", 3, "ticket lock", ticket_lock),
    "STC": WorkloadFamily("STC", "C++", 3, "Treiber stack (C++)", treiber_stack),
    "STR": WorkloadFamily("STR", "Rust", 3, "Treiber stack (Rust)", treiber_stack),
    "DQ": WorkloadFamily("DQ", "C++", 3, "Chase-Lev work-stealing deque", chase_lev),
    "QU": WorkloadFamily("QU", "C++", 3, "Michael-Scott queue", ms_queue),
}

__all__ = [
    "DONE_REG",
    "NodePool",
    "Workload",
    "WorkloadFamily",
    "FAMILIES",
    "completed",
    "done_marker",
    "fetch_add",
    "ll_sc_cas",
    "spin_until_equals",
    "spinlock_asm",
    "spinlock_cxx",
    "spinlock_rust",
    "ticket_lock",
    "treiber_from_spec",
    "treiber_stack",
    "ms_queue",
    "ms_queue_from_spec",
    "chase_lev",
    "chase_lev_from_spec",
    "spmc_queue",
    "spsc_queue",
]
