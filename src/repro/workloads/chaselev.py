"""DQ: Chase-Lev work-stealing deque workload.

The owner thread pushes (and optionally takes) at the *bottom* of a
circular buffer; thief threads steal from the *top* with a CAS on the top
index.  This is the crossbeam-style implementation the paper checks
(compiled from Rust); here it is written directly in the calculus with a
statically allocated buffer.

Safety conditions over every outcome:

* each successfully stolen or taken value was previously pushed;
* no element is obtained twice (by steals and takes together).
"""

from __future__ import annotations

from ..lang import (
    DMB_SY,
    LocationEnv,
    R,
    ReadKind,
    WriteKind,
    assign,
    if_,
    load,
    make_program,
    seq,
    store,
)
from ..outcomes import Outcome
from .common import Workload, done_marker, ll_sc_cas

#: Element size of the deque buffer in memory cells.
SLOT_STRIDE = 8


def _push(env, value, tag, *, buffer_base, relaxed=False):
    """Owner push: write the slot, then publish bottom+1."""
    bottom = env["bottom"]
    rb = f"rpb{tag}"
    publish_kind = WriteKind.PLN if relaxed else WriteKind.REL
    return seq(
        load(rb, bottom),
        store(buffer_base + R(rb) * SLOT_STRIDE, value),
        store(bottom, R(rb) + 1, kind=publish_kind),
    )


def _take(env, tag, *, buffer_base, retries=1):
    """Owner take from the bottom; ``rtake<tag>`` holds the value, ``rtok<tag>`` success."""
    bottom, top = env["bottom"], env["top"]
    rb = f"rtb{tag}"
    rt = f"rtt{tag}"
    val = f"rtake{tag}"
    got = f"rtok{tag}"
    return seq(
        assign(got, 0),
        assign(val, 0),
        load(rb, bottom),
        store(bottom, R(rb) - 1),
        DMB_SY,
        load(rt, top),
        if_(
            R(rt).lt(R(rb) - 1),
            # More than one element: take without synchronisation.
            seq(load(val, buffer_base + (R(rb) - 1) * SLOT_STRIDE), assign(got, 1)),
            if_(
                R(rt).eq(R(rb) - 1),
                # Last element: race with thieves via CAS on top.
                seq(
                    load(val, buffer_base + (R(rb) - 1) * SLOT_STRIDE),
                    ll_sc_cas(top, R(rt), R(rt) + 1,
                              old_reg=f"rto{tag}", ok_reg=got, retries=retries),
                    store(bottom, R(rb)),
                ),
                # Empty: restore bottom.
                store(bottom, R(rb)),
            ),
        ),
    )


def _steal(env, tag, *, buffer_base, retries=1):
    """Thief steal from the top; ``rsteal<tag>`` holds the value, ``rsok<tag>`` success."""
    bottom, top = env["bottom"], env["top"]
    rt = f"rst{tag}"
    rb = f"rsb{tag}"
    val = f"rsteal{tag}"
    got = f"rsok{tag}"
    return seq(
        assign(got, 0),
        assign(val, 0),
        load(rt, top, kind=ReadKind.ACQ),
        load(rb, bottom, kind=ReadKind.ACQ),
        if_(
            R(rt).lt(R(rb)),
            seq(
                load(val, buffer_base + R(rt) * SLOT_STRIDE),
                ll_sc_cas(top, R(rt), R(rt) + 1,
                          old_reg=f"rso{tag}", ok_reg=got, retries=retries,
                          release=True),
            ),
        ),
    )


def chase_lev(
    owner_ops: str = "pp",
    steals: tuple[int, ...] = (1,),
    *,
    name: str = "DQ",
    capacity: int = 4,
    relaxed_publish: bool = False,
) -> Workload:
    """Build a Chase-Lev deque workload.

    ``owner_ops`` is a string of ``p`` (push) and ``t`` (take) operations
    for thread 0; ``steals`` gives the number of steal attempts for each
    additional thief thread.  ``DQ-abc-d-e`` of the paper corresponds to
    owner ops ``"p"*a + "t"*b + "p"*c`` and ``steals=(d, e)``.
    """
    env = LocationEnv()
    env["top"], env["bottom"]
    buffer = env.array("buf", capacity)
    buffer_base = buffer[0]

    obtained: list[tuple[int, str, str]] = []
    pushed: list[int] = []
    next_value = 1

    owner_body = []
    for index, op in enumerate(owner_ops):
        tag = f"0_{index}"
        if op == "p":
            owner_body.append(
                _push(env, next_value, tag, buffer_base=buffer_base, relaxed=relaxed_publish)
            )
            pushed.append(next_value)
            next_value += 1
        elif op == "t":
            owner_body.append(_take(env, tag, buffer_base=buffer_base))
            obtained.append((0, f"rtok{tag}", f"rtake{tag}"))
        else:
            raise ValueError(f"unknown deque owner operation {op!r}")
    owner_body.append(done_marker())
    threads = [seq(*owner_body)]

    for thief_index, count in enumerate(steals, start=1):
        body = []
        for attempt in range(count):
            tag = f"{thief_index}_{attempt}"
            body.append(_steal(env, tag, buffer_base=buffer_base))
            obtained.append((thief_index, f"rsok{tag}", f"rsteal{tag}"))
        body.append(done_marker())
        threads.append(seq(*body))

    program = make_program(threads, env=env, name=name)
    valid = frozenset(pushed)

    def check(outcome: Outcome) -> bool:
        values = [
            outcome.reg(tid, value_reg)
            for tid, ok_reg, value_reg in obtained
            if outcome.reg(tid, ok_reg) == 1
        ]
        if any(v not in valid for v in values):
            return False
        return len(values) == len(set(values))

    return Workload(
        name=name,
        program=program,
        condition=check,
        description="Chase-Lev deque: takes and steals return distinct pushed values",
        expected_violation=relaxed_publish,
    )


def chase_lev_from_spec(spec: str, *, name_prefix: str = "DQ") -> Workload:
    """Paper-style spec ``"abc-d-e"`` (owner pushes/takes/pushes, two thieves)."""
    parts = spec.split("-")
    if len(parts) < 2:
        raise ValueError(f"malformed deque spec {spec!r}")
    a, b, c = (int(ch) for ch in parts[0])
    owner = "p" * a + "t" * b + "p" * c
    steals = tuple(int(p) for p in parts[1:] if int(p) > 0)
    return chase_lev(owner, steals, name=f"{name_prefix}-{spec}")


__all__ = ["chase_lev", "chase_lev_from_spec", "SLOT_STRIDE"]
