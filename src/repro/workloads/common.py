"""Shared building blocks for the evaluation workloads (§8 of the paper).

The paper's evaluation runs concurrent data structures and locks compiled
from C++/Rust (or hand-written assembly) through the exploration tool.
Here the same algorithms are written directly in the calculus.  This
module provides the pieces they share:

* :func:`ll_sc_cas` — a bounded compare-and-swap built from load/store
  exclusives, the way compilers lower ``atomic_compare_exchange``;
* :func:`fetch_add` — an LL/SC fetch-and-add loop;
* :class:`Workload` — a named, parameterised workload with a correctness
  condition, the unit the benchmark harness iterates over;
* a tiny bump allocator used by the pointer-based structures, mirroring
  the "very naive malloc" the paper uses because the tool does not model
  dynamic memory allocation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

from ..lang import (
    Expr,
    LocationEnv,
    Loc,
    Program,
    R,
    ReadKind,
    Stmt,
    WriteKind,
    assign,
    if_,
    load,
    seq,
    store,
)
from ..outcomes import Outcome, OutcomeSet


#: Register every workload thread sets to 1 as its very last instruction.
#: Because the explorers bound loops, a thread may "run out" of retries and
#: stop early; conditions quantify only over threads that completed.
DONE_REG = "rdone"

_UNIQUE = itertools.count()


def _fresh(prefix: str) -> str:
    return f"{prefix}{next(_UNIQUE)}"


def done_marker() -> Stmt:
    """Mark the thread as having completed its workload."""
    return assign(DONE_REG, 1)


def completed(outcome: Outcome, tid: int) -> bool:
    """Did thread ``tid`` complete its workload in this outcome?"""
    return outcome.reg(tid, DONE_REG) == 1


def ll_sc_cas(
    addr: Loc | Expr,
    expected: Expr | int,
    desired: Expr | int,
    *,
    old_reg: str,
    ok_reg: str,
    retries: int = 2,
    acquire: bool = False,
    release: bool = False,
) -> Stmt:
    """A bounded compare-and-swap loop built from load/store exclusives.

    On exit ``ok_reg`` is 1 if the CAS succeeded (the value at ``addr`` was
    ``expected`` and was replaced by ``desired``) and 0 otherwise;
    ``old_reg`` holds the last observed value.  ``retries`` bounds the
    number of LL/SC attempts, as the executable tool bounds loops.
    """
    status = _fresh("_sc")
    rk = ReadKind.ACQ if acquire else ReadKind.PLN
    wk = WriteKind.REL if release else WriteKind.PLN
    attempt = seq(
        load(old_reg, addr, kind=rk, exclusive=True),
        if_(
            R(old_reg).eq(expected),
            seq(
                store(addr, desired, kind=wk, exclusive=True, succ_reg=status),
                # STXR convention: 0 = success.
                if_(R(status).eq(0), assign(ok_reg, 1), assign(ok_reg, 0)),
            ),
            assign(ok_reg, 0),
        ),
    )
    body: Stmt = attempt
    for _ in range(retries - 1):
        body = seq(attempt, if_(R(ok_reg).eq(0) & R(old_reg).eq(expected), body))
    return seq(assign(ok_reg, 0), body)


def fetch_add(
    addr: Loc | Expr,
    increment: Expr | int,
    *,
    old_reg: str,
    retries: int = 2,
    acquire: bool = False,
    release: bool = False,
) -> Stmt:
    """A bounded LL/SC fetch-and-add; ``old_reg`` receives the old value.

    The pseudo register ``<old_reg>_ok`` is 1 when the update succeeded
    within the retry bound.
    """
    ok_reg = f"{old_reg}_ok"
    status = _fresh("_sc")
    rk = ReadKind.ACQ if acquire else ReadKind.PLN
    wk = WriteKind.REL if release else WriteKind.PLN
    attempt = seq(
        load(old_reg, addr, kind=rk, exclusive=True),
        store(addr, R(old_reg) + increment, kind=wk, exclusive=True, succ_reg=status),
        if_(R(status).eq(0), assign(ok_reg, 1), assign(ok_reg, 0)),
    )
    body: Stmt = attempt
    for _ in range(retries - 1):
        body = seq(attempt, if_(R(ok_reg).eq(0), body))
    return seq(assign(ok_reg, 0), body)


def spin_until_equals(
    addr: Loc | Expr, value: Expr | int, *, reg: str, acquire: bool = False, spins: int = 2
) -> Stmt:
    """Spin (boundedly) until a location holds ``value``.

    ``reg`` receives the last value read; after the bounded spin the caller
    must check ``reg`` before entering the protected region.
    """
    rk = ReadKind.ACQ if acquire else ReadKind.PLN
    body: Stmt = load(reg, addr, kind=rk)
    for _ in range(spins - 1):
        body = seq(load(reg, addr, kind=rk), if_(R(reg).ne(value), body))
    return body


@dataclass
class Workload:
    """A parameterised evaluation workload.

    Attributes
    ----------
    name:
        Paper-style identifier, e.g. ``"SLC-2"`` or ``"QU-100-010-000"``.
    program:
        The concurrent program to explore.
    condition:
        A predicate on outcomes that must hold for *every* outcome (a
        safety property of the data structure / lock).
    description:
        What the workload models and what the condition checks.
    expected_violation:
        True for deliberately broken variants (e.g. the relaxed
        Michael–Scott queue of §8) where the checker is expected to find a
        violating outcome.
    """

    name: str
    program: Program
    condition: Callable[[Outcome], bool]
    description: str = ""
    expected_violation: bool = False

    def violations(self, outcomes: OutcomeSet) -> list[Outcome]:
        """Outcomes violating the workload's safety condition."""
        return [o for o in outcomes if not self.condition(o)]

    def check(self, outcomes: OutcomeSet) -> bool:
        """True when the outcome set matches the expectation."""
        violating = self.violations(outcomes)
        return bool(violating) == self.expected_violation


class NodePool:
    """A bump allocator over a statically laid-out pool of nodes.

    The paper "fakes" malloc with a naive allocator in the test harness;
    we do the same: each node has ``fields`` consecutive cells, and
    :meth:`alloc` hands out node base addresses at build time (allocation
    is static, per thread, exactly as in the paper's single-shot tests).
    """

    def __init__(self, env: LocationEnv, name: str, fields: Sequence[str]) -> None:
        self._env = env
        self._name = name
        self._fields = tuple(fields)
        self._count = 0

    def alloc(self) -> dict[str, Loc]:
        """Allocate one node; returns the address of each field."""
        index = self._count
        self._count += 1
        return {
            field_name: self._env[f"{self._name}{index}.{field_name}"]
            for field_name in self._fields
        }

    @property
    def allocated(self) -> int:
        return self._count


__all__ = [
    "DONE_REG",
    "done_marker",
    "completed",
    "ll_sc_cas",
    "fetch_add",
    "spin_until_equals",
    "Workload",
    "NodePool",
]
