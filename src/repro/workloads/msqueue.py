"""QU: Michael–Scott queue workloads, including the §8 bug-hunt variant.

The queue is a linked list with ``head``/``tail`` pointers and an initial
dummy node.  Enqueue writes the new node's data, links it after the
current tail (CAS on the tail node's ``next`` field), and swings ``tail``;
dequeue reads ``head``, follows ``next``, reads the data and swings
``head`` with CAS.

Two variants reproduce the case study of §8:

* ``release_link=True`` — the fixed queue: the store/CAS that publishes the
  new node (the write of the predecessor's ``next`` field) has release
  ordering, so the node's data write cannot be observed after the link.
* ``release_link=False`` — the relaxed (buggy) queue: the link is a plain
  write, so another thread can dequeue the node and read its data field
  before the data write has propagated, observing the uninitialised value
  0.  The exploration tool finds this violating outcome, as in the paper.

All enqueued values are nonzero and distinct; the safety conditions are
(a) every successful dequeue returns a previously enqueued value (never
the uninitialised 0), and (b) no value is dequeued twice.
"""

from __future__ import annotations

from ..lang import (
    LocationEnv,
    R,
    ReadKind,
    assign,
    if_,
    load,
    make_program,
    seq,
    store,
)
from ..outcomes import Outcome
from .common import NodePool, Workload, done_marker, ll_sc_cas

#: Node layout: data at base+0, next pointer at base+8.
DATA_OFFSET = 0
NEXT_OFFSET = 8


def _enqueue(env, node, value, tag, *, release_link, retries):
    """Append ``node`` carrying ``value`` at the tail."""
    tail = env["tail"]
    rtail = f"rtail{tag}"
    rnext = f"rtnext{tag}"
    ok = f"renq{tag}"
    return seq(
        # initialise the node
        store(node["data"], value),
        store(node["next"], 0),
        # read the tail and its next pointer
        load(rtail, tail),
        load(rnext, R(rtail) + NEXT_OFFSET),
        # if the tail is up to date, link the new node behind it
        if_(
            R(rnext).eq(0),
            seq(
                ll_sc_cas(
                    R(rtail) + NEXT_OFFSET,
                    0,
                    node["data"],
                    old_reg=f"rlold{tag}",
                    ok_reg=ok,
                    retries=retries,
                    release=release_link,
                ),
                # swing the tail pointer (helping is omitted in this bounded test)
                if_(R(ok).eq(1), store(tail, node["data"])),
            ),
            assign(ok, 0),
        ),
    )


def _dequeue(env, tag, *, retries):
    """Dequeue once; ``rdeq<tag>`` receives the data (0 = empty/failed)."""
    head = env["head"]
    rhead = f"rhead{tag}"
    rnext = f"rhnext{tag}"
    rdata = f"rdata{tag}"
    ok = f"rdeq_ok{tag}"
    result = f"rdeq{tag}"
    return seq(
        assign(result, 0),
        load(rhead, head, kind=ReadKind.ACQ),
        load(rnext, R(rhead) + NEXT_OFFSET, kind=ReadKind.ACQ),
        if_(
            R(rnext).ne(0),
            seq(
                load(rdata, R(rnext) + DATA_OFFSET),
                ll_sc_cas(
                    head,
                    R(rhead),
                    R(rnext),
                    old_reg=f"rhold{tag}",
                    ok_reg=ok,
                    retries=retries,
                ),
                if_(R(ok).eq(1), assign(result, R(rdata))),
            ),
        ),
    )


def ms_queue(
    ops: tuple[str, ...] = ("e", "d"),
    *,
    name: str = "QU",
    release_link: bool = True,
    retries: int = 1,
) -> Workload:
    """Build a Michael–Scott queue workload.

    ``ops`` gives one string per thread of ``e`` (enqueue) and ``d``
    (dequeue) operations.
    """
    env = LocationEnv()
    head, tail = env["head"], env["tail"]
    pool = NodePool(env, "qnode", ("data", "next"))
    dummy = pool.alloc()

    threads = []
    enqueued: list[int] = []
    deq_registers: list[tuple[int, str]] = []
    next_value = 1
    for tid, script in enumerate(ops):
        body = []
        for op_index, op in enumerate(script):
            tag = f"{tid}_{op_index}"
            if op in ("e", "enq"):
                node = pool.alloc()
                body.append(
                    _enqueue(env, node, next_value, tag, release_link=release_link, retries=retries)
                )
                enqueued.append(next_value)
                next_value += 1
            elif op in ("d", "deq"):
                body.append(_dequeue(env, tag, retries=retries))
                deq_registers.append((tid, f"rdeq_ok{tag}", f"rdeq{tag}"))
            else:
                raise ValueError(f"unknown queue operation {op!r}")
        body.append(done_marker())
        threads.append(seq(*body))

    # The dummy node starts empty; head and tail point at it.
    initial = {head: dummy["data"], tail: dummy["data"], dummy["next"]: 0}
    program = make_program(threads, env=env, initial=initial, name=name)
    valid = frozenset(enqueued)

    def check(outcome: Outcome) -> bool:
        taken = [
            outcome.reg(tid, value_reg)
            for tid, ok_reg, value_reg in deq_registers
            if outcome.reg(tid, ok_reg) == 1
        ]
        # A successful dequeue must return an enqueued (nonzero) value —
        # observing 0 means the node was published before its data (§8 bug)
        # — and no value may be dequeued twice.
        if any(v not in valid for v in taken):
            return False
        return len(taken) == len(set(taken))

    return Workload(
        name=name,
        program=program,
        condition=check,
        description="Michael–Scott queue: dequeues return distinct enqueued values "
        + ("(release publication)" if release_link else "(relaxed publication — buggy)"),
        expected_violation=not release_link,
    )


def ms_queue_from_spec(spec: str, *, release_link: bool = True, name_prefix: str = "QU") -> Workload:
    """Paper-style spec ``"abc-def-ghi"``: per thread, enqueue ``a``, dequeue ``b``, enqueue ``c``."""
    ops = []
    for group in spec.split("-"):
        if len(group) != 3 or not group.isdigit():
            raise ValueError(f"malformed thread spec {group!r}")
        a, b, c = (int(ch) for ch in group)
        ops.append("e" * a + "d" * b + "e" * c)
    suffix = "" if release_link else "(rlx)"
    return ms_queue(tuple(ops), name=f"{name_prefix}{suffix}-{spec}", release_link=release_link)


__all__ = ["ms_queue", "ms_queue_from_spec", "DATA_OFFSET", "NEXT_OFFSET"]
