"""PCS / PCM: producer–consumer circular-buffer queues.

* **PCS** — single producer, single consumer: the producer writes the slot
  and publishes a new write index with a release store; the consumer reads
  the write index with acquire, reads the slot, and advances its own read
  index (not shared).
* **PCM** — single producer, multiple consumers: consumers additionally
  claim slots by CAS on a shared read index, so an element is delivered to
  at most one consumer.

Safety conditions over every outcome: every consumed value was produced
(in particular it is never the uninitialised 0 — the publication must not
be observable before the slot write), and under PCM no element is consumed
twice.
"""

from __future__ import annotations

from ..lang import (
    LocationEnv,
    R,
    ReadKind,
    WriteKind,
    assign,
    if_,
    load,
    make_program,
    seq,
    store,
)
from ..outcomes import Outcome
from .common import Workload, done_marker, ll_sc_cas

SLOT_STRIDE = 8


def _produce(env, value, tag, *, buffer_base, relaxed=False):
    widx = env["widx"]
    rw = f"rw{tag}"
    publish = WriteKind.PLN if relaxed else WriteKind.REL
    return seq(
        load(rw, widx),
        store(buffer_base + R(rw) * SLOT_STRIDE, value),
        store(widx, R(rw) + 1, kind=publish),
    )


def _consume_spsc(env, tag, *, buffer_base):
    """Single-consumer receive: the read index lives in a register chain."""
    widx = env["widx"]
    ridx = env["ridx"]
    rr = f"rr{tag}"
    rw = f"rwseen{tag}"
    val = f"rcons{tag}"
    got = f"rcok{tag}"
    return seq(
        assign(got, 0),
        assign(val, 0),
        load(rr, ridx),
        load(rw, widx, kind=ReadKind.ACQ),
        if_(
            R(rr).lt(R(rw)),
            seq(
                load(val, buffer_base + R(rr) * SLOT_STRIDE),
                store(ridx, R(rr) + 1),
                assign(got, 1),
            ),
        ),
    )


def _consume_mpmc(env, tag, *, buffer_base, retries=1):
    """Multi-consumer receive: claim the slot by CAS on the read index."""
    widx = env["widx"]
    ridx = env["ridx"]
    rr = f"rr{tag}"
    rw = f"rwseen{tag}"
    val = f"rcons{tag}"
    got = f"rcok{tag}"
    return seq(
        assign(got, 0),
        assign(val, 0),
        load(rr, ridx),
        load(rw, widx, kind=ReadKind.ACQ),
        if_(
            R(rr).lt(R(rw)),
            seq(
                load(val, buffer_base + R(rr) * SLOT_STRIDE),
                ll_sc_cas(ridx, R(rr), R(rr) + 1, old_reg=f"rro{tag}", ok_reg=got, retries=retries),
            ),
        ),
    )


def _build(env, producer_count, consumers, consume_builder, *, capacity, name, relaxed):
    buffer = env.array("buf", capacity)
    buffer_base = buffer[0]

    produced = []
    producer_body = []
    for index in range(producer_count):
        value = index + 1
        producer_body.append(
            _produce(env, value, f"0_{index}", buffer_base=buffer_base, relaxed=relaxed)
        )
        produced.append(value)
    producer_body.append(done_marker())
    threads = [seq(*producer_body)]

    consumed: list[tuple[int, str, str]] = []
    for consumer_index, count in enumerate(consumers, start=1):
        body = []
        for attempt in range(count):
            tag = f"{consumer_index}_{attempt}"
            body.append(consume_builder(env, tag, buffer_base=buffer_base))
            consumed.append((consumer_index, f"rcok{tag}", f"rcons{tag}"))
        body.append(done_marker())
        threads.append(seq(*body))

    program = make_program(threads, env=env, name=name)
    valid = frozenset(produced)

    def check(outcome: Outcome) -> bool:
        values = [
            outcome.reg(tid, value_reg)
            for tid, ok_reg, value_reg in consumed
            if outcome.reg(tid, ok_reg) == 1
        ]
        if any(v not in valid for v in values):
            return False
        return len(values) == len(set(values))

    return program, check


def spsc_queue(produce: int = 2, consume: int = 2, *, capacity: int = 4,
               relaxed_publish: bool = False) -> Workload:
    """PCS-n-m: single producer (n sends), single consumer (m receives)."""
    env = LocationEnv()
    env["widx"], env["ridx"]
    name = f"PCS-{produce}-{consume}"
    program, check = _build(
        env, produce, (consume,), _consume_spsc,
        capacity=capacity, name=name, relaxed=relaxed_publish,
    )
    return Workload(
        name=name,
        program=program,
        condition=check,
        description="single-producer single-consumer circular queue",
        expected_violation=relaxed_publish,
    )


def spmc_queue(produce: int = 1, consumes: tuple[int, ...] = (1, 1), *, capacity: int = 4,
               relaxed_publish: bool = False) -> Workload:
    """PCM-n-m-k: single producer, multiple consumers claiming slots by CAS."""
    env = LocationEnv()
    env["widx"], env["ridx"]
    name = "PCM-" + "-".join(str(n) for n in (produce,) + tuple(consumes))
    program, check = _build(
        env, produce, tuple(consumes), _consume_mpmc,
        capacity=capacity, name=name, relaxed=relaxed_publish,
    )
    return Workload(
        name=name,
        program=program,
        condition=check,
        description="single-producer multiple-consumer circular queue",
        expected_violation=relaxed_publish,
    )


__all__ = ["spsc_queue", "spmc_queue", "SLOT_STRIDE"]
