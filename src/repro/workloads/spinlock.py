"""Spinlock workloads: SLA (assembly), SLC (C++-style), SLR (Rust-style).

All three protect a non-atomic shared counter; every thread acquires the
lock, increments the counter, and releases the lock, a configurable number
of times.  Each thread counts its successful critical sections in a
register, so the safety condition is independent of the loop bounding:
the final counter must equal the total number of critical sections
executed (no lost updates), which is exactly what mutual exclusion
guarantees.

* **SLA** is hand-written AArch64 assembly (the Linux-derived spinlock of
  the paper's Table 1), assembled through :mod:`repro.isa`.
* **SLC** models the GCC lowering of a C++ ``std::atomic_flag`` test-and-set
  lock: an acquire CAS loop and a release store.
* **SLR** models the rustc lowering of a swap-based spinlock: an
  unconditional LL/SC exchange with acquire ordering.
"""

from __future__ import annotations

from ..isa import ThreadSource, assemble_program, assembly_line_count
from ..lang import (
    LocationEnv,
    R,
    ReadKind,
    WriteKind,
    assign,
    if_,
    load,
    make_program,
    seq,
    store,
)
from ..outcomes import Outcome
from .common import Workload, done_marker, ll_sc_cas

#: Register counting the critical sections a thread completed.
CS_REG = "rcs"


def _counter_condition(n_threads: int, counter_loc: int):
    """Final counter equals the number of critical sections performed."""

    def check(outcome: Outcome) -> bool:
        total = sum(outcome.reg(tid, CS_REG) for tid in range(n_threads))
        return outcome.mem(counter_loc) == total

    return check


def _critical_section(env: LocationEnv) -> list:
    """Increment the shared counter (non-atomically) and count it."""
    return [
        load("rtmp", env["counter"]),
        store(env["counter"], R("rtmp") + 1),
        assign(CS_REG, R(CS_REG) + 1),
    ]


# ---------------------------------------------------------------------------
# SLC: CAS-based test-and-set lock (C++ std::atomic compiled with GCC)
# ---------------------------------------------------------------------------


def slc_thread(env: LocationEnv, acquisitions: int, retries: int = 2) -> "Stmt":
    body = []
    for i in range(acquisitions):
        body.append(
            ll_sc_cas(
                env["lock"],
                0,
                1,
                old_reg=f"rold{i}",
                ok_reg=f"rlock{i}",
                retries=retries,
                acquire=True,
            )
        )
        cs = seq(*_critical_section(env), store(env["lock"], 0, kind=WriteKind.REL))
        body.append(if_(R(f"rlock{i}").eq(1), cs))
    body.append(done_marker())
    return seq(assign(CS_REG, 0), *body)


def spinlock_cxx(n_threads: int = 2, acquisitions: int = 1, retries: int = 2) -> Workload:
    """SLC-n: the C++-style CAS spinlock, ``acquisitions`` lock/unlocks per thread."""
    env = LocationEnv()
    env["lock"], env["counter"]
    threads = [slc_thread(env, acquisitions, retries) for _ in range(n_threads)]
    program = make_program(threads, env=env, name=f"SLC-{acquisitions}")
    return Workload(
        name=f"SLC-{acquisitions}" + (f"x{n_threads}" if n_threads != 2 else ""),
        program=program,
        condition=_counter_condition(n_threads, env["counter"]),
        description="C++-style CAS spinlock protecting a shared counter",
    )


# ---------------------------------------------------------------------------
# SLR: swap-based lock (Rust spin crate style)
# ---------------------------------------------------------------------------


def slr_thread(env: LocationEnv, acquisitions: int, attempts: int = 2) -> "Stmt":
    body = []
    for i in range(acquisitions):
        got = f"rlock{i}"
        # Bounded retry of: old := exchange(lock, 1, acquire); got := (old == 0)
        attempt = seq(
            load(f"rx{i}", env["lock"], kind=ReadKind.ACQ, exclusive=True),
            store(env["lock"], 1, exclusive=True, succ_reg=f"rs{i}"),
            if_(R(f"rs{i}").eq(0) & R(f"rx{i}").eq(0), assign(got, 1), assign(got, 0)),
        )
        chain = attempt
        for _ in range(attempts - 1):
            chain = seq(attempt, if_(R(got).eq(0), chain))
        body.append(seq(assign(got, 0), chain))
        cs = seq(*_critical_section(env), store(env["lock"], 0, kind=WriteKind.REL))
        body.append(if_(R(got).eq(1), cs))
    body.append(done_marker())
    return seq(assign(CS_REG, 0), *body)


def spinlock_rust(n_threads: int = 2, acquisitions: int = 1, attempts: int = 2) -> Workload:
    """SLR-n: the Rust-style swap spinlock."""
    env = LocationEnv()
    env["lock"], env["counter"]
    threads = [slr_thread(env, acquisitions, attempts) for _ in range(n_threads)]
    program = make_program(threads, env=env, name=f"SLR-{acquisitions}")
    return Workload(
        name=f"SLR-{acquisitions}",
        program=program,
        condition=_counter_condition(n_threads, env["counter"]),
        description="Rust-style swap spinlock protecting a shared counter",
    )


# ---------------------------------------------------------------------------
# SLA: hand-written AArch64 assembly spinlock (Linux derived)
# ---------------------------------------------------------------------------

SLA_ACQUIRE_RELEASE_ASM = """
    // acquire(lock in X1)
retry{i}:
    LDAXR   X0, [X1]
    CBNZ    X0, giveup{i}
    MOV     X2, #1
    STXR    W3, X2, [X1]
    CBNZ    W3, retry{i}
    // critical section: counter in X5, completed sections in X7
    LDR     X4, [X5]
    ADD     X4, X4, #1
    STR     X4, [X5]
    ADD     X7, X7, #1
    // release
    STLR    XZR, [X1]
giveup{i}:
    NOP
"""

SLA_FOOTER_ASM = """
    MOV X9, #1
"""


def spinlock_asm(n_threads: int = 2, acquisitions: int = 1, unroll: int = 2) -> Workload:
    """SLA-n: the assembly spinlock, run through the ARMv8 front end."""
    env = LocationEnv()
    lock, counter = env["lock"], env["counter"]
    text = "".join(SLA_ACQUIRE_RELEASE_ASM.format(i=i) for i in range(acquisitions))
    text += SLA_FOOTER_ASM
    sources = [ThreadSource(text, {"X1": lock, "X5": counter}) for _ in range(n_threads)]
    from ..lang.kinds import Arch

    program = assemble_program(
        sources, Arch.ARM, env=env, name=f"SLA-{acquisitions}", unroll_bound=unroll
    )

    def check(outcome: Outcome) -> bool:
        total = sum(outcome.reg(tid, "X7") for tid in range(n_threads))
        return outcome.mem(counter) == total

    workload = Workload(
        name=f"SLA-{acquisitions}",
        program=program,
        condition=check,
        description="hand-written AArch64 spinlock (Linux-derived), via the ISA front end",
    )
    workload.assembly_lines = assembly_line_count(sources)  # type: ignore[attr-defined]
    return workload


__all__ = [
    "CS_REG",
    "slc_thread",
    "slr_thread",
    "spinlock_cxx",
    "spinlock_rust",
    "spinlock_asm",
    "SLA_ACQUIRE_RELEASE_ASM",
]
