"""TL: ticket lock workload.

A ticket lock has two counters: ``next`` (the next ticket to hand out) and
``owner`` (the ticket currently allowed into the critical section).
Acquiring takes a ticket with an atomic fetch-and-add on ``next`` and
spins until ``owner`` equals the ticket; releasing stores ``ticket+1`` to
``owner`` with release ordering.

As with the spinlocks, every thread increments a plain shared counter in
its critical section and counts its completed critical sections, so the
safety condition (no lost updates) is independent of the spin bounds.
"""

from __future__ import annotations

from ..lang import (
    LocationEnv,
    R,
    WriteKind,
    assign,
    if_,
    load,
    make_program,
    seq,
    store,
)
from ..outcomes import Outcome
from .common import Workload, done_marker, fetch_add, spin_until_equals

CS_REG = "rcs"


def ticket_thread(env: LocationEnv, acquisitions: int, spins: int = 3, retries: int = 2):
    body = [assign(CS_REG, 0)]
    for i in range(acquisitions):
        ticket = f"rticket{i}"
        seen = f"rowner{i}"
        body.append(fetch_add(env["next"], 1, old_reg=ticket, retries=retries))
        body.append(spin_until_equals(env["owner"], R(ticket), reg=seen, acquire=True, spins=spins))
        critical = seq(
            load("rtmp", env["counter"]),
            store(env["counter"], R("rtmp") + 1),
            assign(CS_REG, R(CS_REG) + 1),
            store(env["owner"], R(ticket) + 1, kind=WriteKind.REL),
        )
        # Enter only if the ticket was obtained and the owner reached it.
        body.append(if_(R(f"{ticket}_ok").eq(1) & R(seen).eq(R(ticket)), critical))
    body.append(done_marker())
    return seq(*body)


def ticket_lock(n_threads: int = 2, acquisitions: int = 1, spins: int = 3) -> Workload:
    """TL-n: ticket lock with ``acquisitions`` critical sections per thread."""
    env = LocationEnv()
    env["next"], env["owner"], env["counter"]
    threads = [ticket_thread(env, acquisitions, spins) for _ in range(n_threads)]
    program = make_program(threads, env=env, name=f"TL-{acquisitions}")

    def check(outcome: Outcome) -> bool:
        total = sum(outcome.reg(tid, CS_REG) for tid in range(n_threads))
        return outcome.mem(env["counter"]) == total

    return Workload(
        name=f"TL-{acquisitions}",
        program=program,
        condition=check,
        description="ticket lock (fetch-and-add ticket, spin on owner) protecting a counter",
    )


__all__ = ["ticket_thread", "ticket_lock", "CS_REG"]
