"""STC/STR: Treiber stack workloads.

The Treiber stack is a lock-free stack whose ``head`` pointer is updated
with compare-and-swap.  Nodes come from a static pool (the paper's naive
malloc substitute); every pushed value is distinct and nonzero so the
checker can tell pops apart.

Safety conditions checked over every outcome:

* every successful pop returns a value that was pushed;
* no two successful pops return the same value (no duplication);
* a popped node's value field is never observed as 0 (no "publication
  before initialisation", the bug class §8 hunts in the queue example).

The STC (C++/GCC) variant publishes nodes with a release CAS; the STR
(Rust) variant is identical here.  The "relaxed" variant
(``release_push=False``) drops the release ordering on the publishing CAS:
the hardware model then allows the node's value write to propagate after
the publishing write, so a pop can observe the uninitialised value — the
same bug class the paper's §8 case study finds in the queue.  Such
variants carry ``expected_violation=True`` and the checker must find a
violating outcome.
"""

from __future__ import annotations

from ..lang import (
    LocationEnv,
    R,
    ReadKind,
    assign,
    if_,
    load,
    make_program,
    seq,
    store,
)
from ..outcomes import Outcome
from .common import NodePool, Workload, done_marker, ll_sc_cas


def _push(env: LocationEnv, node: dict, value: int, tag: str, *, release: bool, retries: int):
    """Push a pre-allocated node carrying ``value``."""
    head = env["head"]
    old = f"rph{tag}"
    ok = f"rpok{tag}"
    return seq(
        store(node["value"], value),
        load(old, head),
        store(node["next"], R(old)),
        ll_sc_cas(
            head,
            R(old),
            node["base"],
            old_reg=f"rcur{tag}",
            ok_reg=ok,
            retries=retries,
            release=release,
        ),
    )


def _pop(env: LocationEnv, tag: str, *, retries: int):
    """Pop once; ``rpop<tag>`` receives the value (0 = empty or retry-bound)."""
    head = env["head"]
    old = f"rh{tag}"
    ok = f"rdok{tag}"
    result = f"rpop{tag}"
    return seq(
        assign(result, 0),
        load(old, head, kind=ReadKind.ACQ),
        if_(
            R(old).ne(0),
            seq(
                # node layout: [value, next] at base, base+8.
                load(f"rnext{tag}", R(old) + 8),
                load(f"rval{tag}", R(old)),
                ll_sc_cas(
                    head,
                    R(old),
                    R(f"rnext{tag}"),
                    old_reg=f"rcur{tag}",
                    ok_reg=ok,
                    retries=retries,
                ),
                if_(R(ok).eq(1), assign(result, R(f"rval{tag}"))),
            ),
        ),
    )


def treiber_stack(
    ops: tuple[str, ...] = ("p", "o"),
    *,
    name: str = "STC",
    release_push: bool = True,
    retries: int = 1,
) -> Workload:
    """Build a Treiber-stack workload.

    ``ops`` gives one string per thread, each a sequence of ``p`` (push)
    and ``o`` (pop) characters, mirroring the paper's ``STC-abc-def-ghi``
    naming where the digits are per-thread operation counts.  For example
    ``ops=("pp", "o")`` is one thread pushing twice and one thread popping
    once.
    """
    env = LocationEnv()
    env["head"]
    pool = NodePool(env, "node", ("value", "next"))
    threads = []
    pushed_values: list[int] = []
    pop_registers: list[tuple[int, str]] = []
    next_value = 1
    for tid, script in enumerate(ops):
        body = []
        for op_index, op in enumerate(script):
            tag = f"{tid}_{op_index}"
            if op in ("p", "push"):
                node = pool.alloc()
                node["base"] = node["value"]  # value field sits at the node base
                body.append(
                    _push(env, node, next_value, tag, release=release_push, retries=retries)
                )
                pushed_values.append(next_value)
                next_value += 1
            elif op in ("o", "pop"):
                body.append(_pop(env, tag, retries=retries))
                pop_registers.append((tid, f"rdok{tag}", f"rpop{tag}"))
            else:
                raise ValueError(f"unknown stack operation {op!r}")
        body.append(done_marker())
        threads.append(seq(*body))

    program = make_program(threads, env=env, name=name)
    pushed = frozenset(pushed_values)

    def check(outcome: Outcome) -> bool:
        # Only pops whose head-CAS succeeded actually removed a node; those
        # must return distinct, previously pushed (nonzero) values.
        taken = [
            outcome.reg(tid, value_reg)
            for tid, ok_reg, value_reg in pop_registers
            if outcome.reg(tid, ok_reg) == 1
        ]
        if any(v not in pushed for v in taken):
            return False
        return len(taken) == len(set(taken))

    return Workload(
        name=name,
        program=program,
        condition=check,
        description="Treiber stack: pops return distinct, previously pushed values",
        expected_violation=not release_push,
    )


def treiber_from_spec(spec: str, *, name_prefix: str = "STC", release_push: bool = True) -> Workload:
    """Build a stack workload from a paper-style spec like ``"100-010-010"``.

    Each dash-separated group describes one thread as three digits
    ``a b c``: push ``a`` times, pop ``b`` times, push ``c`` times.
    """
    ops = []
    for group in spec.split("-"):
        if len(group) != 3 or not group.isdigit():
            raise ValueError(f"malformed thread spec {group!r}")
        a, b, c = (int(ch) for ch in group)
        ops.append("p" * a + "o" * b + "p" * c)
    return treiber_stack(tuple(ops), name=f"{name_prefix}-{spec}", release_push=release_push)


__all__ = ["treiber_stack", "treiber_from_spec"]
