"""Unit tests for the axiomatic model: relations, pre-executions, axioms."""

import pytest

from repro.axiomatic import (
    AxiomaticConfig,
    Relation,
    enumerate_axiomatic_outcomes,
    enumerate_preexecutions,
    infer_value_domains,
)
from repro.axiomatic.events import init_write
from repro.axiomatic.relations import cross, identity_on
from repro.lang import (
    DMB_SY,
    LocationEnv,
    R,
    ReadKind,
    WriteKind,
    dependency_idiom,
    if_,
    load,
    make_program,
    seq,
    store,
)
from repro.lang.kinds import Arch
from repro.litmus import all_tests, run_axiomatic

X, Y = 0, 8


class TestRelation:
    def test_union_and_intersection(self):
        a = Relation([((0, 0), (0, 1))])
        b = Relation([((0, 1), (0, 2))])
        assert len(a | b) == 2
        assert len(a & b) == 0

    def test_compose(self):
        a = Relation([((0, 0), (0, 1))])
        b = Relation([((0, 1), (0, 2)), ((0, 9), (0, 3))])
        assert a.compose(b) == Relation([((0, 0), (0, 2))])

    def test_inverse(self):
        assert Relation([((0, 0), (0, 1))]).inverse() == Relation([((0, 1), (0, 0))])

    def test_transitive_closure(self):
        r = Relation([((0, 0), (0, 1)), ((0, 1), (0, 2))])
        assert ((0, 0), (0, 2)) in r.transitive_closure()

    def test_acyclic_detects_cycles(self):
        assert Relation([((0, 0), (0, 1)), ((0, 1), (0, 2))]).is_acyclic()
        assert not Relation([((0, 0), (0, 1)), ((0, 1), (0, 0))]).is_acyclic()
        assert not Relation([((0, 0), (0, 0))]).is_acyclic()

    def test_restrict(self):
        r = Relation([((0, 0), (0, 1)), ((1, 0), (1, 1))])
        restricted = r.restrict(domain=lambda e: e[0] == 0)
        assert restricted == Relation([((0, 0), (0, 1))])

    def test_identity_on_and_cross(self):
        events = [init_write(X, 0, 0), init_write(Y, 0, 1)]
        ident = identity_on(events, lambda e: e.loc == X)
        assert len(ident) == 1
        assert len(cross(events, events)) == 4


class TestPreExecutions:
    def test_straight_line_single_preexecution(self):
        stmt = seq(store(X, 1), store(Y, 2))
        (pre,) = enumerate_preexecutions(stmt, 0, {}, {})
        assert [e.kind for e in pre.events] == ["W", "W"]

    def test_load_branches_over_domain(self):
        stmt = load("r1", X)
        pres = enumerate_preexecutions(stmt, 0, {X: frozenset({0, 1, 2})}, {})
        assert sorted(p.events[0].val for p in pres) == [0, 1, 2]

    def test_address_dependency_recorded(self):
        stmt = seq(load("r1", Y), load("r2", dependency_idiom(X, "r1")))
        pres = enumerate_preexecutions(stmt, 0, {Y: frozenset({0})}, {})
        second = pres[0].events[1]
        assert second.addr_deps == {pres[0].events[0].eid}

    def test_data_dependency_recorded(self):
        stmt = seq(load("r1", Y), store(X, R("r1")))
        (pre,) = enumerate_preexecutions(stmt, 0, {Y: frozenset({0})}, {})
        assert pre.events[1].data_deps == {pre.events[0].eid}

    def test_control_dependency_covers_rest_of_thread(self):
        stmt = seq(load("r1", Y), if_(R("r1").eq(0), store(X, 1)), store(X, 2))
        (pre,) = enumerate_preexecutions(stmt, 0, {Y: frozenset({0})}, {})
        read_eid = pre.events[0].eid
        for write in pre.events[1:]:
            assert read_eid in write.ctrl_deps

    def test_store_exclusive_failure_and_success(self):
        stmt = seq(
            load("r1", X, exclusive=True),
            store(X, 1, exclusive=True, succ_reg="rs"),
        )
        pres = enumerate_preexecutions(stmt, 0, {X: frozenset({0})}, {})
        successes = [p for p in pres if any(e.is_write for e in p.events)]
        failures = [p for p in pres if not any(e.is_write for e in p.events)]
        assert len(successes) == 1 and len(failures) == 1
        write = next(e for e in successes[0].events if e.is_write)
        assert write.rmw_partner == successes[0].events[0].eid
        assert successes[0].final_register_values()["rs"] == 0
        assert failures[0].final_register_values()["rs"] == 1

    def test_store_exclusive_without_reservation_only_fails(self):
        stmt = store(X, 1, exclusive=True, succ_reg="rs")
        pres = enumerate_preexecutions(stmt, 0, {}, {})
        assert len(pres) == 1
        assert not any(e.is_write for e in pres[0].events)

    def test_value_domain_fixpoint_propagates_copies(self):
        env = LocationEnv()
        program = make_program(
            [store(env["x"], 7), seq(load("r1", env["x"]), store(env["y"], R("r1")))],
            env=env,
        )
        domains = infer_value_domains(program)
        assert 7 in domains[env["x"]]
        assert 7 in domains[env["y"]]

    def test_fence_and_isb_events(self):
        from repro.lang import Isb

        stmt = seq(DMB_SY, Isb())
        (pre,) = enumerate_preexecutions(stmt, 0, {}, {})
        assert [e.kind for e in pre.events] == ["F", "ISB"]


class TestAxiomaticModel:
    def test_mp_allows_relaxed_outcome(self):
        env = LocationEnv()
        program = make_program(
            [seq(store(env["x"], 1), store(env["y"], 1)),
             seq(load("r1", env["y"]), load("r2", env["x"]))],
            env=env,
        )
        result = enumerate_axiomatic_outcomes(program)
        assert result.outcomes.any_satisfies(
            lambda o: o.reg(1, "r1") == 1 and o.reg(1, "r2") == 0
        )

    def test_acquire_release_forbids_relaxed_outcome(self):
        env = LocationEnv()
        program = make_program(
            [seq(store(env["x"], 1), store(env["y"], 1, kind=WriteKind.REL)),
             seq(load("r1", env["y"], kind=ReadKind.ACQ), load("r2", env["x"]))],
            env=env,
        )
        result = enumerate_axiomatic_outcomes(program)
        assert not result.outcomes.any_satisfies(
            lambda o: o.reg(1, "r1") == 1 and o.reg(1, "r2") == 0
        )

    def test_stats_are_populated(self):
        env = LocationEnv()
        program = make_program([store(env["x"], 1)], env=env)
        result = enumerate_axiomatic_outcomes(program)
        assert result.stats.candidates >= 1
        assert result.stats.consistent >= 1
        assert not result.stats.truncated

    def test_final_memory_follows_coherence(self):
        env = LocationEnv()
        program = make_program([seq(store(env["x"], 1), store(env["x"], 2))], env=env)
        result = enumerate_axiomatic_outcomes(program)
        assert all(o.mem(env["x"]) == 2 for o in result.outcomes)


# Catalogue validation (3-threads-or-fewer keeps the run time modest).
SMALL = [t for t in all_tests() if t.program.n_threads <= 3]


@pytest.mark.parametrize("test", SMALL, ids=[t.name for t in SMALL])
@pytest.mark.parametrize("arch", [Arch.ARM, Arch.RISCV], ids=["arm", "riscv"])
def test_axiomatic_catalogue_verdicts(test, arch):
    result = run_axiomatic(test, arch)
    assert result.verdict is test.expected_verdict(arch), test.name


@pytest.mark.parametrize("name", ["MP", "MP+dmb+addr", "SB+dmbs"])
@pytest.mark.parametrize("arch", [Arch.ARM, Arch.RISCV], ids=["arm", "riscv"])
def test_verdict_oracle_matches_runner_path(name, arch):
    # axiomatic_verdict is the standalone oracle entry point; it must
    # never drift from the projection+evaluation the harness job path
    # (run_axiomatic) applies.
    from repro.axiomatic import AxiomaticConfig, axiomatic_verdict
    from repro.litmus import get_test

    test = get_test(name)
    oracle = axiomatic_verdict(test, AxiomaticConfig(arch=arch))
    assert oracle is run_axiomatic(test, arch).verdict
    assert oracle is test.expected_verdict(arch)
