"""Conformance of the execution backends (object vs packed).

The backend seam swaps the *representation* of machine states, never the
semantics: for every explorer the two backends must produce identical
outcome sets and identical semantic statistics (states, transitions,
final memories, deadlocks, dedup hits, …), and the packed encoding must
be a bijection onto the object backend's ``cache_key`` equivalence
classes.  These tests pin that contract on a catalogue slice, a
generated corpus slice, both architectures and all three explorers.
"""

import dataclasses

import pytest

from repro.backend import (
    BACKENDS,
    make_promising_backend,
    validate_backend,
)
from repro.flat import FlatConfig, explore_flat
from repro.harness.jobs import Job
from repro.lang.kinds import Arch
from repro.litmus import generate_battery, get_test
from repro.promising import ExploreConfig, explore, explore_naive
from repro.promising.machine import MachineState, machine_transitions

ARCHS = [Arch.ARM, Arch.RISCV]

# Small-but-varied slice: message passing, store buffering, dependencies,
# multicopy atomicity, exclusives, and a write-heavy shape.
PROMISING_SLICE = ["MP", "SB", "LB+addrs", "WRC+pos", "LSE-atomicity", "2+2W"]
# The flat model's state spaces are far larger; keep its slice lean.
FLAT_SLICE = ["MP", "SB", "CoRW2"]
# A deterministic slice of the generated (fuzz) corpus.
GENERATED = generate_battery(max_tests=4)

#: Semantic counters that must be bit-identical across backends.  The
#: representation counters (``cert_calls``, ``interned_keys``, …) are
#: backend-specific by design and excluded.
PROMISING_COUNTERS = (
    "truncated",
    "promise_states",
    "promise_transitions",
    "final_memories",
    "deadlocked_states",
    "dedup_hits",
    "thread_enumeration_states",
    "thread_dedup_hits",
    "completion_memo_hits",
)
FLAT_COUNTERS = ("truncated", "states", "transitions", "restarts", "dedup_hits")


def _compare(explore_fn, program, make_config, counters):
    results = {
        backend: explore_fn(program, make_config(backend)) for backend in BACKENDS
    }
    reference = results["object"]
    for backend, result in results.items():
        assert set(result.outcomes) == set(reference.outcomes), (
            f"{program.name} ({backend}): outcome sets diverge"
        )
        for counter in counters:
            assert getattr(result.stats, counter) == getattr(reference.stats, counter), (
                f"{program.name} ({backend}): stats.{counter} diverges"
            )


@pytest.mark.parametrize("arch", ARCHS, ids=[a.value for a in ARCHS])
@pytest.mark.parametrize("name", PROMISING_SLICE)
def test_promise_first_conformance(name, arch):
    program = get_test(name).program
    _compare(
        explore,
        program,
        lambda b: ExploreConfig(arch=arch, backend=b),
        PROMISING_COUNTERS,
    )


@pytest.mark.parametrize("arch", ARCHS, ids=[a.value for a in ARCHS])
@pytest.mark.parametrize("name", PROMISING_SLICE)
def test_naive_conformance(name, arch):
    program = get_test(name).program
    _compare(
        explore_naive,
        program,
        lambda b: ExploreConfig(arch=arch, backend=b),
        PROMISING_COUNTERS,
    )


@pytest.mark.parametrize("arch", ARCHS, ids=[a.value for a in ARCHS])
@pytest.mark.parametrize("name", FLAT_SLICE)
def test_flat_conformance(name, arch):
    program = get_test(name).program
    _compare(
        explore_flat,
        program,
        lambda b: FlatConfig(arch=arch, backend=b),
        FLAT_COUNTERS,
    )


@pytest.mark.parametrize("test", GENERATED, ids=[t.name for t in GENERATED])
def test_generated_corpus_conformance(test):
    _compare(
        explore,
        test.program,
        lambda b: ExploreConfig(backend=b),
        PROMISING_COUNTERS,
    )


def test_sample_strategy_walks_identical_traces():
    # Successor *order* is part of the backend contract: the same seed
    # must drive the same walks, so sampled outcome sets coincide too.
    program = get_test("WRC+pos").program
    results = [
        explore_naive(
            program,
            ExploreConfig(backend=b, strategy="sample", samples=32, seed=7),
        )
        for b in BACKENDS
    ]
    assert set(results[0].outcomes) == set(results[1].outcomes)
    assert results[0].stats.samples_run == results[1].stats.samples_run


# ---------------------------------------------------------------------------
# Encode/decode laws
# ---------------------------------------------------------------------------


def _reachable(program, arch, limit=200):
    """A breadth-first sample of reachable object machine states."""
    initial = MachineState.initial(program, arch)
    seen = {initial.cache_key(): initial}
    frontier = [initial]
    while frontier and len(seen) < limit:
        state = frontier.pop()
        for step in machine_transitions(state):
            key = step.state.cache_key()
            if key not in seen:
                seen[key] = step.state
                frontier.append(step.state)
    return list(seen.values())


@pytest.mark.parametrize("name", ["MP", "LSE-atomicity"])
def test_packed_roundtrip_laws(name):
    program = get_test(name).program
    config = ExploreConfig()
    backend = make_promising_backend("packed", program, config, None)
    for state in _reachable(program, config.arch):
        packed = backend.encode(state)
        # key is the identity on packed states.
        assert backend.key(packed) == packed
        # encode/decode round-trips through the same packed id.
        assert backend.encode(backend.decode(packed)) == packed
        # decode lands in the same object-key equivalence class.
        assert backend.decode(packed).cache_key() == state.cache_key()


def test_packed_key_equivalence_classes():
    # Two object states with equal cache keys intern to the same id;
    # distinct keys to distinct ids.
    program = get_test("MP").program
    config = ExploreConfig()
    backend = make_promising_backend("packed", program, config, None)
    states = _reachable(program, config.arch)
    by_key = {}
    for state in states:
        by_key.setdefault(state.cache_key(), set()).add(backend.encode(state))
    ids = [next(iter(v)) for v in by_key.values()]
    assert all(len(v) == 1 for v in by_key.values())
    assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------------
# Validation and fingerprint stability
# ---------------------------------------------------------------------------


def test_validate_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown execution backend"):
        validate_backend("bogus")
    with pytest.raises(ValueError):
        explore(get_test("MP").program, ExploreConfig(backend="turbo"))


def test_default_backend_keeps_cache_fingerprints():
    # The `backend` field is omitted from fingerprints at its default, so
    # every result cached before the seam stays valid; a non-default
    # backend keys its own entries.
    test = get_test("MP")
    default = Job(test=test, model="promising", arch=Arch.ARM)
    explicit = Job(
        test=test,
        model="promising",
        arch=Arch.ARM,
        explore_config=ExploreConfig(backend="object"),
    )
    packed = Job(
        test=test,
        model="promising",
        arch=Arch.ARM,
        explore_config=ExploreConfig(backend="packed"),
    )
    assert default.fingerprint() == explicit.fingerprint()
    assert packed.fingerprint() != default.fingerprint()
    # The field exists on the effective config — only the fingerprint
    # omits it (at the default), which the equalities above pin down.
    assert any(
        f.name == "backend"
        for f in dataclasses.fields(default.effective_explore_config())
    )


def test_conformance_slice_is_nontrivial():
    # Guard the slice itself: conformance over empty outcome sets would
    # be vacuous.
    for name in PROMISING_SLICE:
        result = explore(get_test(name).program, ExploreConfig())
        assert len(result.outcomes) > 0
