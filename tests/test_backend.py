"""Conformance of the execution backends (object vs packed).

The backend seam swaps the *representation* of machine states, never the
semantics: for every explorer the two backends must produce identical
outcome sets and identical semantic statistics (states, transitions,
final memories, deadlocks, dedup hits, …), and the packed encoding must
be a bijection onto the object backend's ``cache_key`` equivalence
classes.  These tests pin that contract on a catalogue slice, a
generated corpus slice, both architectures and all three explorers.
"""

import dataclasses

import pytest

from repro.backend import (
    BACKENDS,
    make_flat_backend,
    make_promising_backend,
    validate_backend,
)
from repro.flat import (
    FlatConfig,
    FlatStats,
    explore_flat,
    initial_state,
    thread_transitions,
)
from repro.flat import successors as flat_successors
from repro.harness.jobs import Job
from repro.lang import LocationEnv, R, if_, load, make_program, seq, store
from repro.lang.kinds import VSUCC, Arch
from repro.litmus import generate_battery, get_test
from repro.promising import ExploreConfig, explore, explore_naive
from repro.promising.exhaustive import ExplorationStats
from repro.promising.machine import MachineState, machine_transitions

ARCHS = [Arch.ARM, Arch.RISCV]

# Small-but-varied slice: message passing, store buffering, dependencies,
# multicopy atomicity, exclusives, and a write-heavy shape.
PROMISING_SLICE = ["MP", "SB", "LB+addrs", "WRC+pos", "LSE-atomicity", "2+2W"]
# The flat model's state spaces are far larger; keep its slice lean.
FLAT_SLICE = ["MP", "SB", "CoRW2"]
# A deterministic slice of the generated (fuzz) corpus.
GENERATED = generate_battery(max_tests=4)

#: Semantic counters that must be bit-identical across backends.  The
#: representation counters (``cert_calls``, ``interned_keys``, …) are
#: backend-specific by design and excluded.
PROMISING_COUNTERS = (
    "truncated",
    "promise_states",
    "promise_transitions",
    "final_memories",
    "deadlocked_states",
    "dedup_hits",
    "thread_enumeration_states",
    "thread_dedup_hits",
    "completion_memo_hits",
)
FLAT_COUNTERS = ("truncated", "states", "transitions", "restarts", "dedup_hits")


def _compare(explore_fn, program, make_config, counters):
    results = {
        backend: explore_fn(program, make_config(backend)) for backend in BACKENDS
    }
    reference = results["object"]
    for backend, result in results.items():
        assert set(result.outcomes) == set(reference.outcomes), (
            f"{program.name} ({backend}): outcome sets diverge"
        )
        for counter in counters:
            assert getattr(result.stats, counter) == getattr(reference.stats, counter), (
                f"{program.name} ({backend}): stats.{counter} diverges"
            )


@pytest.mark.parametrize("arch", ARCHS, ids=[a.value for a in ARCHS])
@pytest.mark.parametrize("name", PROMISING_SLICE)
def test_promise_first_conformance(name, arch):
    program = get_test(name).program
    _compare(
        explore,
        program,
        lambda b: ExploreConfig(arch=arch, backend=b),
        PROMISING_COUNTERS,
    )


@pytest.mark.parametrize("arch", ARCHS, ids=[a.value for a in ARCHS])
@pytest.mark.parametrize("name", PROMISING_SLICE)
def test_naive_conformance(name, arch):
    program = get_test(name).program
    _compare(
        explore_naive,
        program,
        lambda b: ExploreConfig(arch=arch, backend=b),
        PROMISING_COUNTERS,
    )


@pytest.mark.parametrize("arch", ARCHS, ids=[a.value for a in ARCHS])
@pytest.mark.parametrize("name", FLAT_SLICE)
def test_flat_conformance(name, arch):
    program = get_test(name).program
    _compare(
        explore_flat,
        program,
        lambda b: FlatConfig(arch=arch, backend=b),
        FLAT_COUNTERS,
    )


@pytest.mark.parametrize("test", GENERATED, ids=[t.name for t in GENERATED])
def test_generated_corpus_conformance(test):
    _compare(
        explore,
        test.program,
        lambda b: ExploreConfig(backend=b),
        PROMISING_COUNTERS,
    )


def test_sample_strategy_walks_identical_traces():
    # Successor *order* is part of the backend contract: the same seed
    # must drive the same walks, so sampled outcome sets coincide too.
    program = get_test("WRC+pos").program
    results = [
        explore_naive(
            program,
            ExploreConfig(backend=b, strategy="sample", samples=32, seed=7),
        )
        for b in BACKENDS
    ]
    assert set(results[0].outcomes) == set(results[1].outcomes)
    assert results[0].stats.samples_run == results[1].stats.samples_run


# ---------------------------------------------------------------------------
# Encode/decode laws
# ---------------------------------------------------------------------------


def _reachable(program, arch, limit=200):
    """A breadth-first sample of reachable object machine states."""
    initial = MachineState.initial(program, arch)
    seen = {initial.cache_key(): initial}
    frontier = [initial]
    while frontier and len(seen) < limit:
        state = frontier.pop()
        for step in machine_transitions(state):
            key = step.state.cache_key()
            if key not in seen:
                seen[key] = step.state
                frontier.append(step.state)
    return list(seen.values())


@pytest.mark.parametrize("name", ["MP", "LSE-atomicity"])
def test_packed_roundtrip_laws(name):
    program = get_test(name).program
    config = ExploreConfig()
    backend = make_promising_backend("packed", program, config, None)
    for state in _reachable(program, config.arch):
        packed = backend.encode(state)
        # key is the identity on packed states.
        assert backend.key(packed) == packed
        # encode/decode round-trips through the same packed id.
        assert backend.encode(backend.decode(packed)) == packed
        # decode lands in the same object-key equivalence class.
        assert backend.decode(packed).cache_key() == state.cache_key()


def test_packed_key_equivalence_classes():
    # Two object states with equal cache keys intern to the same id;
    # distinct keys to distinct ids.
    program = get_test("MP").program
    config = ExploreConfig()
    backend = make_promising_backend("packed", program, config, None)
    states = _reachable(program, config.arch)
    by_key = {}
    for state in states:
        by_key.setdefault(state.cache_key(), set()).add(backend.encode(state))
    ids = [next(iter(v)) for v in by_key.values()]
    assert all(len(v) == 1 for v in by_key.values())
    assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------------
# Certification / completion-set equivalence laws
# ---------------------------------------------------------------------------


def _assert_cert_equivalence(program, arch, limit):
    """Packed ``certify_all``/``completion_sets`` == object, pointwise.

    The explorer-level conformance above compares whole runs; these laws
    pin the per-state answers: for every reachable machine state both
    backends must agree on certification (certified bit, promise set,
    truncation, fixed-memory completability, even the visited count of
    the sequential graph) and, at candidate final memories, on the exact
    per-thread completion sets.
    """
    config = ExploreConfig(arch=arch)
    obj = make_promising_backend("object", program, config, ExplorationStats())
    packed = make_promising_backend("packed", program, config, ExplorationStats())
    checked_completions = 0
    for state in _reachable(program, arch, limit=limit):
        enc = packed.encode(state)
        o_res, o_fin = obj.certify_all(state)
        p_res, p_fin = packed.certify_all(enc)
        assert o_fin == p_fin, f"{program.name}: can-finish diverges"
        for tid, (o, p) in enumerate(zip(o_res, p_res)):
            context = f"{program.name} thread {tid}"
            assert o.certified == p.certified, context
            assert o.promises == p.promises, context
            assert o.complete == p.complete, context
            assert o.can_complete == p.can_complete, context
            assert o.visited == p.visited, context
        if all(o_fin):
            assert obj.completion_sets(state) == packed.completion_sets(enc), (
                f"{program.name}: completion sets diverge"
            )
            checked_completions += 1
    assert checked_completions > 0, "slice never reached a final memory"


@pytest.mark.parametrize("arch", ARCHS, ids=[a.value for a in ARCHS])
@pytest.mark.parametrize("name", ["MP", "WRC+pos", "LSE-atomicity", "2+2W"])
def test_certification_equivalence_laws(name, arch):
    _assert_cert_equivalence(get_test(name).program, arch, limit=60)


@pytest.mark.parametrize("test", GENERATED, ids=[t.name for t in GENERATED])
def test_certification_equivalence_on_generated_corpus(test):
    _assert_cert_equivalence(test.program, ExploreConfig().arch, limit=40)


# ---------------------------------------------------------------------------
# Packed-Flat window round-trip laws
# ---------------------------------------------------------------------------


def _pr5_regression_program():
    """The PR 5 reservation-clear regression shape (see test_flat.py).

    T1's mis-speculated branch body contains a second load-exclusive of
    ``x``; the squashed load must take its reservation with it or the
    trailing store-exclusive pairs with a load that architecturally
    never happened.
    """
    env = LocationEnv()
    x, y = env["x"], env["y"]
    t0 = store(x, 7)
    t1 = seq(
        load("r0", x, exclusive=True),
        load("r1", y),
        if_(R("r1").eq(1), load("r2", x, exclusive=True)),
        store(x, 5, exclusive=True, succ_reg="rs"),
    )
    return make_program([t0, t1], env=env, name="PR5-reservation-clear"), x


def _flat_reachable(program, config, limit):
    init = initial_state(program, config.arch)
    seen = {init.cache_key(): init}
    frontier = [init]
    while frontier and len(seen) < limit:
        state = frontier.pop()
        for _label, succ in flat_successors(state, config):
            key = succ.cache_key()
            if key not in seen:
                seen[key] = succ
                frontier.append(succ)
    return list(seen.values())


def _make_flat(backend, program, config, stats):
    return make_flat_backend(
        backend, program, config, stats, flat_successors, thread_transitions
    )


@pytest.mark.parametrize("arch", ARCHS, ids=[a.value for a in ARCHS])
def test_packed_flat_roundtrip_laws(arch):
    # Window entries, alternative continuations, speculation flags and
    # the reservation must all survive the pack/unpack cycle — the
    # regression program exercises every one of those fields.
    program, _x = _pr5_regression_program()
    config = FlatConfig(arch=arch)
    backend = _make_flat("packed", program, config, FlatStats())
    for state in _flat_reachable(program, config, limit=250):
        packed_state = backend.encode(state)
        assert backend.key(packed_state) == packed_state
        assert backend.encode(backend.decode(packed_state)) == packed_state
        assert backend.decode(packed_state).cache_key() == state.cache_key()


def test_packed_flat_successors_match_reference_on_regression_program():
    program, _x = _pr5_regression_program()
    config = FlatConfig()
    stats_o, stats_p = FlatStats(), FlatStats()
    obj = _make_flat("object", program, config, stats_o)
    packed = _make_flat("packed", program, config, stats_p)
    for state in _flat_reachable(program, config, limit=200):
        enc = packed.encode(state)
        obj_keys = [succ.cache_key() for succ in obj.successors(state)]
        packed_keys = [
            packed.decode(p).cache_key() for p in packed.successors(enc)
        ]
        assert obj_keys == packed_keys, "successor lists (or order) diverge"
    # Both backends saw every state exactly once, so the per-visit
    # restart accounting must agree too.
    assert stats_p.restarts == stats_o.restarts


@pytest.mark.parametrize("backend", BACKENDS)
def test_flat_reservation_clear_regression(backend):
    # The PR 5 bugfix, re-pinned per backend: a squashed exclusive load
    # must clear the reservation, so the non-atomic store-exclusive
    # success is forbidden on both representations.
    program, x = _pr5_regression_program()
    result = explore_flat(program, FlatConfig(backend=backend))
    assert not any(
        o.mem(x) == 5 and o.reg(1, "r0") == 0 and o.reg(1, "rs") == VSUCC
        for o in result.outcomes
    )


# ---------------------------------------------------------------------------
# Validation and fingerprint stability
# ---------------------------------------------------------------------------


def test_validate_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown execution backend"):
        validate_backend("bogus")
    with pytest.raises(ValueError):
        explore(get_test("MP").program, ExploreConfig(backend="turbo"))


def test_default_backend_keeps_cache_fingerprints():
    # The `backend` field is omitted from fingerprints at its default, so
    # every result cached before the seam stays valid; a non-default
    # backend keys its own entries.
    test = get_test("MP")
    default = Job(test=test, model="promising", arch=Arch.ARM)
    explicit = Job(
        test=test,
        model="promising",
        arch=Arch.ARM,
        explore_config=ExploreConfig(backend="object"),
    )
    packed = Job(
        test=test,
        model="promising",
        arch=Arch.ARM,
        explore_config=ExploreConfig(backend="packed"),
    )
    assert default.fingerprint() == explicit.fingerprint()
    assert packed.fingerprint() != default.fingerprint()
    # The field exists on the effective config — only the fingerprint
    # omits it (at the default), which the equalities above pin down.
    assert any(
        f.name == "backend"
        for f in dataclasses.fields(default.effective_explore_config())
    )


def test_conformance_slice_is_nontrivial():
    # Guard the slice itself: conformance over empty outcome sets would
    # be vacuous.
    for name in PROMISING_SLICE:
        result = explore(get_test(name).program, ExploreConfig())
        assert len(result.outcomes) > 0
