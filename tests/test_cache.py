"""Direct unit tests for the result-cache layers.

The persistent :class:`ResultCache` is exercised indirectly by every
sweep test; these tests hit its recovery paths head-on — corrupt
entries, schema drift, fingerprint mismatches, failed stores — plus the
process-resident :class:`LruResultCache` eviction policy the service
builds on.
"""

import dataclasses
import json
import os

import pytest

from repro.harness.cache import LruResultCache, ResultCache
from repro.harness.jobs import Job, execute_job
from repro.lang.kinds import Arch
from repro.litmus import get_test


@pytest.fixture(scope="module")
def sb_result():
    job = Job(test=get_test("SB"), model="axiomatic")
    return job, execute_job(job)


def other_job(model="promising"):
    return Job(test=get_test("MP"), model=model)


class TestLruResultCache:
    def test_roundtrip_rebinds_annotations(self, sb_result):
        job, result = sb_result
        lru = LruResultCache(capacity=4)
        assert lru.put(job, result)
        recalled = lru.get(job)
        assert recalled is not None and recalled.cached
        assert recalled.name == job.test.name
        assert recalled.expected == job.test.expected_verdict(job.arch)
        assert set(recalled.outcomes) == set(result.outcomes)
        assert lru.hits == 1 and lru.misses == 0

    def test_miss_counts(self, sb_result):
        job, _result = sb_result
        lru = LruResultCache(capacity=4)
        assert lru.get(job) is None
        assert lru.misses == 1 and lru.hit_rate == 0.0

    def test_eviction_is_least_recently_used(self):
        lru = LruResultCache(capacity=2)
        jobs = [
            Job(test=get_test(name), model="axiomatic")
            for name in ("SB", "MP", "LB")
        ]
        results = [execute_job(job) for job in jobs]
        lru.put(jobs[0], results[0])
        lru.put(jobs[1], results[1])
        # Touch job 0 so job 1 becomes the eviction candidate.
        assert lru.get(jobs[0]) is not None
        lru.put(jobs[2], results[2])
        assert lru.evictions == 1 and len(lru) == 2
        assert lru.get(jobs[1]) is None  # evicted
        assert lru.get(jobs[0]) is not None
        assert lru.get(jobs[2]) is not None

    def test_put_refreshes_recency_and_overwrites(self, sb_result):
        job, result = sb_result
        lru = LruResultCache(capacity=2)
        lru.put(job, result)
        lru.put(other_job("axiomatic"), execute_job(other_job("axiomatic")))
        # Re-putting the first entry must not grow the cache and must
        # move it to the fresh end.
        lru.put(job, result)
        assert len(lru) == 2
        lru.put(other_job(), execute_job(other_job()))
        assert lru.get(job) is not None

    def test_only_ok_results_admitted(self, sb_result):
        job, result = sb_result
        lru = LruResultCache(capacity=2)
        failed = dataclasses.replace(result, status="error", error="boom")
        assert not lru.put(job, failed)
        assert len(lru) == 0

    def test_returned_copy_is_isolated(self, sb_result):
        job, result = sb_result
        lru = LruResultCache(capacity=2)
        lru.put(job, result)
        first = lru.get(job)
        first.name = "mutated"
        first.stats["mutated"] = True
        second = lru.get(job)
        assert second.name == job.test.name
        assert "mutated" not in second.stats

    def test_outcome_sets_are_isolated(self, sb_result):
        # The outcome set is mutable; neither the caller's post-put
        # mutations nor mutations of a served copy may reach the entry.
        job, result = sb_result
        lru = LruResultCache(capacity=2)
        lru.put(job, result)
        baseline = len(result.outcomes)
        served = lru.get(job)
        bogus = next(iter(served.outcomes))
        served.outcomes.add(
            type(bogus)(registers=bogus.registers, memory=tuple())
        )
        again = lru.get(job)
        assert len(again.outcomes) == baseline

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LruResultCache(capacity=0)


class TestResultCacheRecovery:
    def entry_path(self, cache, job):
        return cache._entry_path(job.fingerprint())

    def test_corrupt_entry_is_a_miss_then_overwritten(self, tmp_path, sb_result):
        job, result = sb_result
        cache = ResultCache(tmp_path)
        assert cache.put(job, result)
        entry = self.entry_path(cache, job)
        entry.write_text("{ not json at all")
        assert cache.get(job) is None
        assert cache.misses == 1
        # The next store repairs the entry in place.
        assert cache.put(job, result)
        recalled = cache.get(job)
        assert recalled is not None and recalled.cached

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path, sb_result):
        job, result = sb_result
        cache = ResultCache(tmp_path)
        cache.put(job, result)
        entry = self.entry_path(cache, job)
        payload = json.loads(entry.read_text())
        payload["fingerprint"] = "0" * 64
        entry.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_schema_drift_is_a_miss(self, tmp_path, sb_result):
        job, result = sb_result
        cache = ResultCache(tmp_path)
        cache.put(job, result)
        entry = self.entry_path(cache, job)
        payload = json.loads(entry.read_text())
        del payload["outcomes"]
        entry.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_store_failure_is_counted_not_raised(self, tmp_path, sb_result, monkeypatch):
        job, result = sb_result
        cache = ResultCache(tmp_path)

        def failing_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", failing_replace)
        assert not cache.put(job, result)
        assert cache.store_failures == 1
        # The scratch file must not be left behind.
        assert not list(cache.path.glob("*/*.tmp"))

    def test_non_ok_results_not_persisted(self, tmp_path, sb_result):
        job, result = sb_result
        cache = ResultCache(tmp_path)
        failed = dataclasses.replace(result, status="timeout")
        assert not cache.put(job, failed)
        assert len(cache) == 0

    def test_clear_removes_entries_and_orphans(self, tmp_path, sb_result):
        job, result = sb_result
        cache = ResultCache(tmp_path)
        cache.put(job, result)
        entry = self.entry_path(cache, job)
        orphan = entry.with_name(entry.name + ".999.tmp")
        orphan.write_text("half-written")
        assert cache.clear() == 1
        assert len(cache) == 0
        assert not orphan.exists()

    def test_annotations_follow_incoming_job(self, tmp_path):
        # Two jobs sharing a fingerprint-relevant payload but differing in
        # arch-dependent expectations must each see their own verdict.
        cache = ResultCache(tmp_path)
        arm = Job(test=get_test("SB"), model="axiomatic", arch=Arch.ARM)
        cache.put(arm, execute_job(arm))
        recalled = cache.get(arm)
        assert recalled.expected == get_test("SB").expected_verdict(Arch.ARM)
