"""Tests for certification and find_and_certify (§4.3, §B, Thm 6.4)."""

from repro.lang import DMB_SY, R, WriteKind, assign, load, seq, store
from repro.lang.kinds import Arch
from repro.promising.certification import (
    can_complete_without_promising,
    certified,
    find_and_certify,
)
from repro.promising.state import Memory, Msg, initial_tstate
from repro.promising.steps import promise_step

W, X, Y, Z, P = 0, 8, 16, 24, 32


class TestCertified:
    def test_no_promises_is_trivially_certified(self):
        assert certified(load("r1", X), initial_tstate(), Memory(), Arch.ARM, 0)

    def test_fulfillable_promise_is_certified(self):
        promised = promise_step(store(X, 1), initial_tstate(), Memory(), Msg(X, 1, 0))
        assert certified(store(X, 1), promised.tstate, promised.memory, Arch.ARM, 0)

    def test_unfulfillable_promise_is_not_certified(self):
        # The thread promised x := 1 but its program writes x := 2.
        promised = promise_step(store(X, 2), initial_tstate(), Memory(), Msg(X, 1, 0))
        assert not certified(store(X, 2), promised.tstate, promised.memory, Arch.ARM, 0)

    def test_data_dependent_promise_needs_the_right_read(self):
        # r1 := load y; store x r1 — promising x := 1 is only fulfillable if
        # some write y = 1 exists to read from.
        stmt = seq(load("r1", Y), store(X, R("r1")))
        promised = promise_step(stmt, initial_tstate(), Memory(), Msg(X, 1, 0))
        assert not certified(stmt, promised.tstate, promised.memory, Arch.ARM, 0)
        memory_with_y, _ = Memory().append(Msg(Y, 1, 9))
        promised2 = promise_step(stmt, initial_tstate(), memory_with_y, Msg(X, 1, 0))
        assert certified(stmt, promised2.tstate, promised2.memory, Arch.ARM, 0)


class TestFindAndCertify:
    def test_initial_state_offers_program_writes(self):
        result = find_and_certify(store(X, 5), initial_tstate(), Memory(), Arch.ARM, 0)
        assert result.certified
        assert Msg(X, 5, 0) in result.promises

    def test_data_dependency_blocks_early_promise(self):
        # LB shape: the store's value copies the load, so only x := 0 can be
        # promised from the initial memory.
        stmt = seq(load("r1", Y), store(X, R("r1")))
        result = find_and_certify(stmt, initial_tstate(), Memory(), Arch.ARM, 0)
        assert Msg(X, 0, 0) in result.promises
        assert Msg(X, 1, 0) not in result.promises

    def test_independent_store_can_be_promised_past_a_load(self):
        stmt = seq(load("r1", Y), store(X, 42))
        result = find_and_certify(stmt, initial_tstate(), Memory(), Arch.ARM, 0)
        assert Msg(X, 42, 0) in result.promises

    def test_barrier_blocks_early_promise(self):
        stmt = seq(load("r1", Y), DMB_SY, store(X, 42))
        memory, _ = Memory().append(Msg(Y, 1, 9))
        result = find_and_certify(stmt, initial_tstate(), memory, Arch.ARM, 0)
        # Reading y at timestamp 1 then dmb gives the store pre-view 1, which
        # exceeds |M| = 1 only if... the initial read (timestamp 0) keeps the
        # pre-view at 0, so the promise is still allowed;
        assert Msg(X, 42, 0) in result.promises

    def test_release_store_after_write_not_promotable_early(self):
        # §B-style example: a release store ordered after an earlier write of
        # the same thread cannot be promised before that write is in memory.
        stmt = seq(store(X, 1), store(Y, 1, kind=WriteKind.REL))
        result = find_and_certify(stmt, initial_tstate(), Memory(), Arch.ARM, 0)
        assert Msg(X, 1, 0) in result.promises
        assert Msg(Y, 1, 0) not in result.promises

    def test_paper_appendix_b_example(self):
        # Memory [1: w := 1 (T2), 2: z := 1 (T1)], T1 promised z := 1 and is
        #   a: r1 := load w; b: store x 1; c: store_rel y 1; d: store z r1
        stmt = seq(
            load("r1", W),
            store(X, 1),
            store(Y, 1, kind=WriteKind.REL),
            store(Z, R("r1")),
        )
        memory, _ = Memory().append(Msg(W, 1, 2))
        memory, t = memory.append(Msg(Z, 1, 1))
        ts = initial_tstate()
        ts.prom = frozenset({t})
        result = find_and_certify(stmt, ts, memory, Arch.ARM, 1)
        assert result.certified
        # x := 1 is promotable (pre-view 0 ≤ 2); y := 1 is not (its pre-view
        # includes the write of x at timestamp 3 > 2).
        assert Msg(X, 1, 1) in result.promises
        assert Msg(Y, 1, 1) not in result.promises

    def test_promises_empty_when_uncertified(self):
        promised = promise_step(store(X, 2), initial_tstate(), Memory(), Msg(X, 1, 0))
        result = find_and_certify(store(X, 2), promised.tstate, promised.memory, Arch.ARM, 0)
        assert not result.certified
        assert result.promises == frozenset()

    def test_fuel_truncation_is_reported(self):
        stmt = seq(*[store(X, i) for i in range(1, 8)])
        result = find_and_certify(stmt, initial_tstate(), Memory(), Arch.ARM, 0, fuel=3)
        assert not result.complete


class TestCanComplete:
    def test_thread_without_stores_can_complete(self):
        assert can_complete_without_promising(
            seq(load("r1", X), assign("a", R("r1"))), initial_tstate(), Memory(), Arch.ARM, 0
        )

    def test_thread_with_unpromised_store_cannot_complete(self):
        assert not can_complete_without_promising(
            store(X, 1), initial_tstate(), Memory(), Arch.ARM, 0
        )

    def test_thread_with_promised_store_can_complete(self):
        promised = promise_step(store(X, 1), initial_tstate(), Memory(), Msg(X, 1, 0))
        assert can_complete_without_promising(
            store(X, 1), promised.tstate, promised.memory, Arch.ARM, 0
        )

    def test_exclusive_store_can_complete_by_failing(self):
        stmt = store(X, 1, exclusive=True, succ_reg="rs")
        assert can_complete_without_promising(stmt, initial_tstate(), Memory(), Arch.ARM, 0)
