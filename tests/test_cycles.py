"""Tests for the cycle-based litmus generator (cycles + synth).

Pinned guarantees: cycle validation catches malformed specifications, the
same cycle spec always synthesizes a byte-identical test, the generated
battery is duplicate-free by canonical fingerprint, truncation is a
deterministic prefix, and the derived programs/conditions of the classic
shapes are exactly the known litmus forms.
"""

import pytest

from repro.lang.kinds import Arch
from repro.litmus import run_axiomatic, run_promising
from repro.litmus.cycles import (
    Coe,
    Cycle,
    CycleError,
    Edge,
    FAMILIES,
    Fre,
    LINKS_RR,
    LINKS_RW,
    LINKS_WW,
    Linkage,
    READ,
    Rfe,
    Rfi,
    WRITE,
    get_family,
    links_for,
    po,
)
from repro.litmus.generators import generate_battery
from repro.litmus.synth import (
    attach_expected,
    canonical_fingerprint,
    generate_cycle_battery,
    synthesize,
)
from repro.litmus.test import Verdict


# ---------------------------------------------------------------------------
# Cycle validation
# ---------------------------------------------------------------------------


class TestCycleValidation:
    def test_direction_chain_must_close(self):
        # rfe ends in R but coe starts in W.
        with pytest.raises(CycleError, match="ends in"):
            Cycle("bad", (Rfe, Coe))

    def test_comm_edge_directions_are_fixed(self):
        with pytest.raises(CycleError, match="rf edges"):
            Edge("rf", READ, WRITE, external=True)

    def test_needs_two_external_edges(self):
        # rfi ; fri chains correctly but never leaves thread 0.
        from repro.litmus.cycles import Fri

        with pytest.raises(CycleError, match="external"):
            Cycle("bad", (Rfi, Fri))

    def test_wrap_edge_must_be_external(self):
        with pytest.raises(CycleError, match="wrap-around"):
            Cycle("bad", (Rfe, Fre, po(WRITE, WRITE)))

    def test_single_location_change_cannot_close(self):
        with pytest.raises(CycleError, match="location change"):
            Cycle(
                "bad",
                (po(WRITE, READ), Fre, po(WRITE, READ, same_loc=True), Fre),
            )

    def test_links_for_covers_all_direction_pairs(self):
        assert links_for(READ, READ) == LINKS_RR
        assert links_for(READ, WRITE) == LINKS_RW
        assert links_for(WRITE, WRITE) == LINKS_WW
        assert all(l.name in ("po", "dmb.sy") for l in links_for(WRITE, READ))

    def test_unknown_family_is_rejected(self):
        with pytest.raises(CycleError, match="unknown cycle family"):
            get_family("nosuch")

    def test_co_closed_single_location_cycle_is_rejected(self):
        # CoWW: W —coe→ W —coe→ back demands a cyclic coherence order; no
        # final state can witness it, so synthesis must refuse rather
        # than emit a test whose condition answers a different question.
        with pytest.raises(CycleError, match="cyclic coherence"):
            synthesize(Cycle("CoWW", (Coe, Coe)))

    def test_contradictory_rf_fr_read_is_rejected(self):
        # A read forced to return both its rf source's value and the
        # value coherence-before its fr target cannot be pinned when the
        # two differ: W(1) —coi→ W(2) —rfe→ R —fre→ back to the first
        # write asks the read for 2 (rf) and 0 (fr) at once.
        from repro.litmus.cycles import Coi

        with pytest.raises(CycleError, match="contradict"):
            synthesize(Cycle("CoRW2-ish", (Coi, Rfe, Fre)))


# ---------------------------------------------------------------------------
# Synthesis: classic shapes come out exactly right
# ---------------------------------------------------------------------------


class TestSynthesis:
    def test_mp_shape(self):
        test = synthesize(Cycle("MP+po+po", (po(WRITE, WRITE), Rfe, po(READ, READ), Fre)))
        assert test.program.n_threads == 2
        assert repr(test.condition) == "1:r1=1 /\\ 1:r2=0"

    def test_same_cycle_synthesizes_byte_identical_tests(self):
        cycle = Cycle(
            "ISA2+dmb.sy+data+addr",
            (
                po(WRITE, WRITE, Linkage("dmb.sy", barrier=LINKS_WW[1].barrier)),
                Rfe,
                po(READ, WRITE, Linkage("data", data=True)),
                Rfe,
                po(READ, READ, Linkage("addr", addr=True)),
                Fre,
            ),
        )
        a, b = synthesize(cycle), synthesize(cycle)
        assert repr(a.program.threads) == repr(b.program.threads)
        assert dict(a.program.initial) == dict(b.program.initial)
        assert a.condition.canonical() == b.condition.canonical()
        assert canonical_fingerprint(a) == canonical_fingerprint(b)

    def test_coherence_order_and_final_memory(self):
        # 2+2W: both locations have two writes; the condition pins the
        # coherence-final value of each.
        test = synthesize(Cycle("2+2W", (po(WRITE, WRITE), Coe, po(WRITE, WRITE), Coe)))
        assert repr(test.condition) == "x=2 /\\ y=2"

    def test_internal_rf_reads_forwarded_value(self):
        test = synthesize(Cycle("SB-RFI", (Rfi, po(READ, READ), Fre, Rfi, po(READ, READ), Fre)))
        # Both rfi reads must see their own thread's write, both fre reads
        # the coherence predecessor (the initial value).
        assert repr(test.condition) == "0:r1=1 /\\ 0:r2=0 /\\ 1:r3=1 /\\ 1:r4=0"

    def test_four_thread_and_three_location_families_exist(self):
        by_name = {f.name: f for f in FAMILIES}
        iriw = next(by_name["IRIW"].expand(max_cycles=1))
        assert iriw.n_threads == 4
        assert any(
            next(f.expand(max_cycles=1)).n_locations >= 3 for f in FAMILIES
        )

    def test_release_on_read_target_degrades_to_po(self):
        # A release annotation can only strengthen a write; on a W→R edge
        # it must fall back to plain po rather than corrupt the load.
        rel = Linkage("rel", release_second=True)
        with_rel = synthesize(Cycle("SB+rel+po", (po(WRITE, READ, rel), Fre, po(WRITE, READ), Fre)))
        plain = synthesize(Cycle("SB+po+po", (po(WRITE, READ), Fre, po(WRITE, READ), Fre)))
        assert canonical_fingerprint(with_rel) == canonical_fingerprint(plain)


# ---------------------------------------------------------------------------
# Battery: determinism, dedup, truncation
# ---------------------------------------------------------------------------


class TestCycleBattery:
    def test_battery_is_large_and_covers_families(self):
        battery = generate_cycle_battery()
        assert len(battery) >= 200
        families = {t.description.split(":")[0].removeprefix("cycle ") for t in battery}
        assert len(families) >= 6
        assert any(t.program.n_threads >= 4 for t in battery)
        assert any(len(t.program.loc_names) >= 3 for t in battery)

    def test_battery_is_deterministic(self):
        a = generate_cycle_battery()
        b = generate_cycle_battery()
        assert [t.name for t in a] == [t.name for t in b]
        assert [canonical_fingerprint(t) for t in a] == [
            canonical_fingerprint(t) for t in b
        ]

    def test_no_two_tests_share_a_fingerprint(self):
        battery = generate_cycle_battery()
        fingerprints = [canonical_fingerprint(t) for t in battery]
        assert len(fingerprints) == len(set(fingerprints))
        names = [t.name for t in battery]
        assert len(names) == len(set(names))

    def test_truncation_is_a_deterministic_prefix(self):
        full = generate_cycle_battery()
        for n in (0, 1, 37, 200):
            sliced = generate_cycle_battery(max_tests=n)
            assert [t.name for t in sliced] == [t.name for t in full[:n]]

    def test_family_selection(self):
        battery = generate_cycle_battery(families=("CoRR",))
        assert battery
        assert all(t.name.startswith("CoRR+") for t in battery)

    def test_legacy_battery_truncation_is_deterministic(self):
        full = generate_battery()
        assert [t.name for t in generate_battery(max_tests=25)] == [
            t.name for t in full[:25]
        ]


# ---------------------------------------------------------------------------
# Semantics: derived conditions ask the intended question
# ---------------------------------------------------------------------------


SEMANTIC_CASES = [
    ("MP+po+po", (po(WRITE, WRITE), Rfe, po(READ, READ), Fre), Verdict.ALLOWED),
    (
        "MP+dmb.sy+addr",
        (
            po(WRITE, WRITE, Linkage("dmb.sy", barrier=LINKS_WW[1].barrier)),
            Rfe,
            po(READ, READ, Linkage("addr", addr=True)),
            Fre,
        ),
        Verdict.FORBIDDEN,
    ),
    ("CoRR+po", (Rfe, po(READ, READ, same_loc=True), Fre), Verdict.FORBIDDEN),
]


@pytest.mark.parametrize(
    "name,edges,expected", SEMANTIC_CASES, ids=[c[0] for c in SEMANTIC_CASES]
)
def test_cycle_semantics_and_agreement(name, edges, expected):
    test = synthesize(Cycle(name, edges))
    promising = run_promising(test, Arch.ARM)
    axiomatic = run_axiomatic(test, Arch.ARM)
    assert promising.verdict is expected
    assert set(promising.outcomes) == set(axiomatic.outcomes)


def test_attach_expected_records_axiomatic_oracle(tmp_path):
    tests = generate_cycle_battery(families=("CoRR",), max_tests=3)
    stamped = attach_expected(tests, (Arch.ARM, Arch.RISCV), cache=tmp_path / "cache")
    assert len(stamped) == len(tests)
    for original, test in zip(tests, stamped):
        assert original.expected == {}  # input untouched
        # Coherence violations are forbidden on both architectures.
        assert test.expected_verdict(Arch.ARM) is Verdict.FORBIDDEN
        assert test.expected_verdict(Arch.RISCV) is Verdict.FORBIDDEN
